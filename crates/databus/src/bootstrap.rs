//! The bootstrap server: long look-back queries off the source's back.
//!
//! Figure III.3: "The Log writer listens for Databus events from the relay
//! and adds those to an append-only Log storage. The Log applier monitors
//! for new rows in the Log storage and applies those to the Snapshot
//! storage where only the last event for a given row/key is stored."
//!
//! Two query types (§III.C):
//!
//! * **Consolidated delta since T** — for clients that fell behind the
//!   relay: "only the last of multiple updates to the same row/key are
//!   returned. This has the effect of 'fast playback' of time."
//! * **Consistent snapshot at U** — for stateless (new) clients: serve the
//!   snapshot storage, then "the Server replays all changes that have
//!   happened since the start of the snapshot phase" to repair the rows
//!   that moved while the (long) scan was running.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use li_sqlstore::{Op, Row, RowChange, RowKey, Scn};

use crate::event::{FrozenWindow, ServerFilter, SharedWindow, Window};
use crate::relay::{Relay, RelayError};

/// A consolidated delta: the final state of every row touched after `since`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaResult {
    /// Final change per touched row, in (table, key) order.
    pub changes: Vec<RowChange>,
    /// The SCN the client should resume relay consumption from.
    pub as_of_scn: Scn,
    /// How many raw events the consolidation collapsed (the "fast
    /// playback" numerator: raw / changes.len()).
    pub raw_events: usize,
}

/// A consistent snapshot: every live row, at a single SCN.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotResult {
    /// Live rows as (table, key, row image), in (table, key) order.
    pub rows: Vec<(String, RowKey, Row)>,
    /// The SCN the client should resume relay consumption from.
    pub as_of_scn: Scn,
}

#[derive(Debug, Default)]
struct SnapshotStorage {
    /// (table, key) -> last row image; deletes remove the entry.
    rows: HashMap<(String, RowKey), Row>,
    applied_scn: Scn,
}

impl SnapshotStorage {
    fn apply(&mut self, window: &Window) {
        for change in &window.changes {
            let slot = (change.table.clone(), change.key.clone());
            match &change.op {
                Op::Put(row) => {
                    self.rows.insert(slot, row.clone());
                }
                Op::Delete => {
                    self.rows.remove(&slot);
                }
            }
        }
        self.applied_scn = window.scn;
    }
}

/// The bootstrap server. Thread-safe; share via `Arc`.
pub struct BootstrapServer {
    /// Append-only log storage (complete history). Entries are the same
    /// frozen windows the relay buffers: following a relay is a refcount
    /// bump per window, not a copy.
    log: Mutex<Vec<SharedWindow>>,
    snapshot: Mutex<SnapshotStorage>,
    /// Test/diagnostic hook fired between the snapshot scan and the replay
    /// phase of [`BootstrapServer::snapshot`] — the window where a mutable
    /// snapshot would serve inconsistent data without replay.
    #[allow(clippy::type_complexity)]
    mid_snapshot_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for BootstrapServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootstrapServer")
            .field("log_windows", &self.log.lock().len())
            .field("snapshot_rows", &self.snapshot.lock().rows.len())
            .field("applied_scn", &self.snapshot.lock().applied_scn)
            .finish()
    }
}

impl Default for BootstrapServer {
    fn default() -> Self {
        Self::new()
    }
}

impl BootstrapServer {
    /// Creates an empty bootstrap server.
    pub fn new() -> Self {
        BootstrapServer {
            log: Mutex::new(Vec::new()),
            snapshot: Mutex::new(SnapshotStorage::default()),
            mid_snapshot_hook: Mutex::new(None),
        }
    }

    /// The log writer: appends windows arriving from the relay.
    pub fn ingest(&self, window: Window) {
        self.ingest_shared(FrozenWindow::freeze(window));
    }

    /// The zero-copy log writer: appends an already-frozen window (shared
    /// with the relay buffer that served it).
    pub fn ingest_shared(&self, window: SharedWindow) {
        self.log.lock().push(window);
    }

    /// Catches the bootstrap server up from a relay (its own consumer
    /// loop). Zero-copy: the log stores the relay's own frozen windows.
    /// Returns windows linked.
    ///
    /// Concurrency-safe: the log lock is held across the read-tail /
    /// fetch / append sequence, because both the stream pump and a
    /// fallen-behind client (see `DatabusClient::poll_once`) drive this —
    /// two callers observing the same tail would double-append and break
    /// the log's SCN order. After linking, the relay's eviction floor
    /// advances to the new tail: everything below it is now durable in
    /// log storage, everything above it stays pinned in the relay buffer.
    pub fn catch_up_from(&self, relay: &Relay) -> Result<usize, RelayError> {
        let mut log = self.log.lock();
        let last = log.last().map_or(0, |w| w.scn);
        let views = relay.events_after_shared(last, usize::MAX, &ServerFilter::all())?;
        let n = views.len();
        for view in views {
            log.push(view.into_shared().expect("pass-all views are shared"));
        }
        relay.set_eviction_floor(log.last().map_or(last, |w| w.scn));
        Ok(n)
    }

    /// The log applier: folds un-applied log windows into snapshot storage.
    /// Returns the number of windows applied. The log is append-only in
    /// SCN order, so the un-applied windows are exactly the suffix past
    /// `applied_scn` — binary-search the boundary instead of rescanning
    /// the whole log (a million-window log pumped every few SCNs made the
    /// full scan the site benchmark's hottest path).
    pub fn apply_log(&self) -> usize {
        let log = self.log.lock();
        let mut snapshot = self.snapshot.lock();
        let start = log.partition_point(|w| w.scn <= snapshot.applied_scn);
        let mut applied = 0;
        for window in &log[start..] {
            snapshot.apply(window);
            applied += 1;
        }
        applied
    }

    /// Newest SCN in log storage.
    pub fn log_scn(&self) -> Scn {
        self.log.lock().last().map_or(0, |w| w.scn)
    }

    /// SCN up to which snapshot storage has been built.
    pub fn applied_scn(&self) -> Scn {
        self.snapshot.lock().applied_scn
    }

    /// Query 1: consolidated delta since `since_scn` — the last change per
    /// row among all changes after `since_scn`, served from the append-only
    /// log (always consistent).
    pub fn consolidated_delta(
        &self,
        since_scn: Scn,
        filter: &ServerFilter,
    ) -> DeltaResult {
        let log = self.log.lock();
        let mut last_change: HashMap<(String, RowKey), RowChange> = HashMap::new();
        let mut as_of = since_scn;
        let mut raw_events = 0usize;
        // Append-only SCN order: the relevant windows are the suffix past
        // `since_scn`. A fallen-behind consumer re-deltas under write
        // pressure, so this runs hot — binary-search the boundary rather
        // than rescanning a million-window log per cycle.
        let start = log.partition_point(|w| w.scn <= since_scn);
        for window in &log[start..] {
            for change in window.changes.iter().filter(|c| filter.matches(c)) {
                raw_events += 1;
                last_change.insert((change.table.clone(), change.key.clone()), change.clone());
            }
            as_of = as_of.max(window.scn);
        }
        let mut changes: Vec<RowChange> = last_change.into_values().collect();
        changes.sort_by(|a, b| (&a.table, &a.key).cmp(&(&b.table, &b.key)));
        DeltaResult {
            changes,
            as_of_scn: as_of,
            raw_events,
        }
    }

    /// Query 2: consistent snapshot. Scans snapshot storage (phase 1),
    /// then replays every log window that committed during the scan
    /// (phase 2), yielding a state consistent at the returned SCN.
    pub fn snapshot(&self, filter: &ServerFilter) -> SnapshotResult {
        // Phase 1: scan the snapshot storage at whatever SCN it has.
        let (mut rows, start_scn) = {
            let snapshot = self.snapshot.lock();
            let rows: HashMap<(String, RowKey), Row> = snapshot
                .rows
                .iter()
                .filter(|((table, key), _)| {
                    // Reuse filter.matches via a synthetic change view.
                    filter.matches(&RowChange {
                        table: table.clone(),
                        key: key.clone(),
                        op: Op::Delete,
                    })
                })
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            (rows, snapshot.applied_scn)
        };

        // The dangerous interval: new commits can land now (in production
        // the scan above streams for a long time).
        if let Some(hook) = self.mid_snapshot_hook.lock().take() {
            hook();
        }

        // Phase 2: replay changes since the scan started.
        let log = self.log.lock();
        let mut as_of = start_scn;
        for window in log.iter().filter(|w| w.scn > start_scn) {
            for change in window.changes.iter().filter(|c| filter.matches(c)) {
                let slot = (change.table.clone(), change.key.clone());
                match &change.op {
                    Op::Put(row) => {
                        rows.insert(slot, row.clone());
                    }
                    Op::Delete => {
                        rows.remove(&slot);
                    }
                }
            }
            as_of = as_of.max(window.scn);
        }
        let mut rows: Vec<(String, RowKey, Row)> = rows
            .into_iter()
            .map(|((table, key), row)| (table, key, row))
            .collect();
        rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        SnapshotResult {
            rows,
            as_of_scn: as_of,
        }
    }

    /// Installs a one-shot hook fired between the snapshot scan and the
    /// replay phase (consistency testing).
    pub fn set_mid_snapshot_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.mid_snapshot_hook.lock() = Some(hook);
    }
}

/// Convenience: a fully-wired bootstrap pipeline (log writer following a
/// relay + log applier), advanced manually by tests and the client library.
pub struct BootstrapPipeline {
    /// The server.
    pub server: Arc<BootstrapServer>,
    relay: Arc<Relay>,
}

impl BootstrapPipeline {
    /// Wires a bootstrap server to follow `relay`.
    pub fn new(relay: Arc<Relay>) -> Self {
        BootstrapPipeline {
            server: Arc::new(BootstrapServer::new()),
            relay,
        }
    }

    /// One pump: log writer catch-up + log applier pass.
    pub fn pump(&self) -> Result<(), RelayError> {
        self.server.catch_up_from(&self.relay)?;
        self.server.apply_log();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn put(table: &str, key: &str, value: &str) -> RowChange {
        RowChange {
            table: table.into(),
            key: RowKey::single(key),
            op: Op::Put(Row::new(Bytes::copy_from_slice(value.as_bytes()), 1)),
        }
    }

    fn delete(table: &str, key: &str) -> RowChange {
        RowChange {
            table: table.into(),
            key: RowKey::single(key),
            op: Op::Delete,
        }
    }

    fn window(scn: Scn, changes: Vec<RowChange>) -> Window {
        Window {
            source_db: "primary".into(),
            scn,
            timestamp: scn,
            changes,
        }
    }

    fn value_of(result: &SnapshotResult, table: &str, key: &str) -> Option<String> {
        result
            .rows
            .iter()
            .find(|(t, k, _)| t == table && *k == RowKey::single(key))
            .map(|(_, _, row)| String::from_utf8_lossy(&row.value).into_owned())
    }

    #[test]
    fn log_applier_builds_snapshot() {
        let server = BootstrapServer::new();
        server.ingest(window(1, vec![put("t", "a", "1")]));
        server.ingest(window(2, vec![put("t", "a", "2"), put("t", "b", "1")]));
        server.ingest(window(3, vec![delete("t", "b")]));
        assert_eq!(server.apply_log(), 3);
        assert_eq!(server.applied_scn(), 3);
        let snap = server.snapshot(&ServerFilter::all());
        assert_eq!(snap.rows.len(), 1);
        assert_eq!(value_of(&snap, "t", "a").unwrap(), "2");
        assert_eq!(snap.as_of_scn, 3);
        // Applier is incremental.
        server.ingest(window(4, vec![put("t", "c", "1")]));
        assert_eq!(server.apply_log(), 1);
    }

    #[test]
    fn consolidated_delta_collapses_updates() {
        let server = BootstrapServer::new();
        // 100 updates to one hot key + 1 to a cold key.
        for scn in 1..=100 {
            server.ingest(window(scn, vec![put("t", "hot", &format!("v{scn}"))]));
        }
        server.ingest(window(101, vec![put("t", "cold", "x")]));
        let delta = server.consolidated_delta(0, &ServerFilter::all());
        assert_eq!(delta.changes.len(), 2, "one change per key");
        assert_eq!(delta.raw_events, 101);
        assert_eq!(delta.as_of_scn, 101);
        let hot = delta
            .changes
            .iter()
            .find(|c| c.key == RowKey::single("hot"))
            .unwrap();
        match &hot.op {
            Op::Put(row) => assert_eq!(row.value.as_ref(), b"v100"),
            Op::Delete => panic!("expected put"),
        }
    }

    #[test]
    fn consolidated_delta_since_midpoint() {
        let server = BootstrapServer::new();
        for scn in 1..=10 {
            server.ingest(window(scn, vec![put("t", &format!("k{scn}"), "v")]));
        }
        let delta = server.consolidated_delta(7, &ServerFilter::all());
        assert_eq!(delta.changes.len(), 3);
        assert_eq!(delta.as_of_scn, 10);
        // Fully caught-up client gets an empty delta.
        let empty = server.consolidated_delta(10, &ServerFilter::all());
        assert!(empty.changes.is_empty());
        assert_eq!(empty.as_of_scn, 10);
    }

    #[test]
    fn delta_reports_deletes() {
        let server = BootstrapServer::new();
        server.ingest(window(1, vec![put("t", "a", "1")]));
        server.ingest(window(2, vec![delete("t", "a")]));
        let delta = server.consolidated_delta(0, &ServerFilter::all());
        assert_eq!(delta.changes.len(), 1);
        assert!(matches!(delta.changes[0].op, Op::Delete));
    }

    #[test]
    fn snapshot_replays_changes_landing_mid_scan() {
        let server = Arc::new(BootstrapServer::new());
        server.ingest(window(1, vec![put("t", "a", "old"), put("t", "doomed", "x")]));
        server.apply_log();

        // While the snapshot scan "streams", two more commits land in the
        // log (but NOT in snapshot storage — the applier hasn't run).
        let hook_server = server.clone();
        server.set_mid_snapshot_hook(Box::new(move || {
            hook_server.ingest(window(2, vec![put("t", "a", "new")]));
            hook_server.ingest(window(3, vec![delete("t", "doomed")]));
        }));

        let snap = server.snapshot(&ServerFilter::all());
        // Replay repaired both: the update is visible, the delete applied.
        assert_eq!(value_of(&snap, "t", "a").unwrap(), "new");
        assert!(value_of(&snap, "t", "doomed").is_none());
        assert_eq!(snap.as_of_scn, 3);
    }

    #[test]
    fn filters_push_down_to_both_queries() {
        let server = BootstrapServer::new();
        server.ingest(window(1, vec![put("member", "a", "1"), put("company", "c", "2")]));
        server.apply_log();
        let filter = ServerFilter::for_tables(["member"]);
        let delta = server.consolidated_delta(0, &filter);
        assert_eq!(delta.changes.len(), 1);
        assert_eq!(delta.changes[0].table, "member");
        let snap = server.snapshot(&filter);
        assert_eq!(snap.rows.len(), 1);
        assert_eq!(snap.rows[0].0, "member");
    }

    #[test]
    fn log_writer_advances_relay_eviction_floor() {
        let relay = Arc::new(Relay::new("primary", 2048));
        relay.set_eviction_floor(0);
        let server = BootstrapServer::new();
        for scn in 1..=50 {
            relay
                .ingest(window(scn, vec![put("t", &format!("k{scn}"), "value-padding-x")]))
                .unwrap();
        }
        assert_eq!(relay.window_count(), 50, "pinned until linked");
        assert_eq!(server.catch_up_from(&relay).unwrap(), 50);
        assert_eq!(relay.eviction_floor(), Some(50), "floor follows the log tail");
        // Linked windows are evictable again on the next ingest pass.
        relay.ingest(window(51, vec![put("t", "k51", "v")])).unwrap();
        assert!(relay.oldest_scn() > 1, "eviction resumed below the floor");
        // The evicted prefix survives in log storage.
        let delta = server.consolidated_delta(0, &ServerFilter::all());
        assert_eq!(delta.changes.len(), 50, "every linked window retained");
    }

    #[test]
    fn pipeline_follows_relay() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        let pipeline = BootstrapPipeline::new(relay.clone());
        for scn in 1..=5 {
            relay.ingest(window(scn, vec![put("t", &format!("k{scn}"), "v")])).unwrap();
        }
        pipeline.pump().unwrap();
        assert_eq!(pipeline.server.log_scn(), 5);
        assert_eq!(pipeline.server.applied_scn(), 5);
        assert_eq!(pipeline.server.snapshot(&ServerFilter::all()).rows.len(), 5);
    }
}
