//! Declarative data transformations — the paper's stated future work.
//!
//! §III.E: "Future work includes ... supporting declarative data
//! transformations and multi-tenancy." A consumer often wants the change
//! stream in a different shape than the source: renamed tables (schema
//! migration consumers), redacted columns (privacy boundaries), or routed
//! key prefixes (multi-tenant fan-in). Rules are declared as data, applied
//! by the client library between the relay and the consumer callback.

use bytes::Bytes;
use li_sqlstore::{Op, RowChange, RowKey};

use crate::event::Window;

/// One declarative rule. Rules match by table name and rewrite the change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformRule {
    /// Renames a table in-flight (`from` → `to`).
    RenameTable {
        /// Source table name.
        from: String,
        /// Name the consumer sees.
        to: String,
    },
    /// Drops all changes to a table (negative filtering, e.g. PII tables).
    DropTable {
        /// Table to suppress.
        table: String,
    },
    /// Replaces the value payload of a table's rows with a fixed
    /// redaction marker, preserving keys and ordering (privacy boundary:
    /// downstream learns *that* a row changed, not its contents).
    RedactValues {
        /// Table to redact.
        table: String,
    },
    /// Prefixes every key of a table with a tenant label (multi-tenancy
    /// fan-in: several sources share one consumer namespace).
    PrefixKeys {
        /// Table to rewrite.
        table: String,
        /// Prefix path element to prepend.
        prefix: String,
    },
}

/// Redaction marker used by [`TransformRule::RedactValues`].
pub const REDACTED: &[u8] = b"<redacted>";

/// An ordered rule pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transformation {
    rules: Vec<TransformRule>,
}

impl Transformation {
    /// An empty (identity) transformation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule (builder style). Rules apply in declaration order.
    #[must_use]
    pub fn with(mut self, rule: TransformRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True when no rules are declared.
    pub fn is_identity(&self) -> bool {
        self.rules.is_empty()
    }

    fn apply_change(&self, mut change: RowChange) -> Option<RowChange> {
        for rule in &self.rules {
            match rule {
                TransformRule::RenameTable { from, to } => {
                    if change.table == *from {
                        change.table = to.clone();
                    }
                }
                TransformRule::DropTable { table } => {
                    if change.table == *table {
                        return None;
                    }
                }
                TransformRule::RedactValues { table } => {
                    if change.table == *table {
                        if let Op::Put(row) = &mut change.op {
                            row.value = Bytes::from_static(REDACTED);
                        }
                    }
                }
                TransformRule::PrefixKeys { table, prefix } => {
                    if change.table == *table {
                        let mut parts = vec![prefix.clone()];
                        parts.extend(change.key.0.iter().cloned());
                        change.key = RowKey(parts);
                    }
                }
            }
        }
        Some(change)
    }

    /// Applies the pipeline to a window, preserving its SCN (checkpoints
    /// must keep advancing even when every change is dropped).
    pub fn apply(&self, window: &Window) -> Window {
        if self.is_identity() {
            return window.clone();
        }
        Window {
            source_db: window.source_db.clone(),
            scn: window.scn,
            timestamp: window.timestamp,
            changes: window
                .changes
                .iter()
                .filter_map(|c| self.apply_change(c.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_sqlstore::Row;

    fn put(table: &str, key: &str, value: &str) -> RowChange {
        RowChange {
            table: table.into(),
            key: RowKey::single(key),
            op: Op::Put(Row::new(Bytes::copy_from_slice(value.as_bytes()), 1)),
        }
    }

    fn window(changes: Vec<RowChange>) -> Window {
        Window {
            source_db: "primary".into(),
            scn: 7,
            timestamp: 70,
            changes,
        }
    }

    #[test]
    fn identity_is_a_clone() {
        let w = window(vec![put("t", "k", "v")]);
        assert_eq!(Transformation::new().apply(&w), w);
    }

    #[test]
    fn rename_and_drop() {
        let t = Transformation::new()
            .with(TransformRule::RenameTable {
                from: "member".into(),
                to: "member_v2".into(),
            })
            .with(TransformRule::DropTable {
                table: "internal_audit".into(),
            });
        let w = window(vec![put("member", "k", "v"), put("internal_audit", "k", "v")]);
        let out = t.apply(&w);
        assert_eq!(out.changes.len(), 1);
        assert_eq!(out.changes[0].table, "member_v2");
        assert_eq!(out.scn, 7, "scn preserved");
    }

    #[test]
    fn redaction_keeps_keys_hides_values() {
        let t = Transformation::new().with(TransformRule::RedactValues {
            table: "salary".into(),
        });
        let w = window(vec![put("salary", "member:1", "250000")]);
        let out = t.apply(&w);
        match &out.changes[0].op {
            Op::Put(row) => assert_eq!(row.value.as_ref(), REDACTED),
            Op::Delete => panic!("op kind must be preserved"),
        }
        assert_eq!(out.changes[0].key, RowKey::single("member:1"));
    }

    #[test]
    fn key_prefixing_for_multi_tenancy() {
        let t = Transformation::new().with(TransformRule::PrefixKeys {
            table: "events".into(),
            prefix: "tenant-a".into(),
        });
        let w = window(vec![put("events", "e1", "v")]);
        let out = t.apply(&w);
        assert_eq!(out.changes[0].key, RowKey::new(["tenant-a", "e1"]));
    }

    #[test]
    fn rules_compose_in_order() {
        // Rename first, then redact under the *new* name: order matters.
        let t = Transformation::new()
            .with(TransformRule::RenameTable {
                from: "a".into(),
                to: "b".into(),
            })
            .with(TransformRule::RedactValues { table: "b".into() });
        let out = t.apply(&window(vec![put("a", "k", "secret")]));
        match &out.changes[0].op {
            Op::Put(row) => assert_eq!(row.value.as_ref(), REDACTED),
            Op::Delete => unreachable!(),
        }
        // Reversed order would not redact.
        let t_rev = Transformation::new()
            .with(TransformRule::RedactValues { table: "b".into() })
            .with(TransformRule::RenameTable {
                from: "a".into(),
                to: "b".into(),
            });
        let out = t_rev.apply(&window(vec![put("a", "k", "secret")]));
        match &out.changes[0].op {
            Op::Put(row) => assert_eq!(row.value.as_ref(), b"secret"),
            Op::Delete => unreachable!(),
        }
    }

    #[test]
    fn deletes_pass_through_rules() {
        let t = Transformation::new().with(TransformRule::RedactValues {
            table: "t".into(),
        });
        let delete = RowChange {
            table: "t".into(),
            key: RowKey::single("k"),
            op: Op::Delete,
        };
        let out = t.apply(&window(vec![delete.clone()]));
        assert_eq!(out.changes[0], delete);
    }
}
