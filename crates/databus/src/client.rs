//! The Databus client library.
//!
//! "The Databus client library is the glue between the Relays and Bootstrap
//! servers and the business logic of the Databus consumers. It provides:
//! tracking of progress in the Databus event stream with automatic
//! switchover between the Relays and Bootstrap servers when necessary;
//! push (callbacks) or pull interface; ... retry logic if consumers fail to
//! process some events" (§III.C).
//!
//! Delivery is at-least-once with transaction-window granularity: the
//! checkpoint only advances after the consumer acknowledges a window, so a
//! crash between processing and checkpointing re-delivers the window.

use li_commons::metrics::{Counter, Gauge};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

use li_sqlstore::{Op, RowChange, Scn};

use crate::bootstrap::BootstrapServer;
use crate::event::{ServerFilter, Window};
use crate::relay::{Relay, RelayError};
use crate::transform::Transformation;

/// Errors surfaced by the client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabusError {
    /// The consumer kept failing after the configured retries.
    ConsumerFailed {
        /// SCN of the window that could not be processed.
        scn: Scn,
        /// Retries attempted.
        retries: u32,
        /// Last error message from the consumer.
        last_error: String,
    },
    /// The client fell behind the relay and no bootstrap server is
    /// configured.
    FellBehindNoBootstrap {
        /// The SCN the client was at.
        checkpoint: Scn,
        /// Oldest SCN still on the relay.
        oldest: Scn,
    },
    /// Relay-level failure.
    Relay(RelayError),
}

impl fmt::Display for DatabusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabusError::ConsumerFailed { scn, retries, last_error } => {
                write!(f, "consumer failed at scn {scn} after {retries} retries: {last_error}")
            }
            DatabusError::FellBehindNoBootstrap { checkpoint, oldest } => write!(
                f,
                "checkpoint {checkpoint} evicted (relay oldest {oldest}) and no bootstrap server"
            ),
            DatabusError::Relay(e) => write!(f, "relay error: {e}"),
        }
    }
}

impl std::error::Error for DatabusError {}

/// The consumer interface (push/callback style). Implementations get whole
/// transaction windows so they can maintain their own transactional
/// integrity.
pub trait ConsumerCallback: Send + Sync {
    /// Processes one transaction window. Returning `Err` triggers retry.
    fn on_window(&self, window: &Window) -> Result<(), String>;

    /// Called when the client switches to bootstrap-snapshot mode so the
    /// consumer can reset its state ("all clients need to re-initialize
    /// their state").
    fn on_snapshot_start(&self) {}
}

/// Statistics about how a client has been served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Windows delivered from the relay (hot path).
    pub windows_from_relay: u64,
    /// Windows synthesized from bootstrap results (catch-up path).
    pub windows_from_bootstrap: u64,
    /// Bootstrap snapshot loads.
    pub snapshots: u64,
    /// Consolidated-delta catch-ups.
    pub deltas: u64,
    /// Consumer retries performed.
    pub retries: u64,
}

/// Client-side observability under `databus.client.` in the relay's
/// registry: windows processed, switchovers to the bootstrap service, and
/// the current relay lag in SCNs (newest relay SCN minus checkpoint).
#[derive(Debug, Clone)]
struct DatabusClientMetrics {
    windows_processed: Counter,
    bootstrap_switchovers: Counter,
    relay_lag_scns: Gauge,
}

impl DatabusClientMetrics {
    fn new(relay: &Relay) -> Self {
        let scope = relay.metrics().scope("databus.client");
        DatabusClientMetrics {
            windows_processed: scope.counter("windows_processed"),
            bootstrap_switchovers: scope.counter("bootstrap_switchovers"),
            relay_lag_scns: scope.gauge("relay_lag_scns"),
        }
    }
}

/// A Databus client bound to one consumer.
pub struct DatabusClient {
    relay: Arc<Relay>,
    bootstrap: Option<Arc<BootstrapServer>>,
    consumer: Arc<dyn ConsumerCallback>,
    filter: ServerFilter,
    transformation: Transformation,
    checkpoint: Mutex<Scn>,
    /// Serializes whole poll cycles. With both a periodic pump and a
    /// push-style dispatcher (see `crate::dispatch`) driving the same
    /// client, this guarantees exactly-one delivery per window — the
    /// property the bench's conservation fingerprint counts on.
    drive: Mutex<()>,
    max_retries: u32,
    batch_windows: usize,
    stats: Mutex<ClientStats>,
    metrics: DatabusClientMetrics,
}

impl DatabusClient {
    /// Creates a client at checkpoint 0 (a brand-new consumer).
    pub fn new(
        relay: Arc<Relay>,
        bootstrap: Option<Arc<BootstrapServer>>,
        consumer: Arc<dyn ConsumerCallback>,
    ) -> Self {
        let metrics = DatabusClientMetrics::new(&relay);
        DatabusClient {
            relay,
            bootstrap,
            consumer,
            filter: ServerFilter::all(),
            transformation: Transformation::new(),
            checkpoint: Mutex::new(0),
            drive: Mutex::new(()),
            max_retries: 3,
            batch_windows: 64,
            stats: Mutex::new(ClientStats::default()),
            metrics,
        }
    }

    /// Publishes the current relay lag (never negative: a checkpoint at or
    /// past the newest buffered SCN reads as zero).
    fn refresh_lag(&self) {
        let lag = self.relay.newest_scn().saturating_sub(self.checkpoint());
        self.metrics.relay_lag_scns.set(lag as i64);
    }

    /// Builder: server-side filter (the partitioning axis for scaled
    /// consumer groups).
    #[must_use]
    pub fn with_filter(mut self, filter: ServerFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Builder: a declarative transformation pipeline applied to every
    /// window before it reaches the consumer (§III.E future work).
    #[must_use]
    pub fn with_transformation(mut self, transformation: Transformation) -> Self {
        self.transformation = transformation;
        self
    }

    /// Builder: consumer retry budget per window.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Builder: windows fetched per relay pull.
    #[must_use]
    pub fn with_batch(mut self, windows: usize) -> Self {
        self.batch_windows = windows.max(1);
        self
    }

    /// Current checkpoint (highest SCN fully processed).
    pub fn checkpoint(&self) -> Scn {
        *self.checkpoint.lock()
    }

    /// Rewinds (or fast-forwards) the checkpoint — e.g. to reprocess after
    /// an application bug fix.
    pub fn set_checkpoint(&self, scn: Scn) {
        *self.checkpoint.lock() = scn;
    }

    /// Serving statistics.
    pub fn stats(&self) -> ClientStats {
        *self.stats.lock()
    }

    fn deliver(&self, window: &Window) -> Result<(), DatabusError> {
        let transformed;
        let window = if self.transformation.is_identity() {
            window
        } else {
            transformed = self.transformation.apply(window);
            &transformed
        };
        let mut attempt = 0u32;
        loop {
            match self.consumer.on_window(window) {
                Ok(()) => return Ok(()),
                Err(msg) => {
                    if attempt >= self.max_retries {
                        return Err(DatabusError::ConsumerFailed {
                            scn: window.scn,
                            retries: attempt,
                            last_error: msg,
                        });
                    }
                    attempt += 1;
                    self.stats.lock().retries += 1;
                }
            }
        }
    }

    /// One poll cycle: pull from the relay; on falling behind, switch to
    /// the bootstrap server (consolidated delta, or full snapshot for a
    /// fresh client), then resume the relay. Returns windows processed.
    /// Safe to call from multiple threads — cycles serialize on the drive
    /// lock, so no window is ever delivered twice.
    pub fn poll_once(&self) -> Result<usize, DatabusError> {
        let _drive = self.drive.lock();
        self.poll_once_locked()
    }

    fn poll_once_locked(&self) -> Result<usize, DatabusError> {
        let checkpoint = self.checkpoint();
        match self
            .relay
            .events_after_shared(checkpoint, self.batch_windows, &self.filter)
        {
            Ok(views) => {
                // Shared views deref to `&Window`: an unfiltered consumer
                // reads straight out of relay buffer memory — no clone
                // between ingest and callback.
                let mut processed = 0;
                for view in &views {
                    self.deliver(view)?;
                    *self.checkpoint.lock() = view.scn;
                    processed += 1;
                }
                self.stats.lock().windows_from_relay += processed as u64;
                self.metrics.windows_processed.add(processed as u64);
                self.refresh_lag();
                Ok(processed)
            }
            Err(RelayError::ScnNotFound { oldest, .. }) => {
                let Some(bootstrap) = &self.bootstrap else {
                    return Err(DatabusError::FellBehindNoBootstrap {
                        checkpoint,
                        oldest,
                    });
                };
                self.metrics.bootstrap_switchovers.inc();
                // Tug the bootstrap's log writer before being served: in
                // production it follows the relay continuously, but here
                // it advances when pumped — and the pump may be parked on
                // *this client's* drive lock (its own catch-up pass runs
                // behind ours). Serving from the stale log would hand back
                // an `as_of` still below the relay's buffered range, and
                // the next cycle would fall behind again, forever. After
                // the tug the delta/snapshot is current as of now, so the
                // client lands at the relay head and resumes cleanly. This
                // also advances the relay's eviction floor, re-bounding
                // the buffer while the pump is blocked.
                bootstrap.catch_up_from(&self.relay).map_err(DatabusError::Relay)?;
                if checkpoint == 0 {
                    // Fresh client: consistent snapshot at U.
                    self.consumer.on_snapshot_start();
                    let snapshot = bootstrap.snapshot(&self.filter);
                    let as_of = snapshot.as_of_scn;
                    let window = Window {
                        source_db: self.relay.source_db().to_string(),
                        scn: as_of,
                        timestamp: 0,
                        changes: snapshot
                            .rows
                            .into_iter()
                            .map(|(table, key, row)| RowChange {
                                table,
                                key,
                                op: Op::Put(row),
                            })
                            .collect(),
                    };
                    self.deliver(&window)?;
                    *self.checkpoint.lock() = as_of;
                    let mut stats = self.stats.lock();
                    stats.snapshots += 1;
                    stats.windows_from_bootstrap += 1;
                    drop(stats);
                    self.metrics.windows_processed.inc();
                    self.refresh_lag();
                    Ok(1)
                } else {
                    // Fallen-behind client: consolidated delta since T.
                    let delta = bootstrap.consolidated_delta(checkpoint, &self.filter);
                    let as_of = delta.as_of_scn;
                    let window = Window {
                        source_db: self.relay.source_db().to_string(),
                        scn: as_of,
                        timestamp: 0,
                        changes: delta.changes,
                    };
                    self.deliver(&window)?;
                    *self.checkpoint.lock() = as_of;
                    let mut stats = self.stats.lock();
                    stats.deltas += 1;
                    stats.windows_from_bootstrap += 1;
                    drop(stats);
                    self.metrics.windows_processed.inc();
                    self.refresh_lag();
                    Ok(1)
                }
            }
            Err(e) => Err(DatabusError::Relay(e)),
        }
    }

    /// Polls until fully caught up with the relay. Returns total windows
    /// processed. Holds the drive lock for the whole run, so concurrent
    /// drivers (pump thread + dispatcher) take turns instead of
    /// interleaving within a cycle.
    pub fn catch_up(&self) -> Result<usize, DatabusError> {
        let _drive = self.drive.lock();
        let mut total = 0;
        loop {
            let n = self.poll_once_locked()?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use li_sqlstore::{Row, RowKey};
    use parking_lot::Mutex as PMutex;

    /// Consumer that folds windows into a map, tracking window boundaries.
    #[derive(Default)]
    struct MapConsumer {
        state: PMutex<std::collections::HashMap<RowKey, Bytes>>,
        windows_seen: PMutex<Vec<Scn>>,
        events_seen: PMutex<usize>,
        snapshot_resets: PMutex<u32>,
        fail_next: PMutex<u32>,
    }

    impl ConsumerCallback for MapConsumer {
        fn on_window(&self, window: &Window) -> Result<(), String> {
            {
                let mut fail = self.fail_next.lock();
                if *fail > 0 {
                    *fail -= 1;
                    return Err("transient consumer hiccup".into());
                }
            }
            let mut state = self.state.lock();
            for change in &window.changes {
                *self.events_seen.lock() += 1;
                match &change.op {
                    Op::Put(row) => {
                        state.insert(change.key.clone(), row.value.clone());
                    }
                    Op::Delete => {
                        state.remove(&change.key);
                    }
                }
            }
            self.windows_seen.lock().push(window.scn);
            Ok(())
        }

        fn on_snapshot_start(&self) {
            self.state.lock().clear();
            *self.snapshot_resets.lock() += 1;
        }
    }

    fn put(key: &str, value: &str) -> RowChange {
        RowChange {
            table: "t".into(),
            key: RowKey::single(key),
            op: Op::Put(Row::new(Bytes::copy_from_slice(value.as_bytes()), 1)),
        }
    }

    fn window(scn: Scn, changes: Vec<RowChange>) -> Window {
        Window {
            source_db: "primary".into(),
            scn,
            timestamp: scn,
            changes,
        }
    }

    #[test]
    fn hot_path_consumes_in_commit_order() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        for scn in 1..=10 {
            relay.ingest(window(scn, vec![put(&format!("k{scn}"), "v")])).unwrap();
        }
        let consumer = Arc::new(MapConsumer::default());
        let client = DatabusClient::new(relay.clone(), None, consumer.clone());
        assert_eq!(client.catch_up().unwrap(), 10);
        assert_eq!(client.checkpoint(), 10);
        let seen = consumer.windows_seen.lock().clone();
        assert_eq!(seen, (1..=10).collect::<Vec<Scn>>(), "commit order");
        assert_eq!(client.stats().windows_from_relay, 10);
        // Nothing new: zero without error.
        assert_eq!(client.poll_once().unwrap(), 0);
    }

    #[test]
    fn consumer_retry_then_success() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        relay.ingest(window(1, vec![put("k", "v")])).unwrap();
        let consumer = Arc::new(MapConsumer::default());
        *consumer.fail_next.lock() = 2;
        let client = DatabusClient::new(relay, None, consumer.clone()).with_retries(3);
        assert_eq!(client.poll_once().unwrap(), 1);
        assert_eq!(client.stats().retries, 2);
        assert_eq!(client.checkpoint(), 1);
    }

    #[test]
    fn consumer_failure_exhausts_retries_and_checkpoint_stays() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        relay.ingest(window(1, vec![put("k", "v")])).unwrap();
        let consumer = Arc::new(MapConsumer::default());
        // Exactly exhausts the budget: 1 attempt + 2 retries, all failing.
        *consumer.fail_next.lock() = 3;
        let client = DatabusClient::new(relay, None, consumer.clone()).with_retries(2);
        let err = client.poll_once().unwrap_err();
        assert!(matches!(err, DatabusError::ConsumerFailed { scn: 1, retries: 2, .. }));
        assert_eq!(client.checkpoint(), 0, "no progress on failure");
        // At-least-once: after the hiccup clears, the window re-delivers.
        assert_eq!(client.poll_once().unwrap(), 1);
        assert_eq!(client.checkpoint(), 1);
    }

    #[test]
    fn fallen_behind_switches_to_consolidated_delta_and_back() {
        // Small relay: old windows get evicted.
        let relay = Arc::new(Relay::new("primary", 2048));
        let bootstrap = Arc::new(BootstrapServer::new());
        let consumer = Arc::new(MapConsumer::default());
        let client =
            DatabusClient::new(relay.clone(), Some(bootstrap.clone()), consumer.clone());

        // Client processes scn 1..3 from the relay.
        for scn in 1..=3u64 {
            relay.ingest(window(scn, vec![put(&format!("k{scn}"), "v1")])).unwrap();
            bootstrap.ingest(window(scn, vec![put(&format!("k{scn}"), "v1")]));
        }
        assert_eq!(client.catch_up().unwrap(), 3);

        // Client stalls; 200 more commits blow past the relay buffer,
        // many updating the same hot key.
        for scn in 4..=203u64 {
            let w = window(scn, vec![put("hot", &format!("v{scn}")), put(&format!("k{scn}"), "x")]);
            relay.ingest(w.clone()).unwrap();
            bootstrap.ingest(w);
        }
        assert!(relay.oldest_scn() > 4, "relay evicted the tail");

        // Resume: first poll takes the bootstrap (consolidated delta)...
        let n = client.poll_once().unwrap();
        assert_eq!(n, 1, "one consolidated window");
        assert_eq!(client.stats().deltas, 1);
        assert_eq!(client.checkpoint(), 203);
        // The delta collapsed 400 raw events into ≤ 201 rows.
        let events = *consumer.events_seen.lock();
        assert!(events <= 3 + 201, "fast playback: saw {events} events");
        // ...and the state is correct.
        assert_eq!(
            consumer.state.lock().get(&RowKey::single("hot")).unwrap().as_ref(),
            b"v203"
        );
        // Subsequent traffic flows from the relay again.
        relay.ingest(window(204, vec![put("after", "y")])).unwrap();
        assert_eq!(client.poll_once().unwrap(), 1);
        assert_eq!(client.stats().windows_from_relay, 4);
    }

    #[test]
    fn fallen_behind_with_stale_bootstrap_and_parked_pump_terminates() {
        // The 10^6-member site-bench livelock, in miniature: the
        // bootstrap's log writer only advances when pumped, the pump is
        // parked (here: nobody calls it; in the bench: blocked on this
        // very client's drive lock), and a fat-window burst blows the
        // client off the relay. Pre-fix, catch_up spun forever re-serving
        // the same stale consolidated delta — its as_of never reached the
        // relay's buffered range. The eviction floor keeps the unlinked
        // suffix buffered and the in-band tug advances the log writer, so
        // one delta lands the client at the head.
        let relay = Arc::new(Relay::new("primary", 4096));
        relay.set_eviction_floor(0);
        let bootstrap = Arc::new(BootstrapServer::new());
        let consumer = Arc::new(MapConsumer::default());
        let client =
            DatabusClient::new(relay.clone(), Some(bootstrap.clone()), consumer.clone());
        for scn in 1..=3u64 {
            relay.ingest(window(scn, vec![put(&format!("k{scn}"), "v1")])).unwrap();
        }
        bootstrap.catch_up_from(&relay).unwrap();
        assert_eq!(client.catch_up().unwrap(), 3);

        // The pump runs once more with the log tail at 100, then parks.
        for scn in 4..=100u64 {
            relay.ingest(window(scn, vec![put("hot", "warm")])).unwrap();
        }
        bootstrap.catch_up_from(&relay).unwrap();
        // Fat burst far past the byte budget: the linked prefix (and with
        // it the client's position) is evicted; the unlinked suffix pins.
        let fat = "y".repeat(256);
        for scn in 101..=300u64 {
            relay.ingest(window(scn, vec![put("hot", &fat)])).unwrap();
        }
        assert!(relay.oldest_scn() > 4, "client's position evicted");
        assert_eq!(bootstrap.log_scn(), 100, "log writer is stale");

        let n = client.catch_up().unwrap();
        assert!(n >= 1);
        assert_eq!(client.checkpoint(), 300, "landed at the relay head");
        assert_eq!(bootstrap.log_scn(), 300, "client tugged the log writer");
        assert_eq!(client.stats().deltas, 1, "one consolidated delta sufficed");
        assert_eq!(
            consumer.state.lock().get(&RowKey::single("hot")).unwrap().as_ref(),
            fat.as_bytes()
        );
    }

    #[test]
    fn fresh_client_bootstraps_with_snapshot() {
        let relay = Arc::new(Relay::new("primary", 1024));
        let bootstrap = Arc::new(BootstrapServer::new());
        // History long gone from the relay.
        for scn in 1..=100u64 {
            let w = window(scn, vec![put(&format!("k{}", scn % 10), &format!("v{scn}"))]);
            relay.ingest(w.clone()).unwrap();
            bootstrap.ingest(w);
        }
        bootstrap.apply_log();
        assert!(relay.oldest_scn() > 1);

        let consumer = Arc::new(MapConsumer::default());
        let client = DatabusClient::new(relay, Some(bootstrap), consumer.clone());
        assert_eq!(client.poll_once().unwrap(), 1);
        assert_eq!(*consumer.snapshot_resets.lock(), 1);
        assert_eq!(client.stats().snapshots, 1);
        assert_eq!(client.checkpoint(), 100);
        // Snapshot contains exactly the 10 live keys at their final values.
        let state = consumer.state.lock();
        assert_eq!(state.len(), 10);
        assert_eq!(state.get(&RowKey::single("k9")).unwrap().as_ref(), b"v99");
    }

    #[test]
    fn fallen_behind_without_bootstrap_errors() {
        let relay = Arc::new(Relay::new("primary", 1024));
        for scn in 1..=50u64 {
            relay.ingest(window(scn, vec![put(&format!("k{scn}"), "v")])).unwrap();
        }
        let consumer = Arc::new(MapConsumer::default());
        let client = DatabusClient::new(relay, None, consumer);
        let err = client.poll_once().unwrap_err();
        assert!(matches!(err, DatabusError::FellBehindNoBootstrap { .. }));
    }

    #[test]
    fn checkpoint_rewind_reprocesses() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        for scn in 1..=5u64 {
            relay.ingest(window(scn, vec![put(&format!("k{scn}"), "v")])).unwrap();
        }
        let consumer = Arc::new(MapConsumer::default());
        let client = DatabusClient::new(relay, None, consumer.clone());
        client.catch_up().unwrap();
        client.set_checkpoint(2);
        client.catch_up().unwrap();
        let seen = consumer.windows_seen.lock().clone();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 3, 4, 5]);
    }

    #[test]
    fn declarative_transformation_rewrites_stream_in_flight() {
        use crate::transform::{TransformRule, Transformation, REDACTED};
        fn put_in(table: &str, key: &str, value: &str) -> RowChange {
            RowChange {
                table: table.into(),
                key: RowKey::single(key),
                op: Op::Put(Row::new(Bytes::copy_from_slice(value.as_bytes()), 1)),
            }
        }
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        relay
            .ingest(window(
                1,
                vec![put_in("salary", "m1", "250000"), put_in("profile", "m1", "text")],
            ))
            .unwrap();
        let consumer = Arc::new(MapConsumer::default());
        let client = DatabusClient::new(relay, None, consumer.clone()).with_transformation(
            Transformation::new()
                .with(TransformRule::RedactValues {
                    table: "salary".into(),
                })
                .with(TransformRule::PrefixKeys {
                    table: "profile".into(),
                    prefix: "tenant-a".into(),
                }),
        );
        client.catch_up().unwrap();
        let state = consumer.state.lock();
        assert_eq!(state.get(&RowKey::single("m1")).unwrap().as_ref(), REDACTED);
        assert!(state.contains_key(&RowKey::new(["tenant-a", "m1"])));
    }

    #[test]
    fn paused_relay_shows_growing_lag_not_silent_success() {
        // A paused relay answers `Ok(vec![])` — on the wire identical to
        // "caught up". The stall must still be observable: the relay
        // counts serves-while-paused, and the client's lag gauge keeps
        // refreshing (and growing, since ingestion continues).
        let registry = li_commons::metrics::MetricsRegistry::new();
        let relay = Arc::new(Relay::with_metrics("primary", 1 << 20, &registry));
        let consumer = Arc::new(MapConsumer::default());
        let client = DatabusClient::new(relay.clone(), None, consumer);
        for scn in 1..=3u64 {
            relay.ingest(window(scn, vec![put(&format!("k{scn}"), "v")])).unwrap();
        }
        client.catch_up().unwrap();
        let lag = || registry.snapshot().gauge("databus.client.relay_lag_scns").unwrap();
        assert_eq!(lag(), 0);

        relay.set_paused(true);
        relay.ingest(window(4, vec![put("k4", "v")])).unwrap();
        relay.ingest(window(5, vec![put("k5", "v")])).unwrap();
        assert_eq!(client.poll_once().unwrap(), 0, "stall looks like idle on the wire");
        assert_eq!(lag(), 2, "but the lag gauge keeps refreshing");
        assert_eq!(relay.served_while_paused(), 1);
        relay.ingest(window(6, vec![put("k6", "v")])).unwrap();
        assert_eq!(client.poll_once().unwrap(), 0);
        assert_eq!(lag(), 3, "lag grows while paused");
        assert_eq!(
            registry
                .snapshot()
                .counter("databus.relay.primary.served_while_paused"),
            Some(2)
        );

        relay.set_paused(false);
        assert_eq!(client.catch_up().unwrap(), 3);
        assert_eq!(lag(), 0, "drains after unpause");
    }

    #[test]
    fn partitioned_consumer_group_divides_stream() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        for scn in 1..=100u64 {
            relay
                .ingest(window(scn, vec![put(&format!("resource-{scn}"), "v")]))
                .unwrap();
        }
        let k = 4u32;
        let consumers: Vec<Arc<MapConsumer>> =
            (0..k).map(|_| Arc::new(MapConsumer::default())).collect();
        let clients: Vec<DatabusClient> = (0..k)
            .map(|id| {
                DatabusClient::new(relay.clone(), None, consumers[id as usize].clone())
                    .with_filter(ServerFilter::for_partition(k, id))
            })
            .collect();
        for client in &clients {
            client.catch_up().unwrap();
        }
        // Each event processed by exactly one group member.
        let total: usize = consumers.iter().map(|c| c.state.lock().len()).sum();
        assert_eq!(total, 100);
        for consumer in &consumers {
            assert!(!consumer.state.lock().is_empty(), "all members got work");
        }
    }
}
