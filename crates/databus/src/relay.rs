//! The relay: in-memory circular event buffer with an SCN index.
//!
//! "The serialized events are stored in a circular in-memory buffer that is
//! used to serve events to the Databus clients. ... The relay with the
//! in-memory circular buffer provides: default serving path with very low
//! latency (<1 ms); efficient buffering ...; index structures to
//! efficiently serve to Databus clients events from a given sequence
//! number S; server-side filtering ...; support of hundreds of consumers
//! per relay with no additional impact on the source database" (§III.C).
//!
//! Windows are evicted whole from the head when the buffer exceeds its
//! byte budget; a client requesting an SCN older than the buffered tail
//! gets [`RelayError::ScnNotFound`] and falls back to the bootstrap
//! server. Because windows are stored in SCN order and SCNs are dense per
//! source, locating a start SCN is a binary search (the paper's "index
//! structures").
//!
//! # Serving-path ownership (zero-copy fan-out)
//!
//! Every ingested window is frozen once into an [`SharedWindow`]
//! (`Arc<FrozenWindow>`) carrying a cached size estimate and an ingest-time
//! [`crate::event::FilterSummary`]. The buffer mutex is held only to locate
//! the `(start, len)` range by the dense-SCN computation and to clone the
//! cheap `Arc`s; all filter evaluation happens on the *caller's* thread,
//! outside the lock. An unfiltered consumer gets [`WindowView::Shared`]
//! views that alias buffer memory — zero per-change work per serve — so
//! serving cost no longer scales with consumers × buffered bytes and
//! hundreds of consumers do not serialize on the buffer lock.

use li_commons::metrics::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use li_sqlstore::{BinlogEntry, Scn, ShipError, Shipper};

use crate::event::{FrozenWindow, ServerFilter, SharedWindow, Window, WindowView};

/// Relay observability under `databus.relay.<source>.`: change events
/// relayed to clients, windows ingested from the source, the newest
/// buffered SCN (the reference point for client lag), and reads absorbed
/// while serving was paused (stall-vs-idle disambiguation).
#[derive(Debug, Clone)]
struct RelayMetrics {
    events_relayed: Counter,
    windows_in: Counter,
    newest_scn: Gauge,
    served_while_paused: Counter,
}

impl RelayMetrics {
    fn new(registry: &Arc<MetricsRegistry>, source_db: &str) -> Self {
        let scope = registry.scope(format!("databus.relay.{source_db}"));
        RelayMetrics {
            events_relayed: scope.counter("events_relayed"),
            windows_in: scope.counter("windows_ingested"),
            newest_scn: scope.gauge("newest_scn"),
            served_while_paused: scope.counter("served_while_paused"),
        }
    }
}

/// Errors from relay serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// The requested SCN has been evicted from the circular buffer; the
    /// client must bootstrap. Carries the oldest SCN still buffered.
    ScnNotFound {
        /// SCN requested by the client.
        requested: Scn,
        /// Oldest SCN still available in the buffer (0 when empty).
        oldest: Scn,
    },
    /// Events from one source must arrive in dense SCN order.
    OutOfOrder {
        /// SCN that arrived.
        got: Scn,
        /// SCN that was expected.
        expected: Scn,
    },
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::ScnNotFound { requested, oldest } => {
                write!(f, "scn {requested} evicted (oldest buffered: {oldest})")
            }
            RelayError::OutOfOrder { got, expected } => {
                write!(f, "out-of-order scn {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RelayError {}

#[derive(Debug, Default)]
struct Buffer {
    windows: VecDeque<SharedWindow>,
    bytes: usize,
    /// The SCN the next ingested window must carry. Zero means "unset" (a
    /// fresh relay, or one chained mid-stream, accepts any start). Unlike
    /// the window deque, this watermark survives eviction and full drains,
    /// so an SCN gap can never silently open a hole in the stream.
    expected_next: Scn,
    /// Eviction floor: windows with `scn > floor` are pinned in the buffer
    /// even past the byte budget. `None` means unpinned (evict freely).
    /// The bootstrap's log writer advances the floor to its log tail as it
    /// links windows — the relay never drops a window the long-look-back
    /// store hasn't persisted, because such a window would be gone from the
    /// whole system (the relay is the only other holder).
    pin_floor: Option<Scn>,
}

impl Buffer {
    /// Validates one candidate SCN against the watermark.
    fn check_scn(&self, expected: Scn, got: Scn) -> Result<(), RelayError> {
        if expected != 0 && got != expected {
            return Err(RelayError::OutOfOrder { got, expected });
        }
        Ok(())
    }
}

/// A Databus relay. Thread-safe; share via `Arc`. One relay buffers one
/// source database's stream (the paper runs "multiple shared-nothing
/// relays").
pub struct Relay {
    source_db: String,
    max_bytes: usize,
    buffer: Mutex<Buffer>,
    /// Serving pause (chaos hook): a paused relay keeps ingesting —
    /// semi-sync commits stay durable — but serves nothing, like a relay
    /// whose serving threads are stalled in GC. Consumers simply see no
    /// progress and fall behind (possibly off the buffer).
    paused: std::sync::atomic::AtomicBool,
    /// Monotonic counters for the source-isolation experiment: how many
    /// client reads the relay absorbed (that never touched the source DB).
    reads_served: AtomicU64,
    windows_ingested: AtomicU64,
    /// Reads answered while serving was paused: the signal that lets a
    /// consumer (or an operator) tell "relay stalled" apart from "stream
    /// idle" — both look like an empty response on the wire.
    served_while_paused: AtomicU64,
    /// High-water-mark watch: published once per ingest batch with the
    /// newest buffered SCN, so dispatchers sleep on a change notification
    /// instead of polling `newest_scn()` in a loop.
    scn_watch: li_commons::watch::Sender<Scn>,
    registry: Arc<MetricsRegistry>,
    metrics: RelayMetrics,
}

impl fmt::Debug for Relay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let buffer = self.buffer.lock();
        f.debug_struct("Relay")
            .field("source_db", &self.source_db)
            .field("buffered_windows", &buffer.windows.len())
            .field("buffered_bytes", &buffer.bytes)
            .finish()
    }
}

impl Relay {
    /// Creates a relay for `source_db` with a byte budget for the circular
    /// buffer, reporting into a private metrics registry.
    pub fn new(source_db: impl Into<String>, max_bytes: usize) -> Self {
        Self::with_metrics(source_db, max_bytes, &MetricsRegistry::new())
    }

    /// Creates a relay reporting under `databus.relay.<source>.` in
    /// `registry`. Clients of this relay report into the same registry.
    pub fn with_metrics(
        source_db: impl Into<String>,
        max_bytes: usize,
        registry: &Arc<MetricsRegistry>,
    ) -> Self {
        let source_db = source_db.into();
        Relay {
            metrics: RelayMetrics::new(registry, &source_db),
            source_db,
            max_bytes: max_bytes.max(1),
            buffer: Mutex::new(Buffer::default()),
            paused: std::sync::atomic::AtomicBool::new(false),
            reads_served: AtomicU64::new(0),
            windows_ingested: AtomicU64::new(0),
            served_while_paused: AtomicU64::new(0),
            scn_watch: li_commons::watch::channel(0).0,
            registry: Arc::clone(registry),
        }
    }

    /// Subscribes to the relay's high-water mark: the receiver wakes on
    /// every ingest batch with the newest buffered SCN. The backbone of
    /// push-style stream dispatch (see `crate::dispatch`).
    pub fn scn_watch(&self) -> li_commons::watch::Receiver<Scn> {
        self.scn_watch.subscribe()
    }

    /// The metrics registry this relay (and its clients) report into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The source database this relay captures.
    pub fn source_db(&self) -> &str {
        &self.source_db
    }

    /// Ingests one committed transaction. SCNs must be dense and
    /// increasing.
    pub fn ingest(&self, window: Window) -> Result<(), RelayError> {
        self.ingest_shared(FrozenWindow::freeze(window))
    }

    /// Ingests an already-frozen window (zero-copy chaining: the upstream
    /// relay, this relay, and every consumer share one allocation).
    pub fn ingest_shared(&self, window: SharedWindow) -> Result<(), RelayError> {
        self.ingest_shared_batch(std::iter::once(window)).map(|_| ())
    }

    /// Batched ingest: freezes each window once and takes the buffer lock
    /// once for the whole batch. The batch is atomic — an SCN gap anywhere
    /// in it rejects the entire batch with nothing ingested.
    pub fn ingest_batch(&self, windows: Vec<Window>) -> Result<usize, RelayError> {
        // Freeze (encode + summarize) outside the lock.
        let frozen: Vec<SharedWindow> = windows.into_iter().map(FrozenWindow::freeze).collect();
        self.ingest_shared_batch(frozen)
    }

    /// Batched shared ingest: one lock acquisition, one eviction pass, one
    /// metrics update for the whole batch. Validates the full SCN chain
    /// before mutating anything (atomic accept/reject).
    pub fn ingest_shared_batch(
        &self,
        windows: impl IntoIterator<Item = SharedWindow>,
    ) -> Result<usize, RelayError> {
        let windows: Vec<SharedWindow> = windows.into_iter().collect();
        if windows.is_empty() {
            return Ok(0);
        }
        let mut buffer = self.buffer.lock();
        // Validate the whole chain against the watermark first.
        let mut expected = buffer.expected_next;
        for window in &windows {
            buffer.check_scn(expected, window.window().scn)?;
            expected = window.window().scn + 1;
        }
        for window in &windows {
            buffer.bytes += window.size_estimate();
            buffer.expected_next = window.window().scn + 1;
            buffer.windows.push_back(Arc::clone(window));
        }
        // Evict whole windows from the head until within budget (always
        // keep at least the newest window, and never a window past the
        // pin floor — the bootstrap hasn't linked it yet).
        while buffer.bytes > self.max_bytes && buffer.windows.len() > 1 {
            let front_scn = buffer.windows.front().map_or(0, |w| w.window().scn);
            if buffer.pin_floor.is_some_and(|floor| front_scn > floor) {
                break;
            }
            if let Some(evicted) = buffer.windows.pop_front() {
                buffer.bytes -= evicted.size_estimate();
            }
        }
        let newest = buffer.windows.back().map_or(0, |w| w.window().scn);
        // Publish the high-water gauge under the buffer lock: set after
        // the drop, two concurrent batches can land out of SCN order and
        // leave the gauge stale (the counters and the watch are
        // order-insensitive and stay outside).
        self.metrics.newest_scn.set(newest as i64);
        drop(buffer);
        let n = windows.len();
        self.windows_ingested.fetch_add(n as u64, Ordering::Relaxed);
        self.metrics.windows_in.add(n as u64);
        self.scn_watch.send(newest);
        Ok(n)
    }

    /// Ingests straight from a source binlog entry.
    pub fn ingest_binlog(&self, source_db: &str, entry: &BinlogEntry) -> Result<(), RelayError> {
        self.ingest(Window::from_binlog(source_db, entry))
    }

    /// Restores the dense-SCN watermark after a relay restart: subsequent
    /// ingests must resume at exactly `next_expected`, so a gap between
    /// what was captured before the crash and what arrives after it is
    /// rejected as [`RelayError::OutOfOrder`] instead of silently opening
    /// a hole in the stream.
    pub fn resume_expecting(&self, next_expected: Scn) {
        self.buffer.lock().expected_next = next_expected;
    }

    /// The SCN the next ingest must carry (0 when the relay has never
    /// ingested and no watermark was restored).
    pub fn expected_next_scn(&self) -> Scn {
        self.buffer.lock().expected_next
    }

    /// Pins windows with `scn > floor` against byte-budget eviction. The
    /// bootstrap's log writer calls this with its log tail after every
    /// catch-up: everything at or below the tail is durably linked in log
    /// storage and may be evicted; everything above it exists *only* here,
    /// so dropping it would lose committed writes for good (a fallen-behind
    /// consumer's consolidated delta could then never reach the relay's
    /// buffered range — the livelock the site bench hit at 10^6 members).
    /// The buffer may transiently exceed its budget while the floor lags;
    /// the floor advances every pump and every fallen-behind switchover,
    /// so the overshoot is bounded by one catch-up interval of writes.
    pub fn set_eviction_floor(&self, floor: Scn) {
        self.buffer.lock().pin_floor = Some(floor);
    }

    /// The current eviction floor (`None` = unpinned, evict freely).
    pub fn eviction_floor(&self) -> Option<Scn> {
        self.buffer.lock().pin_floor
    }

    /// Oldest SCN still buffered (0 when empty).
    pub fn oldest_scn(&self) -> Scn {
        self.buffer.lock().windows.front().map_or(0, |w| w.window().scn)
    }

    /// Newest SCN buffered (0 when empty).
    pub fn newest_scn(&self) -> Scn {
        self.buffer.lock().windows.back().map_or(0, |w| w.window().scn)
    }

    /// Number of buffered windows.
    pub fn window_count(&self) -> usize {
        self.buffer.lock().windows.len()
    }

    /// Approximate buffered bytes.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.lock().bytes
    }

    /// Serves up to `max_windows` windows with `scn > after_scn`, filtered
    /// server-side. Legacy eager adapter over [`Relay::events_after_shared`]
    /// — materializes an owned clone per window; prefer the shared-view
    /// path for anything hot.
    pub fn events_after(
        &self,
        after_scn: Scn,
        max_windows: usize,
        filter: &ServerFilter,
    ) -> Result<Vec<Window>, RelayError> {
        Ok(self
            .events_after_shared(after_scn, max_windows, filter)?
            .into_iter()
            .map(WindowView::into_window)
            .collect())
    }

    /// The default (hot) serving path: up to `max_windows` windows with
    /// `scn > after_scn`, filtered server-side, as zero-copy views.
    ///
    /// The buffer lock is held only long enough to locate the
    /// `(start, len)` range (a dense-SCN index computation) and clone the
    /// range's `Arc`s; filter evaluation runs on the caller's thread. With
    /// a pass-all filter every view is [`WindowView::Shared`] and serving
    /// does zero per-change work; a filtered consumer skips windows whose
    /// ingest-time summary proves no change can match without touching
    /// their payloads.
    ///
    /// Fails with [`RelayError::ScnNotFound`] when `after_scn` predates the
    /// buffer: the client has fallen behind and must bootstrap — serving it
    /// from here would require going back to the source database, which the
    /// relay exists to isolate.
    pub fn events_after_shared(
        &self,
        after_scn: Scn,
        max_windows: usize,
        filter: &ServerFilter,
    ) -> Result<Vec<WindowView>, RelayError> {
        if self.is_paused() {
            self.served_while_paused.fetch_add(1, Ordering::Relaxed);
            self.metrics.served_while_paused.inc();
            return Ok(Vec::new());
        }
        // Under the lock: bounds checks, dense-SCN range location, and
        // cheap Arc clones — nothing proportional to payload bytes.
        let shared: Vec<SharedWindow> = {
            let buffer = self.buffer.lock();
            let oldest = buffer.windows.front().map_or(0, |w| w.window().scn);
            let newest = buffer.windows.back().map_or(0, |w| w.window().scn);
            if buffer.windows.is_empty() || after_scn >= newest {
                // Fully caught up (or empty): nothing to serve.
                if after_scn + 1 < oldest {
                    return Err(RelayError::ScnNotFound {
                        requested: after_scn,
                        oldest,
                    });
                }
                self.reads_served.fetch_add(1, Ordering::Relaxed);
                return Ok(Vec::new());
            }
            if after_scn + 1 < oldest {
                return Err(RelayError::ScnNotFound {
                    requested: after_scn,
                    oldest,
                });
            }
            // Dense SCNs: the first window to serve sits at a computable
            // index.
            let start = (after_scn + 1 - oldest) as usize;
            buffer
                .windows
                .iter()
                .skip(start)
                .take(max_windows)
                .map(Arc::clone)
                .collect()
        };
        self.reads_served.fetch_add(1, Ordering::Relaxed);
        // Outside the lock: per-consumer filter work on the caller's
        // thread. Pass-all short-circuits to pure Arc moves.
        let out: Vec<WindowView> = if filter.is_pass_all() {
            shared.into_iter().map(WindowView::Shared).collect()
        } else {
            shared.iter().map(|w| filter.apply_view(w)).collect()
        };
        let events: usize = out.iter().map(|w| w.changes.len()).sum();
        self.metrics.events_relayed.add(events as u64);
        Ok(out)
    }

    /// Chains this relay behind `upstream`: pulls every window this relay
    /// does not yet have. "We typically run multiple shared-nothing relays
    /// that are either connected directly to the database, or to other
    /// relays to provide replicated availability of the change stream"
    /// (§III.C). Zero-copy: both relays' buffers share the same frozen
    /// windows. Returns windows linked.
    pub fn chain_from(&self, upstream: &Relay) -> Result<usize, RelayError> {
        let have = self.newest_scn();
        let views = upstream.events_after_shared(have, usize::MAX, &ServerFilter::all())?;
        self.ingest_shared_batch(
            views
                .into_iter()
                .map(|v| v.into_shared().expect("pass-all views are shared")),
        )
    }

    /// Number of client reads served from the buffer (source isolation
    /// metric: these reads never reached the source database).
    pub fn reads_served(&self) -> u64 {
        self.reads_served.load(Ordering::Relaxed)
    }

    /// Number of windows ingested from the source (the *only* per-source
    /// cost, independent of consumer count).
    pub fn windows_ingested(&self) -> u64 {
        self.windows_ingested.load(Ordering::Relaxed)
    }

    /// Number of reads answered (with an empty result) while serving was
    /// paused. A growing value alongside growing client lag means the
    /// relay is stalled, not idle.
    pub fn served_while_paused(&self) -> u64 {
        self.served_while_paused.load(Ordering::Relaxed)
    }

    /// Chaos pause hook: while paused the relay ingests but serves
    /// nothing (see the `paused` field). No-op when already in the
    /// requested state.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }

    /// Whether serving is currently paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Chaos invariant checker — the Espresso within-key commit-order
    /// check, phrased over the relay's buffered stream: window SCNs must
    /// be dense and strictly increasing, and for every `(table, key)` the
    /// etags of successive `Put` images (which Espresso sets to the commit
    /// SCN) must be strictly increasing. A violation means a source
    /// shipped commits out of order or a failover rewrote history.
    pub fn verify_commit_order(&self) -> Result<(), String> {
        let buffer = self.buffer.lock();
        let mut last_scn: Option<Scn> = None;
        let mut last_etag: std::collections::HashMap<(String, String), u64> =
            std::collections::HashMap::new();
        for frozen in &buffer.windows {
            let window = frozen.window();
            if let Some(prev) = last_scn {
                if window.scn != prev + 1 {
                    return Err(format!(
                        "window scn {} after {prev}: not dense/increasing",
                        window.scn
                    ));
                }
            }
            last_scn = Some(window.scn);
            // Last image of each key within this window (a transaction may
            // touch a key more than once at one SCN).
            let mut in_window: std::collections::HashMap<(String, String), u64> =
                std::collections::HashMap::new();
            for change in &window.changes {
                let li_sqlstore::Op::Put(row) = &change.op else {
                    continue;
                };
                let key = (change.table.clone(), format!("{:?}", change.key));
                in_window.insert(key, row.etag);
            }
            for (key, etag) in in_window {
                if let Some(&prev) = last_etag.get(&key) {
                    if etag <= prev {
                        return Err(format!(
                            "key {key:?} etag {etag} at scn {} not after {prev}",
                            window.scn
                        ));
                    }
                }
                last_etag.insert(key, etag);
            }
        }
        Ok(())
    }
}

/// Relays are valid semi-synchronous shipping targets: Espresso commits
/// block until the relay has the entry ("Each change is written to two
/// places before being committed — the local MySQL binlog and the Databus
/// relay", §IV.B).
impl Shipper for Relay {
    fn ship(&self, source: &str, entry: &BinlogEntry) -> Result<(), ShipError> {
        self.ingest_binlog(source, entry)
            .map_err(|e| ShipError(e.to_string()))
    }

    /// Batched shipping: each entry is frozen once and the buffer lock is
    /// taken once for the whole batch.
    fn ship_batch(&self, source: &str, entries: &[BinlogEntry]) -> Result<(), ShipError> {
        self.ingest_batch(
            entries
                .iter()
                .map(|e| Window::from_binlog(source, e))
                .collect(),
        )
        .map(|_| ())
        .map_err(|e| ShipError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use li_sqlstore::{Op, Row, RowChange, RowKey};

    fn window(scn: Scn, payload: usize) -> Window {
        Window {
            source_db: "primary".into(),
            scn,
            timestamp: scn,
            changes: vec![RowChange {
                table: "member".into(),
                key: RowKey::single(format!("k{scn}")),
                op: Op::Put(Row::new(Bytes::from(vec![b'x'; payload]), 1)),
            }],
        }
    }

    #[test]
    fn serves_from_scn_in_order() {
        let relay = Relay::new("primary", 1 << 20);
        for scn in 1..=10 {
            relay.ingest(window(scn, 10)).unwrap();
        }
        let got = relay.events_after(3, 100, &ServerFilter::all()).unwrap();
        assert_eq!(got.len(), 7);
        assert_eq!(got[0].scn, 4);
        assert_eq!(got.last().unwrap().scn, 10);
        // max_windows respected.
        let got = relay.events_after(0, 2, &ServerFilter::all()).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].scn, 2);
    }

    #[test]
    fn caught_up_client_gets_empty() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        assert!(relay.events_after(1, 10, &ServerFilter::all()).unwrap().is_empty());
        assert!(relay.events_after(5, 10, &ServerFilter::all()).unwrap().is_empty());
    }

    #[test]
    fn empty_relay_serves_nothing() {
        let relay = Relay::new("primary", 1 << 20);
        assert!(relay.events_after(0, 10, &ServerFilter::all()).unwrap().is_empty());
    }

    #[test]
    fn eviction_is_whole_windows_and_fallen_clients_error() {
        // Budget for roughly 3 windows of ~1KB.
        let relay = Relay::new("primary", 3200);
        for scn in 1..=10 {
            relay.ingest(window(scn, 1000)).unwrap();
        }
        assert!(relay.window_count() < 10, "old windows evicted");
        let oldest = relay.oldest_scn();
        assert!(oldest > 1);
        // A client at SCN 0 has fallen off the buffer.
        let err = relay.events_after(0, 10, &ServerFilter::all()).unwrap_err();
        assert_eq!(
            err,
            RelayError::ScnNotFound {
                requested: 0,
                oldest
            }
        );
        // A client exactly at the tail boundary is fine.
        assert!(relay
            .events_after(oldest - 1, 100, &ServerFilter::all())
            .is_ok());
    }

    #[test]
    fn eviction_floor_pins_unlinked_windows() {
        // Budget for roughly 3 windows of ~1KB, but everything above the
        // floor is pinned regardless.
        let relay = Relay::new("primary", 3200);
        relay.set_eviction_floor(0);
        for scn in 1..=10 {
            relay.ingest(window(scn, 1000)).unwrap();
        }
        assert_eq!(relay.window_count(), 10, "nothing linked, nothing evicted");
        assert!(relay.buffered_bytes() > 3200, "budget overshoot is allowed");
        // The log writer links 1..=7: they become evictable on the next
        // ingest, but the unlinked suffix stays.
        relay.set_eviction_floor(7);
        relay.ingest(window(11, 1000)).unwrap();
        assert_eq!(relay.oldest_scn(), 8, "evicted exactly the linked prefix");
        let err = relay.events_after(0, 10, &ServerFilter::all()).unwrap_err();
        assert_eq!(err, RelayError::ScnNotFound { requested: 0, oldest: 8 });
    }

    #[test]
    fn out_of_order_ingest_rejected() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        relay.ingest(window(2, 10)).unwrap();
        assert_eq!(
            relay.ingest(window(2, 10)).unwrap_err(),
            RelayError::OutOfOrder { got: 2, expected: 3 }
        );
        assert_eq!(
            relay.ingest(window(5, 10)).unwrap_err(),
            RelayError::OutOfOrder { got: 5, expected: 3 }
        );
    }

    #[test]
    fn relay_can_start_mid_stream() {
        // A relay chained to another relay may start at an arbitrary SCN.
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(100, 10)).unwrap();
        relay.ingest(window(101, 10)).unwrap();
        assert_eq!(relay.oldest_scn(), 100);
    }

    #[test]
    fn restored_watermark_rejects_scn_gap_after_restart() {
        // Before the watermark, a restarted (empty) relay accepted any
        // starting SCN — a gap between pre-crash capture and post-restart
        // ingest silently created a hole. Now the hole is an error.
        let pre_crash = Relay::new("primary", 1 << 20);
        for scn in 1..=5 {
            pre_crash.ingest(window(scn, 10)).unwrap();
        }

        let restarted = Relay::new("primary", 1 << 20);
        restarted.resume_expecting(pre_crash.newest_scn() + 1);
        assert_eq!(restarted.expected_next_scn(), 6);
        // The source moved on while the relay was down: SCN 8 arrives.
        assert_eq!(
            restarted.ingest(window(8, 10)).unwrap_err(),
            RelayError::OutOfOrder { got: 8, expected: 6 }
        );
        // Replaying from the watermark is accepted.
        restarted.ingest(window(6, 10)).unwrap();
        restarted.ingest(window(7, 10)).unwrap();
        restarted.ingest(window(8, 10)).unwrap();
        assert_eq!(restarted.newest_scn(), 8);
    }

    #[test]
    fn batch_ingest_is_atomic_and_single_lock() {
        let relay = Relay::new("primary", 1 << 20);
        assert_eq!(
            relay.ingest_batch((1..=10).map(|scn| window(scn, 10)).collect()).unwrap(),
            10
        );
        assert_eq!(relay.newest_scn(), 10);
        // A gap anywhere rejects the whole batch: nothing ingested.
        let err = relay
            .ingest_batch(vec![window(11, 10), window(13, 10)])
            .unwrap_err();
        assert_eq!(err, RelayError::OutOfOrder { got: 13, expected: 12 });
        assert_eq!(relay.newest_scn(), 10, "atomic reject");
        assert_eq!(relay.windows_ingested(), 10);
        // Empty batch is a no-op.
        assert_eq!(relay.ingest_batch(Vec::new()).unwrap(), 0);
    }

    #[test]
    fn server_side_filter_applied() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        let filter = ServerFilter::for_tables(["company"]);
        let got = relay.events_after(0, 10, &filter).unwrap();
        assert_eq!(got.len(), 1, "window delivered for checkpointing");
        assert!(got[0].is_empty(), "changes filtered out");
    }

    #[test]
    fn unfiltered_views_share_buffer_allocation() {
        // The zero-copy contract at the relay level: two independent
        // consumers' views are the *same* frozen window, and their payload
        // bytes alias the allocation that was ingested.
        let payload = Bytes::from(vec![b'z'; 512]);
        let relay = Relay::new("primary", 1 << 20);
        relay
            .ingest(Window {
                source_db: "primary".into(),
                scn: 1,
                timestamp: 1,
                changes: vec![RowChange {
                    table: "member".into(),
                    key: RowKey::single("k"),
                    op: Op::Put(Row::new(payload.clone(), 1)),
                }],
            })
            .unwrap();
        let a = relay.events_after_shared(0, 10, &ServerFilter::all()).unwrap();
        let b = relay.events_after_shared(0, 10, &ServerFilter::all()).unwrap();
        assert!(a[0].is_shared() && b[0].is_shared());
        let (WindowView::Shared(sa), WindowView::Shared(sb)) = (&a[0], &b[0]) else {
            unreachable!()
        };
        assert!(Arc::ptr_eq(sa, sb), "consumers share one frozen window");
        let Op::Put(row) = &a[0].changes[0].op else { unreachable!() };
        assert!(
            row.value.shares_allocation(&payload),
            "served payload aliases the ingested allocation"
        );
    }

    #[test]
    fn filter_summary_skips_non_matching_windows_without_trim_work() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap(); // table "member"
        let filter = ServerFilter::for_tables(["company"]);
        let got = relay.events_after_shared(0, 10, &filter).unwrap();
        assert_eq!(got.len(), 1);
        assert!(!got[0].is_shared(), "summary-skip produces an owned empty view");
        assert!(got[0].is_empty());
        assert_eq!(got[0].scn, 1, "scn preserved for checkpointing");
        // A filter that matches everything in the window stays shared.
        let all_match = ServerFilter::for_tables(["member"]);
        let got = relay.events_after_shared(0, 10, &all_match).unwrap();
        assert!(got[0].is_shared(), "all-match trim is the identity");
    }

    #[test]
    fn paused_relay_counts_stalled_serves() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        assert_eq!(relay.served_while_paused(), 0);
        relay.set_paused(true);
        assert!(relay.events_after(0, 10, &ServerFilter::all()).unwrap().is_empty());
        assert!(relay.events_after(0, 10, &ServerFilter::all()).unwrap().is_empty());
        assert_eq!(relay.served_while_paused(), 2, "stall is observable");
        // Ingestion continues while paused; lag reference keeps moving.
        relay.ingest(window(2, 10)).unwrap();
        assert_eq!(relay.newest_scn(), 2);
        relay.set_paused(false);
        assert_eq!(relay.events_after(0, 10, &ServerFilter::all()).unwrap().len(), 2);
        assert_eq!(relay.served_while_paused(), 2, "unpaused serves not counted");
    }

    #[test]
    fn chained_relay_provides_replicated_availability() {
        let primary_relay = Relay::new("primary", 1 << 20);
        for scn in 1..=20 {
            primary_relay.ingest(window(scn, 10)).unwrap();
        }
        let replica_relay = Relay::new("primary", 1 << 20);
        assert_eq!(replica_relay.chain_from(&primary_relay).unwrap(), 20);
        assert_eq!(replica_relay.chain_from(&primary_relay).unwrap(), 0, "idempotent");
        // The replica serves the identical stream.
        let a = primary_relay.events_after(0, 100, &ServerFilter::all()).unwrap();
        let b = replica_relay.events_after(0, 100, &ServerFilter::all()).unwrap();
        assert_eq!(a, b);
        // Zero-copy chaining: both buffers hold the same frozen windows.
        let av = primary_relay.events_after_shared(0, 100, &ServerFilter::all()).unwrap();
        let bv = replica_relay.events_after_shared(0, 100, &ServerFilter::all()).unwrap();
        for (x, y) in av.iter().zip(&bv) {
            let (WindowView::Shared(x), WindowView::Shared(y)) = (x, y) else {
                unreachable!()
            };
            assert!(Arc::ptr_eq(x, y), "chained relays share window memory");
        }
        // Incremental chaining keeps following.
        primary_relay.ingest(window(21, 10)).unwrap();
        assert_eq!(replica_relay.chain_from(&primary_relay).unwrap(), 1);
        assert_eq!(replica_relay.newest_scn(), 21);
    }

    #[test]
    fn chained_relay_that_falls_behind_errors_cleanly() {
        let upstream = Relay::new("primary", 2048);
        let downstream = Relay::new("primary", 1 << 20);
        upstream.ingest(window(1, 10)).unwrap();
        downstream.chain_from(&upstream).unwrap();
        // Upstream evicts far past the downstream's position.
        for scn in 2..=100 {
            upstream.ingest(window(scn, 1000)).unwrap();
        }
        assert!(matches!(
            downstream.chain_from(&upstream),
            Err(RelayError::ScnNotFound { .. })
        ));
    }

    #[test]
    fn consumer_reads_do_not_touch_source() {
        let relay = Relay::new("primary", 1 << 20);
        for scn in 1..=5 {
            relay.ingest(window(scn, 10)).unwrap();
        }
        for _ in 0..100 {
            relay.events_after(0, 100, &ServerFilter::all()).unwrap();
        }
        assert_eq!(relay.windows_ingested(), 5, "source cost fixed");
        assert_eq!(relay.reads_served(), 100, "fan-out absorbed by relay");
    }
}
