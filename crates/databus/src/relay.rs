//! The relay: in-memory circular event buffer with an SCN index.
//!
//! "The serialized events are stored in a circular in-memory buffer that is
//! used to serve events to the Databus clients. ... The relay with the
//! in-memory circular buffer provides: default serving path with very low
//! latency (<1 ms); efficient buffering ...; index structures to
//! efficiently serve to Databus clients events from a given sequence
//! number S; server-side filtering ...; support of hundreds of consumers
//! per relay with no additional impact on the source database" (§III.C).
//!
//! Windows are evicted whole from the head when the buffer exceeds its
//! byte budget; a client requesting an SCN older than the buffered tail
//! gets [`RelayError::ScnNotFound`] and falls back to the bootstrap
//! server. Because windows are stored in SCN order and SCNs are dense per
//! source, locating a start SCN is a binary search (the paper's "index
//! structures").

use li_commons::metrics::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::collections::VecDeque;
use std::sync::Arc;

use li_sqlstore::{BinlogEntry, Scn, ShipError, Shipper};

use crate::event::{ServerFilter, Window};

/// Relay observability under `databus.relay.<source>.`: change events
/// relayed to clients, windows ingested from the source, and the newest
/// buffered SCN (the reference point for client lag).
#[derive(Debug, Clone)]
struct RelayMetrics {
    events_relayed: Counter,
    windows_in: Counter,
    newest_scn: Gauge,
}

impl RelayMetrics {
    fn new(registry: &Arc<MetricsRegistry>, source_db: &str) -> Self {
        let scope = registry.scope(format!("databus.relay.{source_db}"));
        RelayMetrics {
            events_relayed: scope.counter("events_relayed"),
            windows_in: scope.counter("windows_ingested"),
            newest_scn: scope.gauge("newest_scn"),
        }
    }
}

/// Errors from relay serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// The requested SCN has been evicted from the circular buffer; the
    /// client must bootstrap. Carries the oldest SCN still buffered.
    ScnNotFound {
        /// SCN requested by the client.
        requested: Scn,
        /// Oldest SCN still available in the buffer (0 when empty).
        oldest: Scn,
    },
    /// Events from one source must arrive in dense SCN order.
    OutOfOrder {
        /// SCN that arrived.
        got: Scn,
        /// SCN that was expected.
        expected: Scn,
    },
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::ScnNotFound { requested, oldest } => {
                write!(f, "scn {requested} evicted (oldest buffered: {oldest})")
            }
            RelayError::OutOfOrder { got, expected } => {
                write!(f, "out-of-order scn {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RelayError {}

#[derive(Debug, Default)]
struct Buffer {
    windows: VecDeque<Window>,
    bytes: usize,
}

/// A Databus relay. Thread-safe; share via `Arc`. One relay buffers one
/// source database's stream (the paper runs "multiple shared-nothing
/// relays").
pub struct Relay {
    source_db: String,
    max_bytes: usize,
    buffer: Mutex<Buffer>,
    /// Serving pause (chaos hook): a paused relay keeps ingesting —
    /// semi-sync commits stay durable — but serves nothing, like a relay
    /// whose serving threads are stalled in GC. Consumers simply see no
    /// progress and fall behind (possibly off the buffer).
    paused: std::sync::atomic::AtomicBool,
    /// Monotonic counters for the source-isolation experiment: how many
    /// client reads the relay absorbed (that never touched the source DB).
    reads_served: AtomicU64,
    windows_ingested: AtomicU64,
    registry: Arc<MetricsRegistry>,
    metrics: RelayMetrics,
}

impl fmt::Debug for Relay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let buffer = self.buffer.lock();
        f.debug_struct("Relay")
            .field("source_db", &self.source_db)
            .field("buffered_windows", &buffer.windows.len())
            .field("buffered_bytes", &buffer.bytes)
            .finish()
    }
}

impl Relay {
    /// Creates a relay for `source_db` with a byte budget for the circular
    /// buffer, reporting into a private metrics registry.
    pub fn new(source_db: impl Into<String>, max_bytes: usize) -> Self {
        Self::with_metrics(source_db, max_bytes, &MetricsRegistry::new())
    }

    /// Creates a relay reporting under `databus.relay.<source>.` in
    /// `registry`. Clients of this relay report into the same registry.
    pub fn with_metrics(
        source_db: impl Into<String>,
        max_bytes: usize,
        registry: &Arc<MetricsRegistry>,
    ) -> Self {
        let source_db = source_db.into();
        Relay {
            metrics: RelayMetrics::new(registry, &source_db),
            source_db,
            max_bytes: max_bytes.max(1),
            buffer: Mutex::new(Buffer::default()),
            paused: std::sync::atomic::AtomicBool::new(false),
            reads_served: AtomicU64::new(0),
            windows_ingested: AtomicU64::new(0),
            registry: Arc::clone(registry),
        }
    }

    /// The metrics registry this relay (and its clients) report into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The source database this relay captures.
    pub fn source_db(&self) -> &str {
        &self.source_db
    }

    /// Ingests one committed transaction. SCNs must be dense and
    /// increasing.
    pub fn ingest(&self, window: Window) -> Result<(), RelayError> {
        let mut buffer = self.buffer.lock();
        let expected = buffer.windows.back().map_or(window.scn, |w| w.scn + 1);
        if window.scn != expected && !buffer.windows.is_empty() {
            return Err(RelayError::OutOfOrder {
                got: window.scn,
                expected,
            });
        }
        buffer.bytes += window.size_estimate();
        buffer.windows.push_back(window);
        // Evict whole windows from the head until within budget (always
        // keep at least the newest window).
        while buffer.bytes > self.max_bytes && buffer.windows.len() > 1 {
            if let Some(evicted) = buffer.windows.pop_front() {
                buffer.bytes -= evicted.size_estimate();
            }
        }
        self.windows_ingested.fetch_add(1, Ordering::Relaxed);
        self.metrics.windows_in.inc();
        self.metrics
            .newest_scn
            .set(buffer.windows.back().map_or(0, |w| w.scn) as i64);
        Ok(())
    }

    /// Ingests straight from a source binlog entry.
    pub fn ingest_binlog(&self, source_db: &str, entry: &BinlogEntry) -> Result<(), RelayError> {
        self.ingest(Window::from_binlog(source_db, entry))
    }

    /// Oldest SCN still buffered (0 when empty).
    pub fn oldest_scn(&self) -> Scn {
        self.buffer.lock().windows.front().map_or(0, |w| w.scn)
    }

    /// Newest SCN buffered (0 when empty).
    pub fn newest_scn(&self) -> Scn {
        self.buffer.lock().windows.back().map_or(0, |w| w.scn)
    }

    /// Number of buffered windows.
    pub fn window_count(&self) -> usize {
        self.buffer.lock().windows.len()
    }

    /// Approximate buffered bytes.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.lock().bytes
    }

    /// Serves up to `max_windows` windows with `scn > after_scn`, filtered
    /// server-side. This is the default (hot) serving path.
    ///
    /// Fails with [`RelayError::ScnNotFound`] when `after_scn` predates the
    /// buffer: the client has fallen behind and must bootstrap — serving it
    /// from here would require going back to the source database, which the
    /// relay exists to isolate.
    pub fn events_after(
        &self,
        after_scn: Scn,
        max_windows: usize,
        filter: &ServerFilter,
    ) -> Result<Vec<Window>, RelayError> {
        if self.is_paused() {
            return Ok(Vec::new());
        }
        let buffer = self.buffer.lock();
        let oldest = buffer.windows.front().map_or(0, |w| w.scn);
        let newest = buffer.windows.back().map_or(0, |w| w.scn);
        if buffer.windows.is_empty() || after_scn >= newest {
            // Fully caught up (or empty): nothing to serve.
            if after_scn + 1 < oldest {
                return Err(RelayError::ScnNotFound {
                    requested: after_scn,
                    oldest,
                });
            }
            self.reads_served.fetch_add(1, Ordering::Relaxed);
            return Ok(Vec::new());
        }
        if after_scn + 1 < oldest {
            return Err(RelayError::ScnNotFound {
                requested: after_scn,
                oldest,
            });
        }
        // Dense SCNs: the first window to serve sits at a computable index.
        let start = (after_scn + 1 - oldest) as usize;
        let out: Vec<Window> = buffer
            .windows
            .iter()
            .skip(start)
            .take(max_windows)
            .map(|w| filter.apply(w))
            .collect();
        self.reads_served.fetch_add(1, Ordering::Relaxed);
        let events: usize = out.iter().map(|w| w.changes.len()).sum();
        self.metrics.events_relayed.add(events as u64);
        Ok(out)
    }

    /// Chains this relay behind `upstream`: pulls every window this relay
    /// does not yet have. "We typically run multiple shared-nothing relays
    /// that are either connected directly to the database, or to other
    /// relays to provide replicated availability of the change stream"
    /// (§III.C). Returns windows copied.
    pub fn chain_from(&self, upstream: &Relay) -> Result<usize, RelayError> {
        let have = self.newest_scn();
        let windows = upstream.events_after(have, usize::MAX, &ServerFilter::all())?;
        let mut copied = 0;
        for window in windows {
            self.ingest(window)?;
            copied += 1;
        }
        Ok(copied)
    }

    /// Number of client reads served from the buffer (source isolation
    /// metric: these reads never reached the source database).
    pub fn reads_served(&self) -> u64 {
        self.reads_served.load(Ordering::Relaxed)
    }

    /// Number of windows ingested from the source (the *only* per-source
    /// cost, independent of consumer count).
    pub fn windows_ingested(&self) -> u64 {
        self.windows_ingested.load(Ordering::Relaxed)
    }

    /// Chaos pause hook: while paused the relay ingests but serves
    /// nothing (see the `paused` field). No-op when already in the
    /// requested state.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }

    /// Whether serving is currently paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Chaos invariant checker — the Espresso within-key commit-order
    /// check, phrased over the relay's buffered stream: window SCNs must
    /// be dense and strictly increasing, and for every `(table, key)` the
    /// etags of successive `Put` images (which Espresso sets to the commit
    /// SCN) must be strictly increasing. A violation means a source
    /// shipped commits out of order or a failover rewrote history.
    pub fn verify_commit_order(&self) -> Result<(), String> {
        let buffer = self.buffer.lock();
        let mut last_scn: Option<Scn> = None;
        let mut last_etag: std::collections::HashMap<(String, String), u64> =
            std::collections::HashMap::new();
        for window in &buffer.windows {
            if let Some(prev) = last_scn {
                if window.scn != prev + 1 {
                    return Err(format!(
                        "window scn {} after {prev}: not dense/increasing",
                        window.scn
                    ));
                }
            }
            last_scn = Some(window.scn);
            // Last image of each key within this window (a transaction may
            // touch a key more than once at one SCN).
            let mut in_window: std::collections::HashMap<(String, String), u64> =
                std::collections::HashMap::new();
            for change in &window.changes {
                let li_sqlstore::Op::Put(row) = &change.op else {
                    continue;
                };
                let key = (change.table.clone(), format!("{:?}", change.key));
                in_window.insert(key, row.etag);
            }
            for (key, etag) in in_window {
                if let Some(&prev) = last_etag.get(&key) {
                    if etag <= prev {
                        return Err(format!(
                            "key {key:?} etag {etag} at scn {} not after {prev}",
                            window.scn
                        ));
                    }
                }
                last_etag.insert(key, etag);
            }
        }
        Ok(())
    }
}

/// Relays are valid semi-synchronous shipping targets: Espresso commits
/// block until the relay has the entry ("Each change is written to two
/// places before being committed — the local MySQL binlog and the Databus
/// relay", §IV.B).
impl Shipper for Relay {
    fn ship(&self, source: &str, entry: &BinlogEntry) -> Result<(), ShipError> {
        self.ingest_binlog(source, entry)
            .map_err(|e| ShipError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use li_sqlstore::{Op, Row, RowChange, RowKey};

    fn window(scn: Scn, payload: usize) -> Window {
        Window {
            source_db: "primary".into(),
            scn,
            timestamp: scn,
            changes: vec![RowChange {
                table: "member".into(),
                key: RowKey::single(format!("k{scn}")),
                op: Op::Put(Row::new(Bytes::from(vec![b'x'; payload]), 1)),
            }],
        }
    }

    #[test]
    fn serves_from_scn_in_order() {
        let relay = Relay::new("primary", 1 << 20);
        for scn in 1..=10 {
            relay.ingest(window(scn, 10)).unwrap();
        }
        let got = relay.events_after(3, 100, &ServerFilter::all()).unwrap();
        assert_eq!(got.len(), 7);
        assert_eq!(got[0].scn, 4);
        assert_eq!(got.last().unwrap().scn, 10);
        // max_windows respected.
        let got = relay.events_after(0, 2, &ServerFilter::all()).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].scn, 2);
    }

    #[test]
    fn caught_up_client_gets_empty() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        assert!(relay.events_after(1, 10, &ServerFilter::all()).unwrap().is_empty());
        assert!(relay.events_after(5, 10, &ServerFilter::all()).unwrap().is_empty());
    }

    #[test]
    fn empty_relay_serves_nothing() {
        let relay = Relay::new("primary", 1 << 20);
        assert!(relay.events_after(0, 10, &ServerFilter::all()).unwrap().is_empty());
    }

    #[test]
    fn eviction_is_whole_windows_and_fallen_clients_error() {
        // Budget for roughly 3 windows of ~1KB.
        let relay = Relay::new("primary", 3200);
        for scn in 1..=10 {
            relay.ingest(window(scn, 1000)).unwrap();
        }
        assert!(relay.window_count() < 10, "old windows evicted");
        let oldest = relay.oldest_scn();
        assert!(oldest > 1);
        // A client at SCN 0 has fallen off the buffer.
        let err = relay.events_after(0, 10, &ServerFilter::all()).unwrap_err();
        assert_eq!(
            err,
            RelayError::ScnNotFound {
                requested: 0,
                oldest
            }
        );
        // A client exactly at the tail boundary is fine.
        assert!(relay
            .events_after(oldest - 1, 100, &ServerFilter::all())
            .is_ok());
    }

    #[test]
    fn out_of_order_ingest_rejected() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        relay.ingest(window(2, 10)).unwrap();
        assert_eq!(
            relay.ingest(window(2, 10)).unwrap_err(),
            RelayError::OutOfOrder { got: 2, expected: 3 }
        );
        assert_eq!(
            relay.ingest(window(5, 10)).unwrap_err(),
            RelayError::OutOfOrder { got: 5, expected: 3 }
        );
    }

    #[test]
    fn relay_can_start_mid_stream() {
        // A relay chained to another relay may start at an arbitrary SCN.
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(100, 10)).unwrap();
        relay.ingest(window(101, 10)).unwrap();
        assert_eq!(relay.oldest_scn(), 100);
    }

    #[test]
    fn server_side_filter_applied() {
        let relay = Relay::new("primary", 1 << 20);
        relay.ingest(window(1, 10)).unwrap();
        let filter = ServerFilter::for_tables(["company"]);
        let got = relay.events_after(0, 10, &filter).unwrap();
        assert_eq!(got.len(), 1, "window delivered for checkpointing");
        assert!(got[0].is_empty(), "changes filtered out");
    }

    #[test]
    fn chained_relay_provides_replicated_availability() {
        let primary_relay = Relay::new("primary", 1 << 20);
        for scn in 1..=20 {
            primary_relay.ingest(window(scn, 10)).unwrap();
        }
        let replica_relay = Relay::new("primary", 1 << 20);
        assert_eq!(replica_relay.chain_from(&primary_relay).unwrap(), 20);
        assert_eq!(replica_relay.chain_from(&primary_relay).unwrap(), 0, "idempotent");
        // The replica serves the identical stream.
        let a = primary_relay.events_after(0, 100, &ServerFilter::all()).unwrap();
        let b = replica_relay.events_after(0, 100, &ServerFilter::all()).unwrap();
        assert_eq!(a, b);
        // Incremental chaining keeps following.
        primary_relay.ingest(window(21, 10)).unwrap();
        assert_eq!(replica_relay.chain_from(&primary_relay).unwrap(), 1);
        assert_eq!(replica_relay.newest_scn(), 21);
    }

    #[test]
    fn chained_relay_that_falls_behind_errors_cleanly() {
        let upstream = Relay::new("primary", 2048);
        let downstream = Relay::new("primary", 1 << 20);
        upstream.ingest(window(1, 10)).unwrap();
        downstream.chain_from(&upstream).unwrap();
        // Upstream evicts far past the downstream's position.
        for scn in 2..=100 {
            upstream.ingest(window(scn, 1000)).unwrap();
        }
        assert!(matches!(
            downstream.chain_from(&upstream),
            Err(RelayError::ScnNotFound { .. })
        ));
    }

    #[test]
    fn consumer_reads_do_not_touch_source() {
        let relay = Relay::new("primary", 1 << 20);
        for scn in 1..=5 {
            relay.ingest(window(scn, 10)).unwrap();
        }
        for _ in 0..100 {
            relay.events_after(0, 100, &ServerFilter::all()).unwrap();
        }
        assert_eq!(relay.windows_ingested(), 5, "source cost fixed");
        assert_eq!(relay.reads_served(), 100, "fan-out absorbed by relay");
    }
}
