//! Capture adapters: how changes get from the source database into a relay.
//!
//! "At LinkedIn, we employ two capture approaches, triggers or consuming
//! from the database replication log" (§III.C). Both adapters speak to the
//! `li-sqlstore` substrate, which exposes exactly the two interfaces the
//! real databases do: a registrable commit trigger and a replayable binlog.

use std::sync::Arc;

use li_sqlstore::{Database, Scn, TriggerFn};
use parking_lot::Mutex;

use crate::event::Window;
use crate::relay::{Relay, RelayError};

/// Log-shipping capture: registers the relay as the database's
/// semi-synchronous shipper, so every commit lands in the relay before it
/// is acknowledged (the MySQL-replication path; also what Espresso uses for
/// durability).
pub struct LogShippingAdapter;

impl LogShippingAdapter {
    /// Wires `relay` as `db`'s semi-sync shipping destination.
    pub fn attach(db: &Database, relay: Arc<Relay>) {
        db.set_shipper(relay);
    }

    /// Wires `relay` as `db`'s shipper after first draining the binlog
    /// backlog past `from_scn` into it via batched shipping (one relay
    /// lock acquisition, one encode per entry) — attaching a fresh relay
    /// to a database that already has history. On error the shipper is
    /// not installed. Returns backlog windows shipped.
    pub fn attach_with_backlog(
        db: &Database,
        relay: Arc<Relay>,
        from_scn: Scn,
    ) -> Result<usize, li_sqlstore::ShipError> {
        use li_sqlstore::Shipper;
        let backlog = db.binlog_after(from_scn);
        relay.ship_batch(db.name(), &backlog)?;
        db.set_shipper(relay.clone());
        Ok(backlog.len())
    }
}

/// Polling capture (the trigger/log-mining path for the Oracle analog):
/// periodically drains `binlog_after(last_seen)` into the relay. Also
/// installable as a commit trigger for push-style delivery.
pub struct PollingAdapter {
    relay: Arc<Relay>,
    last_scn: Mutex<Scn>,
}

impl PollingAdapter {
    /// Creates an adapter that feeds `relay`, starting after `from_scn`.
    pub fn new(relay: Arc<Relay>, from_scn: Scn) -> Self {
        PollingAdapter {
            relay,
            last_scn: Mutex::new(from_scn),
        }
    }

    /// Pulls any new committed transactions from `db` into the relay as
    /// one batch: each entry is encoded once and the relay lock is taken
    /// once per poll, not per transaction. Entries the relay already has
    /// (pushed ahead by a commit trigger) are reconciled away by the
    /// relay's SCN watermark. The batch is atomic — on error nothing is
    /// ingested and the capture position does not advance, so the next
    /// poll retries the same run. Returns the number of windows shipped.
    pub fn poll(&self, db: &Database) -> Result<usize, RelayError> {
        let mut last = self.last_scn.lock();
        let entries = db.binlog_after(*last);
        let Some(newest) = entries.last().map(|e| e.scn) else {
            return Ok(0);
        };
        let expected = self.relay.expected_next_scn();
        let windows: Vec<Window> = entries
            .iter()
            .filter(|e| expected == 0 || e.scn >= expected)
            .map(|e| Window::from_binlog(db.name(), e))
            .collect();
        let shipped = self.relay.ingest_batch(windows)?;
        *last = newest;
        Ok(shipped)
    }

    /// The SCN up to which the source has been captured.
    pub fn last_scn(&self) -> Scn {
        *self.last_scn.lock()
    }

    /// Builds a commit trigger that pushes every committed entry into the
    /// relay (the paper's trigger-based capture). Register the result with
    /// [`Database::register_trigger`].
    pub fn as_trigger(relay: Arc<Relay>, source_db: impl Into<String>) -> TriggerFn {
        let source_db = source_db.into();
        Arc::new(move |entry| {
            // Trigger capture is best-effort push; a full relay surfaces
            // when the poller reconciles. Ignore duplicate/ordering errors
            // here (poll() is the authoritative path).
            let _ = relay.ingest_binlog(&source_db, entry);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServerFilter;
    use li_sqlstore::RowKey;

    fn source() -> Database {
        let db = Database::new("primary");
        db.create_table("member").unwrap();
        db
    }

    #[test]
    fn log_shipping_is_semi_sync() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        LogShippingAdapter::attach(&db, relay.clone());
        db.put_one("member", RowKey::single("1"), &b"v"[..], 1).unwrap();
        // The commit only returned after the relay had the window.
        assert_eq!(relay.newest_scn(), 1);
        let windows = relay.events_after(0, 10, &ServerFilter::all()).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].changes.len(), 1);
    }

    #[test]
    fn attach_with_backlog_ships_history_then_follows() {
        let db = source();
        for i in 0..4 {
            db.put_one("member", RowKey::single(format!("{i}")), &b"v"[..], 1).unwrap();
        }
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        // History lands as one batch, then the shipper follows live.
        assert_eq!(
            LogShippingAdapter::attach_with_backlog(&db, relay.clone(), 0).unwrap(),
            4
        );
        assert_eq!(relay.newest_scn(), 4);
        db.put_one("member", RowKey::single("live"), &b"v"[..], 1).unwrap();
        assert_eq!(relay.newest_scn(), 5, "semi-sync after attach");
    }

    #[test]
    fn polling_adapter_drains_incrementally() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        let adapter = PollingAdapter::new(relay.clone(), 0);

        for i in 0..5 {
            db.put_one("member", RowKey::single(format!("{i}")), &b"v"[..], 1).unwrap();
        }
        assert_eq!(adapter.poll(&db).unwrap(), 5);
        assert_eq!(adapter.poll(&db).unwrap(), 0, "nothing new");
        db.put_one("member", RowKey::single("9"), &b"v"[..], 1).unwrap();
        assert_eq!(adapter.poll(&db).unwrap(), 1);
        assert_eq!(adapter.last_scn(), 6);
        assert_eq!(relay.newest_scn(), 6);
    }

    #[test]
    fn trigger_capture_pushes_commits() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        db.register_trigger(PollingAdapter::as_trigger(relay.clone(), "primary"));
        let mut txn = db.begin();
        txn.put("member", RowKey::single("1"), &b"a"[..], 1);
        txn.put("member", RowKey::single("2"), &b"b"[..], 1);
        db.commit(txn).unwrap();
        let windows = relay.events_after(0, 10, &ServerFilter::all()).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].changes.len(), 2, "txn boundary preserved");
    }

    #[test]
    fn polling_after_trigger_does_not_duplicate() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        db.register_trigger(PollingAdapter::as_trigger(relay.clone(), "primary"));
        let adapter = PollingAdapter::new(relay.clone(), 0);
        db.put_one("member", RowKey::single("1"), &b"v"[..], 1).unwrap();
        // Poll sees scn 1 already relayed; the relay's SCN watermark
        // reconciles the duplicate away and the stream stays clean.
        assert_eq!(adapter.poll(&db).unwrap(), 0);
        assert_eq!(relay.window_count(), 1);
        assert_eq!(adapter.last_scn(), 1, "capture position advances past duplicates");
    }
}
