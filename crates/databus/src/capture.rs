//! Capture adapters: how changes get from the source database into a relay.
//!
//! "At LinkedIn, we employ two capture approaches, triggers or consuming
//! from the database replication log" (§III.C). Both adapters speak to the
//! `li-sqlstore` substrate, which exposes exactly the two interfaces the
//! real databases do: a registrable commit trigger and a replayable binlog.

use std::sync::Arc;

use li_sqlstore::{Database, Scn, TriggerFn};
use parking_lot::Mutex;

use crate::relay::{Relay, RelayError};

/// Log-shipping capture: registers the relay as the database's
/// semi-synchronous shipper, so every commit lands in the relay before it
/// is acknowledged (the MySQL-replication path; also what Espresso uses for
/// durability).
pub struct LogShippingAdapter;

impl LogShippingAdapter {
    /// Wires `relay` as `db`'s semi-sync shipping destination.
    pub fn attach(db: &Database, relay: Arc<Relay>) {
        db.set_shipper(relay);
    }
}

/// Polling capture (the trigger/log-mining path for the Oracle analog):
/// periodically drains `binlog_after(last_seen)` into the relay. Also
/// installable as a commit trigger for push-style delivery.
pub struct PollingAdapter {
    relay: Arc<Relay>,
    last_scn: Mutex<Scn>,
}

impl PollingAdapter {
    /// Creates an adapter that feeds `relay`, starting after `from_scn`.
    pub fn new(relay: Arc<Relay>, from_scn: Scn) -> Self {
        PollingAdapter {
            relay,
            last_scn: Mutex::new(from_scn),
        }
    }

    /// Pulls any new committed transactions from `db` into the relay.
    /// Returns the number of windows shipped.
    pub fn poll(&self, db: &Database) -> Result<usize, RelayError> {
        let mut last = self.last_scn.lock();
        let entries = db.binlog_after(*last);
        let mut shipped = 0;
        for entry in entries {
            self.relay.ingest_binlog(db.name(), &entry)?;
            *last = entry.scn;
            shipped += 1;
        }
        Ok(shipped)
    }

    /// The SCN up to which the source has been captured.
    pub fn last_scn(&self) -> Scn {
        *self.last_scn.lock()
    }

    /// Builds a commit trigger that pushes every committed entry into the
    /// relay (the paper's trigger-based capture). Register the result with
    /// [`Database::register_trigger`].
    pub fn as_trigger(relay: Arc<Relay>, source_db: impl Into<String>) -> TriggerFn {
        let source_db = source_db.into();
        Arc::new(move |entry| {
            // Trigger capture is best-effort push; a full relay surfaces
            // when the poller reconciles. Ignore duplicate/ordering errors
            // here (poll() is the authoritative path).
            let _ = relay.ingest_binlog(&source_db, entry);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServerFilter;
    use li_sqlstore::RowKey;

    fn source() -> Database {
        let db = Database::new("primary");
        db.create_table("member").unwrap();
        db
    }

    #[test]
    fn log_shipping_is_semi_sync() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        LogShippingAdapter::attach(&db, relay.clone());
        db.put_one("member", RowKey::single("1"), &b"v"[..], 1).unwrap();
        // The commit only returned after the relay had the window.
        assert_eq!(relay.newest_scn(), 1);
        let windows = relay.events_after(0, 10, &ServerFilter::all()).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].changes.len(), 1);
    }

    #[test]
    fn polling_adapter_drains_incrementally() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        let adapter = PollingAdapter::new(relay.clone(), 0);

        for i in 0..5 {
            db.put_one("member", RowKey::single(format!("{i}")), &b"v"[..], 1).unwrap();
        }
        assert_eq!(adapter.poll(&db).unwrap(), 5);
        assert_eq!(adapter.poll(&db).unwrap(), 0, "nothing new");
        db.put_one("member", RowKey::single("9"), &b"v"[..], 1).unwrap();
        assert_eq!(adapter.poll(&db).unwrap(), 1);
        assert_eq!(adapter.last_scn(), 6);
        assert_eq!(relay.newest_scn(), 6);
    }

    #[test]
    fn trigger_capture_pushes_commits() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        db.register_trigger(PollingAdapter::as_trigger(relay.clone(), "primary"));
        let mut txn = db.begin();
        txn.put("member", RowKey::single("1"), &b"a"[..], 1);
        txn.put("member", RowKey::single("2"), &b"b"[..], 1);
        db.commit(txn).unwrap();
        let windows = relay.events_after(0, 10, &ServerFilter::all()).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].changes.len(), 2, "txn boundary preserved");
    }

    #[test]
    fn polling_after_trigger_does_not_duplicate() {
        let db = source();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        db.register_trigger(PollingAdapter::as_trigger(relay.clone(), "primary"));
        let adapter = PollingAdapter::new(relay.clone(), 0);
        db.put_one("member", RowKey::single("1"), &b"v"[..], 1).unwrap();
        // Poll sees scn 1 already relayed; relay rejects the out-of-order
        // duplicate internally and the stream stays clean.
        let _ = adapter.poll(&db);
        assert_eq!(relay.window_count(), 1);
    }
}
