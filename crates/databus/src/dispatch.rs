//! Push-style stream dispatch: bounded-channel fan-out from the relay's
//! SCN watch to consumer-driving worker threads.
//!
//! The polling model has every consumer spinning `catch_up()` on its own
//! schedule — cheap with one consumer, a thundering herd at site scale.
//! The dispatcher inverts it: the relay publishes its high-water mark on a
//! watch channel once per ingest batch ([`crate::Relay::scn_watch`]); one
//! notifier thread forwards each mark into a **bounded** per-client
//! channel; one worker per client drains its channel and runs `catch_up`.
//!
//! The bounded channel is the backpressure point: when a slow consumer's
//! channel is full, [`try_send`](crossbeam::channel::Sender::try_send)
//! returns `Full` and the notification is *coalesced* — dropped, because a
//! later mark supersedes it and the worker's next catch-up reads the
//! newest state anyway. Fast consumers never wait on slow ones, and a
//! stalled consumer costs one queued notification, not an unbounded queue.
//!
//! Exactly-once delivery per window is the client's job, not the
//! dispatcher's: `DatabusClient` serializes whole poll cycles on its drive
//! lock, so a periodic pump and this dispatcher can drive the same client
//! concurrently without double-delivering.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use li_sqlstore::Scn;

use crate::client::DatabusClient;
use crate::relay::Relay;

/// How long the notifier sleeps on the watch and workers sleep on their
/// channels between shutdown checks.
const TICK: Duration = Duration::from_millis(20);

/// Counters describing a dispatcher's traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DispatchStats {
    /// High-water marks observed on the relay watch.
    pub marks_seen: u64,
    /// Notifications accepted into client channels.
    pub notified: u64,
    /// Notifications dropped because a client channel was full (the
    /// backpressure/coalescing path — not lost work, a later mark covers
    /// them).
    pub coalesced: u64,
    /// `catch_up` runs that returned an error (consumer failures; the
    /// worker keeps going and retries on the next mark).
    pub errors: u64,
}

#[derive(Default)]
struct SharedStats {
    marks_seen: AtomicU64,
    notified: AtomicU64,
    coalesced: AtomicU64,
    errors: AtomicU64,
}

/// A running dispatcher: one notifier thread plus one worker per client.
/// Call [`StreamDispatcher::stop`] (or drop) to shut down; stopping runs a
/// final drain so every client ends caught up with the relay.
pub struct StreamDispatcher {
    relay: Arc<Relay>,
    clients: Vec<Arc<DatabusClient>>,
    stopped: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for StreamDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamDispatcher")
            .field("clients", &self.clients.len())
            .field("stopped", &self.stopped.load(Ordering::SeqCst))
            .finish()
    }
}

impl StreamDispatcher {
    /// Starts dispatching `relay`'s stream to `clients`. `capacity` bounds
    /// each client's notification channel (minimum 1; 1 is the natural
    /// choice — one pending "you are behind" flag per client).
    pub fn start(
        relay: Arc<Relay>,
        clients: Vec<Arc<DatabusClient>>,
        capacity: usize,
    ) -> Self {
        let stopped = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let mut threads = Vec::new();
        let mut senders: Vec<Sender<Scn>> = Vec::new();

        for (worker_index, client) in clients.iter().enumerate() {
            let (tx, rx): (Sender<Scn>, Receiver<Scn>) = bounded(capacity.max(1));
            senders.push(tx);
            let client = Arc::clone(client);
            let stopped = Arc::clone(&stopped);
            let stats = Arc::clone(&stats);
            let builder =
                std::thread::Builder::new().name(format!("dispatch-{worker_index}"));
            threads.push(builder.spawn(move || {
                while !stopped.load(Ordering::SeqCst) {
                    if rx.recv_timeout(TICK).is_ok() {
                        // Drain any queued duplicates before the (possibly
                        // long) catch-up — they all mean the same thing.
                        for _ in rx.try_iter() {}
                        if client.catch_up().is_err() {
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }).expect("spawn dispatch worker"));
        }

        {
            let mut watch = relay.scn_watch();
            let stopped = Arc::clone(&stopped);
            let stats = Arc::clone(&stats);
            let builder = std::thread::Builder::new().name("dispatch-notify".into());
            threads.push(builder.spawn(move || {
                while !stopped.load(Ordering::SeqCst) {
                    let Some(scn) = watch.wait_newer(TICK) else {
                        continue;
                    };
                    stats.marks_seen.fetch_add(1, Ordering::Relaxed);
                    for tx in &senders {
                        match tx.try_send(scn) {
                            Ok(()) => {
                                stats.notified.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(TrySendError::Full(_)) => {
                                stats.coalesced.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    }
                }
                // Senders drop here; workers see Disconnected after their
                // queues drain.
            }).expect("spawn dispatch notifier"));
        }

        StreamDispatcher {
            relay,
            clients,
            stopped,
            stats,
            threads,
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            marks_seen: self.stats.marks_seen.load(Ordering::Relaxed),
            notified: self.stats.notified.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
        }
    }

    /// Stops the threads and runs one final synchronous drain per client,
    /// so everything ingested before the stop is delivered.
    pub fn stop(mut self) -> DispatchStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        for client in &self.clients {
            if client.checkpoint() < self.relay.newest_scn() && client.catch_up().is_err() {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for StreamDispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ConsumerCallback;
    use crate::event::Window;
    use bytes::Bytes;
    use li_sqlstore::{Op, Row, RowChange, RowKey};
    use std::sync::atomic::AtomicUsize;

    struct CountingConsumer(AtomicUsize);
    impl ConsumerCallback for CountingConsumer {
        fn on_window(&self, w: &Window) -> Result<(), String> {
            self.0.fetch_add(w.changes.len(), Ordering::Relaxed);
            Ok(())
        }
    }

    fn window(scn: Scn) -> Window {
        Window {
            source_db: "primary".into(),
            scn,
            timestamp: scn,
            changes: vec![RowChange {
                table: "member".into(),
                key: RowKey::single(format!("k{scn}")),
                op: Op::Put(Row::new(Bytes::from_static(b"v"), 1)),
            }],
        }
    }

    #[test]
    fn dispatch_delivers_without_explicit_polling() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        let consumer = Arc::new(CountingConsumer(AtomicUsize::new(0)));
        let client = Arc::new(DatabusClient::new(relay.clone(), None, consumer.clone()));
        let dispatcher = StreamDispatcher::start(relay.clone(), vec![client.clone()], 1);

        for scn in 1..=50 {
            relay.ingest(window(scn)).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.checkpoint() < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = dispatcher.stop();
        assert_eq!(client.checkpoint(), 50, "fully caught up, no manual pump");
        assert_eq!(consumer.0.load(Ordering::Relaxed), 50, "each window once");
        assert!(stats.marks_seen > 0);
        assert!(stats.notified > 0);
    }

    #[test]
    fn stop_drains_pending_windows() {
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        let consumer = Arc::new(CountingConsumer(AtomicUsize::new(0)));
        let client = Arc::new(DatabusClient::new(relay.clone(), None, consumer.clone()));
        let dispatcher = StreamDispatcher::start(relay.clone(), vec![client.clone()], 1);
        for scn in 1..=20 {
            relay.ingest(window(scn)).unwrap();
        }
        // Stop immediately — the final drain must still deliver everything.
        dispatcher.stop();
        assert_eq!(client.checkpoint(), 20);
        assert_eq!(consumer.0.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn concurrent_pump_and_dispatch_deliver_each_window_once() {
        // The drive-lock contract: an external pump hammering catch_up while
        // the dispatcher runs must not double-deliver any window.
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        let consumer = Arc::new(CountingConsumer(AtomicUsize::new(0)));
        let client = Arc::new(DatabusClient::new(relay.clone(), None, consumer.clone()));
        let dispatcher = StreamDispatcher::start(relay.clone(), vec![client.clone()], 1);
        let pump_client = client.clone();
        let pumping = Arc::new(AtomicBool::new(true));
        let pumping2 = pumping.clone();
        let pump = std::thread::spawn(move || {
            while pumping2.load(Ordering::SeqCst) {
                pump_client.catch_up().unwrap();
            }
        });
        for scn in 1..=200 {
            relay.ingest(window(scn)).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.checkpoint() < 200 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        pumping.store(false, Ordering::SeqCst);
        pump.join().unwrap();
        dispatcher.stop();
        assert_eq!(client.checkpoint(), 200);
        assert_eq!(
            consumer.0.load(Ordering::Relaxed),
            200,
            "exactly one delivery per window despite two drivers"
        );
    }
}
