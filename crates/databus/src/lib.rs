//! # li-databus — change data capture pipeline (Databus reproduction)
//!
//! Paper §III: "Databus, a system for change data capture (CDC), that is
//! being used to enable complex online and near-line computations under
//! strict latency bounds. It provides a common pipeline for transporting
//! CDC events from LinkedIn primary databases to various applications."
//!
//! The three components of Figure III.2:
//!
//! * [`relay`] — captures changes from the source database, serializes them
//!   to a source-independent format, and buffers them in an in-memory
//!   circular buffer with an SCN index and server-side filters. Serving
//!   from the buffer is the "default serving path with very low latency":
//!   windows are frozen once at ingest ([`event::FrozenWindow`]) and every
//!   consumer gets zero-copy shared views ([`event::WindowView`]) located
//!   under a range-lookup-only lock. A client that has fallen off the
//!   buffer's tail gets [`relay::RelayError::ScnNotFound`] and must
//!   bootstrap.
//! * [`bootstrap`] — "listen\[s\] to the stream of Databus events and
//!   provide\[s\] long-term storage for them", with the two query types of
//!   Figure III.3: **consolidated delta since T** (only the last update per
//!   row — "fast playback") and **consistent snapshot at U** (scan the
//!   snapshot storage, then replay the log entries that landed during the
//!   scan).
//! * [`client`] — the client library: consumer callbacks with transaction-
//!   window granularity, progress checkpointing, automatic
//!   relay → bootstrap → relay switchover, and bounded retry on consumer
//!   failure.
//!
//! [`capture`] holds the two capture adapters the paper describes: binlog
//! shipping (MySQL-style, also the semi-sync hook Espresso uses) and
//! polling (trigger/log-mining style for the Oracle analog).
//!
//! Timeline consistency: events travel in **windows** — one window per
//! source transaction, carrying the commit SCN — so subscribers see
//! transaction boundaries, commit order, and all changes, the three
//! requirements of §III.B.
//!
//! ```
//! use li_databus::{ConsumerCallback, DatabusClient, LogShippingAdapter, Relay, Window};
//! use li_sqlstore::{Database, RowKey};
//! use std::sync::{Arc, atomic::{AtomicUsize, Ordering}};
//!
//! // Source database -> relay (semi-sync capture).
//! let db = Database::new("primary");
//! db.create_table("member")?;
//! let relay = Arc::new(Relay::new("primary", 1 << 20));
//! LogShippingAdapter::attach(&db, relay.clone());
//!
//! // A consumer counting change events.
//! struct Counter(AtomicUsize);
//! impl ConsumerCallback for Counter {
//!     fn on_window(&self, w: &Window) -> Result<(), String> {
//!         self.0.fetch_add(w.changes.len(), Ordering::Relaxed);
//!         Ok(())
//!     }
//! }
//! let counter = Arc::new(Counter(AtomicUsize::new(0)));
//! let client = DatabusClient::new(relay, None, counter.clone());
//!
//! db.put_one("member", RowKey::single("42"), &b"profile"[..], 1)?;
//! client.catch_up().unwrap();
//! assert_eq!(counter.0.load(Ordering::Relaxed), 1);
//! # Ok::<(), li_sqlstore::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod capture;
pub mod client;
pub mod dispatch;
pub mod event;
pub mod relay;
pub mod transform;

pub use bootstrap::{BootstrapServer, DeltaResult, SnapshotResult};
pub use capture::{LogShippingAdapter, PollingAdapter};
pub use client::{ConsumerCallback, DatabusClient, DatabusError};
pub use dispatch::{DispatchStats, StreamDispatcher};
pub use event::{FilterSummary, FrozenWindow, ServerFilter, SharedWindow, Window, WindowView};
pub use relay::{Relay, RelayError};
pub use transform::{TransformRule, Transformation};
