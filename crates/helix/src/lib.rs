//! # li-helix — generic cluster manager (Helix analog)
//!
//! Paper §IV.B: "The cluster manager, Helix, is a generic platform for
//! managing a cluster of nodes ... Helix is modelled as state machine"
//! with three states of the world:
//!
//! * **IDEALSTATE** — "the state when all configured nodes are up and
//!   running";
//! * **CURRENTSTATE** — what each node actually hosts right now;
//! * **BESTPOSSIBLESTATE** — "the state closest to the IDEALSTATE given the
//!   set of available nodes".
//!
//! "Helix generates tasks to transform the CURRENTSTATE of the cluster to
//! the BESTPOSSIBLESTATE", assigning each task (a replica state transition)
//! to a node. Espresso delegates failover and rebalancing to exactly this
//! machinery: partitions run the **MasterSlave** state model
//! (`Offline ↔ Slave ↔ Master`), a dead master is replaced by promoting a
//! live slave, and cluster expansion moves partitions by bootstrapping new
//! slaves before mastership handoff.
//!
//! The crate splits into a pure core and a coordination shell:
//!
//! * [`model`] — replica states, legal transitions, resource configuration;
//! * [`compute`] — pure functions: ideal state, best-possible state, and
//!   the safely-ordered transition plan between two states (property-tested
//!   invariants: never two masters, demotions before promotions);
//! * [`controller`] — the runtime: participants announce liveness as
//!   ephemeral znodes in [`li_zk`], the controller reacts to membership
//!   changes, drives transitions through registered handlers, and publishes
//!   the external view (the routing table Espresso's routers consult).
//!
//! ```
//! use li_commons::ring::{NodeId, PartitionId};
//! use li_helix::{Controller, Participant, ResourceConfig};
//! use li_zk::ZooKeeper;
//! use std::sync::Arc;
//!
//! let zk = ZooKeeper::new();
//! let controller = Controller::new(&zk, "demo")?;
//! let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
//! let _participants: Vec<Participant> = nodes
//!     .iter()
//!     .map(|&n| {
//!         controller.register_handler(n, Arc::new(|_t| Ok(())));
//!         Participant::join(&zk, "demo", n).unwrap()
//!     })
//!     .collect();
//! controller.add_resource(ResourceConfig::new("db", 8, 2), &nodes)?;
//! let view = controller.external_view("db")?;
//! assert!(view.master_of(PartitionId(0)).is_some());
//! # Ok::<(), li_helix::HelixError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod controller;
pub mod health;
pub mod model;

pub use compute::{
    best_possible_state, compute_transitions, ideal_state, retarget_preference_lists,
};
pub use controller::{Controller, Participant, TransitionHandler};
pub use health::{check_health, Alert, HealthReport, Severity, SlaConfig};
pub use model::{
    Assignment, HelixError, PartitionAssignment, ReplicaState, ResourceConfig, Transition,
};
