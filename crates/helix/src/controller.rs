//! The controller runtime and participant glue, backed by `li-zk`.
//!
//! Layout in the coordination service (per cluster):
//!
//! ```text
//! /helix/<cluster>/live/<node-id>          ephemeral, created by participants
//! /helix/<cluster>/resources/<name>        JSON: config + preference lists
//! /helix/<cluster>/externalview/<name>     JSON: the published Assignment
//! ```
//!
//! The controller derives BESTPOSSIBLESTATE from live instances, diffs it
//! against the last published view (its CURRENTSTATE approximation — in
//! this in-process reproduction a handler failure is the only way they can
//! diverge, and those replicas are retried on the next rebalance), drives
//! the transition tasks through each node's [`TransitionHandler`], and
//! publishes the resulting external view for routers.

use parking_lot::Mutex;
use serde::{get_field, object, DeError, Deserialize, JsonValue, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use li_commons::metrics::{Counter, MetricsRegistry};
use li_commons::ring::NodeId;
use li_commons::watch;
use li_zk::{CreateMode, Session, SessionId, WatchEvent, ZooKeeper};

use crate::compute::{best_possible_state, compute_transitions, ideal_state};
use crate::model::{Assignment, HelixError, PartitionAssignment, ResourceConfig, Transition};

/// Callback a participant registers to execute transition tasks. Returning
/// `Err` tells the controller the replica is not in the target state.
pub type TransitionHandler = Arc<dyn Fn(&Transition) -> Result<(), String> + Send + Sync>;

struct ResourceMeta {
    config: ResourceConfig,
    preference_lists: Vec<PartitionAssignment>,
}

impl Serialize for ResourceMeta {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("config", self.config.to_json_value()),
            ("preference_lists", self.preference_lists.to_json_value()),
        ])
    }
}

impl Deserialize for ResourceMeta {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(ResourceMeta {
            config: get_field(value, "config")?,
            preference_lists: get_field(value, "preference_lists")?,
        })
    }
}

/// A node participating in a managed cluster. Its liveness is an ephemeral
/// znode; losing the session (crash) removes it and triggers rebalancing.
pub struct Participant {
    session: Session,
    node: NodeId,
    cluster: String,
}

impl Participant {
    /// Joins `cluster` as `node`, announcing liveness.
    pub fn join(zk: &ZooKeeper, cluster: &str, node: NodeId) -> Result<Self, HelixError> {
        let session = zk.connect();
        session.create_recursive(
            &format!("/helix/{cluster}/live/{}", node.0),
            node.0.to_string().into_bytes(),
            CreateMode::Ephemeral,
        )?;
        Ok(Participant {
            session,
            node,
            cluster: cluster.to_string(),
        })
    }

    /// This participant's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The underlying session id (expire it to simulate a crash).
    pub fn session_id(&self) -> SessionId {
        self.session.id()
    }

    /// Gracefully leaves the cluster (deletes the liveness node).
    pub fn leave(&self) -> Result<(), HelixError> {
        self.session
            .delete(&format!("/helix/{}/live/{}", self.cluster, self.node.0), None)?;
        Ok(())
    }
}

/// Controller observability under `helix.<cluster>`: state transitions
/// fired on participants and rebalance passes run.
struct ControllerMetrics {
    transitions_fired: Counter,
    rebalances: Counter,
}

impl ControllerMetrics {
    fn new(registry: &Arc<MetricsRegistry>, cluster: &str) -> Self {
        let scope = registry.scope(format!("helix.{cluster}"));
        ControllerMetrics {
            transitions_fired: scope.counter("transitions_fired"),
            rebalances: scope.counter("rebalances"),
        }
    }
}

/// The cluster controller.
pub struct Controller {
    zk: ZooKeeper,
    session: Session,
    cluster: String,
    handlers: Mutex<HashMap<NodeId, TransitionHandler>>,
    /// Per-resource external-view watch channels: each rebalance publishes
    /// the achieved view here as well as to the coordination service, so
    /// routers hold a locally cached copy instead of doing a ZK get + JSON
    /// parse per request.
    view_watch: Mutex<HashMap<String, watch::Sender<Arc<Assignment>>>>,
    registry: Arc<MetricsRegistry>,
    metrics: ControllerMetrics,
}

impl Controller {
    /// Creates a controller for `cluster`, laying out the base znodes.
    pub fn new(zk: &ZooKeeper, cluster: &str) -> Result<Self, HelixError> {
        Self::with_metrics(zk, cluster, &MetricsRegistry::new())
    }

    /// Creates a controller that reports into a shared metrics registry
    /// (under `helix.<cluster>`).
    pub fn with_metrics(
        zk: &ZooKeeper,
        cluster: &str,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Self, HelixError> {
        let session = zk.connect();
        for dir in ["live", "resources", "externalview"] {
            match session.create_recursive(
                &format!("/helix/{cluster}/{dir}"),
                Vec::new(),
                CreateMode::Persistent,
            ) {
                Ok(_) | Err(li_zk::ZkError::NodeExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(Controller {
            zk: zk.clone(),
            session,
            cluster: cluster.to_string(),
            handlers: Mutex::new(HashMap::new()),
            view_watch: Mutex::new(HashMap::new()),
            registry: Arc::clone(registry),
            metrics: ControllerMetrics::new(registry, cluster),
        })
    }

    /// The metrics registry this controller reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Registers the transition handler for `node`. In a networked
    /// deployment this dispatch would be an RPC; in-process it is a direct
    /// call into the participant's state machine.
    pub fn register_handler(&self, node: NodeId, handler: TransitionHandler) {
        self.handlers.lock().insert(node, handler);
    }

    /// Adds a managed resource over `nodes` (its configured node set) and
    /// performs the initial rebalance.
    pub fn add_resource(
        &self,
        config: ResourceConfig,
        nodes: &[NodeId],
    ) -> Result<(), HelixError> {
        let (preference_lists, _) = ideal_state(&config, nodes);
        let meta = ResourceMeta {
            config,
            preference_lists,
        };
        let path = format!("/helix/{}/resources/{}", self.cluster, meta.config.name);
        let json = serde_json::to_vec(&meta)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;
        self.session.create(&path, json, CreateMode::Persistent)?;
        self.rebalance(&meta.config.name)?;
        Ok(())
    }

    /// Expands a resource to a new configured node set: recomputes the
    /// preference lists (the paper's partition migration during cluster
    /// expansion) and rebalances.
    pub fn expand_resource(&self, name: &str, nodes: &[NodeId]) -> Result<(), HelixError> {
        let path = format!("/helix/{}/resources/{name}", self.cluster);
        let (data, stat) = self.session.get(&path)?;
        let meta: ResourceMeta = serde_json::from_slice(&data)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;
        let (preference_lists, _) = ideal_state(&meta.config, nodes);
        let next = ResourceMeta {
            config: meta.config,
            preference_lists,
        };
        let json = serde_json::to_vec(&next)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;
        self.session.set(&path, json, Some(stat.version))?;
        self.rebalance(name)?;
        Ok(())
    }

    /// The stored preference list of one partition of `resource` (position
    /// 0 is the intended master).
    pub fn preference_list(
        &self,
        resource: &str,
        partition: li_commons::ring::PartitionId,
    ) -> Result<PartitionAssignment, HelixError> {
        let path = format!("/helix/{}/resources/{resource}", self.cluster);
        let (data, _) = self
            .session
            .get(&path)
            .map_err(|_| HelixError::UnknownResource(resource.to_string()))?;
        let meta: ResourceMeta = serde_json::from_slice(&data)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;
        meta.preference_lists
            .get(partition.0 as usize)
            .cloned()
            .ok_or_else(|| HelixError::Retarget(format!("partition {partition} out of range")))
    }

    /// Computes and installs the target partition map for moving one
    /// replica of `partition` from `from` to `to`, then rebalances. The
    /// external view — and every [`Controller::watch_external_view`]
    /// subscriber — flips to the new owner through the normal safety
    /// phases: the donor demotes and drops first, the newcomer bootstraps
    /// `Offline → Slave`, and any mastership lands via a final
    /// `Slave → Master` promotion (which is where Espresso's
    /// drain-the-relay-before-mastering hook runs).
    pub fn retarget_partition(
        &self,
        resource: &str,
        partition: li_commons::ring::PartitionId,
        from: NodeId,
        to: NodeId,
    ) -> Result<Vec<Transition>, HelixError> {
        let path = format!("/helix/{}/resources/{resource}", self.cluster);
        let (data, stat) = self
            .session
            .get(&path)
            .map_err(|_| HelixError::UnknownResource(resource.to_string()))?;
        let meta: ResourceMeta = serde_json::from_slice(&data)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;
        let preference_lists =
            crate::compute::retarget_preference_lists(&meta.preference_lists, partition, from, to)
                .map_err(HelixError::Retarget)?;
        let next = ResourceMeta {
            config: meta.config,
            preference_lists,
        };
        let json = serde_json::to_vec(&next)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;
        self.session.set(&path, json, Some(stat.version))?;
        self.rebalance(resource)
    }

    /// Names of managed resources.
    pub fn resources(&self) -> Result<Vec<String>, HelixError> {
        Ok(self
            .session
            .children(&format!("/helix/{}/resources", self.cluster))?)
    }

    /// Currently live node ids (from ephemeral liveness znodes).
    pub fn live_nodes(&self) -> Result<BTreeSet<NodeId>, HelixError> {
        let children = self
            .session
            .children(&format!("/helix/{}/live", self.cluster))?;
        Ok(children
            .iter()
            .filter_map(|name| name.parse::<u16>().ok().map(NodeId))
            .collect())
    }

    /// The last published external view for `resource` (empty if never
    /// published).
    pub fn external_view(&self, resource: &str) -> Result<Assignment, HelixError> {
        let path = format!("/helix/{}/externalview/{resource}", self.cluster);
        match self.session.get(&path) {
            Ok((data, _)) => Assignment::from_json(
                std::str::from_utf8(&data)
                    .map_err(|e| HelixError::BadExternalView(e.to_string()))?,
            ),
            Err(li_zk::ZkError::NoNode(_)) => Ok(Assignment::new()),
            Err(e) => Err(e.into()),
        }
    }

    /// Subscribes to `resource`'s external view: the receiver's
    /// [`watch::Receiver::get`] is always the latest published assignment
    /// (seeded from the coordination service on first subscription), and
    /// every subsequent [`Controller::rebalance`] pushes the new view
    /// without the subscriber polling ZK.
    pub fn watch_external_view(
        &self,
        resource: &str,
    ) -> Result<watch::Receiver<Arc<Assignment>>, HelixError> {
        let mut watches = self.view_watch.lock();
        if let Some(sender) = watches.get(resource) {
            return Ok(sender.subscribe());
        }
        let current = self.external_view(resource)?;
        let (tx, rx) = watch::channel(Arc::new(current));
        watches.insert(resource.to_string(), tx);
        Ok(rx)
    }

    /// Recomputes BESTPOSSIBLESTATE for `resource`, executes the transition
    /// plan, and publishes the achieved external view. Returns the
    /// transitions that were successfully executed.
    pub fn rebalance(&self, resource: &str) -> Result<Vec<Transition>, HelixError> {
        let meta_path = format!("/helix/{}/resources/{resource}", self.cluster);
        let (data, _) = self
            .session
            .get(&meta_path)
            .map_err(|_| HelixError::UnknownResource(resource.to_string()))?;
        let meta: ResourceMeta = serde_json::from_slice(&data)
            .map_err(|e| HelixError::Coordination(e.to_string()))?;

        self.metrics.rebalances.inc();
        let live = self.live_nodes()?;
        let current = self.external_view(resource)?;
        let target = best_possible_state(&meta.preference_lists, &live);
        let plan = compute_transitions(resource, &current, &target);

        let mut achieved = current;
        let mut executed = Vec::with_capacity(plan.len());
        let handlers = self.handlers.lock().clone();
        for step in plan {
            let outcome = match handlers.get(&step.node) {
                // A dead node can't execute anything; its replicas just
                // drop out of the view.
                Some(handler) if live.contains(&step.node) => handler(&step),
                _ => Ok(()),
            };
            match outcome {
                Ok(()) => {
                    self.metrics.transitions_fired.inc();
                    achieved.set_state(step.partition, step.node, step.to);
                    executed.push(step);
                }
                Err(msg) => {
                    // Leave the replica where it was; the next rebalance
                    // will retry. Surface the failure to the caller.
                    return Err(HelixError::TransitionFailed(format!("{step}: {msg}")));
                }
            }
        }

        let view_path = format!("/helix/{}/externalview/{resource}", self.cluster);
        let json = achieved.to_json().into_bytes();
        match self.session.set(&view_path, json.clone(), None) {
            Ok(_) => {}
            Err(li_zk::ZkError::NoNode(_)) => {
                self.session
                    .create(&view_path, json, CreateMode::Persistent)?;
            }
            Err(e) => return Err(e.into()),
        }
        if let Some(sender) = self.view_watch.lock().get(resource) {
            sender.send(Arc::new(achieved));
        }
        Ok(executed)
    }

    /// Rebalances every managed resource (the controller's reaction to a
    /// membership change).
    pub fn rebalance_all(&self) -> Result<(), HelixError> {
        for resource in self.resources()? {
            self.rebalance(&resource)?;
        }
        Ok(())
    }

    /// Registers a one-shot watch on cluster membership; the caller calls
    /// [`Controller::rebalance_all`] when it fires and re-arms.
    pub fn watch_membership(
        &self,
    ) -> Result<crossbeam::channel::Receiver<WatchEvent>, HelixError> {
        Ok(self
            .session
            .watch_children(&format!("/helix/{}/live", self.cluster))?)
    }

    /// Simulates a node crash by expiring the participant's session.
    pub fn expire_session(&self, session: SessionId) {
        self.zk.expire(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ReplicaState;
    use li_commons::ring::PartitionId;
    use parking_lot::Mutex as PMutex;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    /// Records transitions per node for assertions.
    fn recording_handler(log: Arc<PMutex<Vec<Transition>>>) -> TransitionHandler {
        Arc::new(move |t: &Transition| {
            log.lock().push(t.clone());
            Ok(())
        })
    }

    fn cluster_with(
        n: u16,
    ) -> (
        ZooKeeper,
        Controller,
        Vec<Participant>,
        Arc<PMutex<Vec<Transition>>>,
    ) {
        let zk = ZooKeeper::new();
        let controller = Controller::new(&zk, "espresso").unwrap();
        let log = Arc::new(PMutex::new(Vec::new()));
        let participants: Vec<Participant> = nodes(n)
            .into_iter()
            .map(|node| {
                let p = Participant::join(&zk, "espresso", node).unwrap();
                controller.register_handler(node, recording_handler(log.clone()));
                p
            })
            .collect();
        (zk, controller, participants, log)
    }

    #[test]
    fn initial_rebalance_reaches_ideal() {
        let (_zk, controller, _parts, _log) = cluster_with(4);
        controller
            .add_resource(ResourceConfig::new("db", 8, 2), &nodes(4))
            .unwrap();
        let view = controller.external_view("db").unwrap();
        for p in 0..8 {
            assert!(view.master_of(PartitionId(p)).is_some(), "p{p} has master");
            assert_eq!(view.slaves_of(PartitionId(p)).len(), 1);
        }
    }

    #[test]
    fn crash_promotes_slave_and_recovery_restores() {
        let (zk, controller, parts, log) = cluster_with(3);
        controller
            .add_resource(ResourceConfig::new("db", 6, 2), &nodes(3))
            .unwrap();
        let before = controller.external_view("db").unwrap();
        let victim = parts[0].node();
        let victim_partitions: Vec<PartitionId> = (0..6)
            .map(PartitionId)
            .filter(|&p| before.master_of(p) == Some(victim))
            .collect();
        assert!(!victim_partitions.is_empty());

        log.lock().clear();
        zk.expire(parts[0].session_id());
        controller.rebalance_all().unwrap();

        let after = controller.external_view("db").unwrap();
        for &p in &victim_partitions {
            let new_master = after.master_of(p).expect("promoted");
            assert_ne!(new_master, victim);
            assert!(
                before.slaves_of(p).contains(&new_master),
                "promoted from the old slave set"
            );
            assert_eq!(after.state_of(p, victim), ReplicaState::Offline);
        }
        // Promotions went through Slave->Master only.
        assert!(log
            .lock()
            .iter()
            .all(|t| t.from.can_step_to(t.to)));

        // Node rejoins; view converges back to ideal (every partition has
        // full replica count again).
        let p0 = Participant::join(&zk, "espresso", victim).unwrap();
        controller.register_handler(victim, recording_handler(log.clone()));
        controller.rebalance_all().unwrap();
        let restored = controller.external_view("db").unwrap();
        for p in 0..6 {
            assert_eq!(
                restored.slaves_of(PartitionId(p)).len() + 1,
                2,
                "full replication restored for p{p}"
            );
        }
        drop(p0);
    }

    #[test]
    fn graceful_leave_triggers_same_recovery() {
        let (_zk, controller, parts, _log) = cluster_with(2);
        controller
            .add_resource(ResourceConfig::new("db", 2, 2), &nodes(2))
            .unwrap();
        parts[1].leave().unwrap();
        controller.rebalance_all().unwrap();
        let view = controller.external_view("db").unwrap();
        for p in 0..2 {
            assert_eq!(view.master_of(PartitionId(p)), Some(parts[0].node()));
            assert!(view.slaves_of(PartitionId(p)).is_empty());
        }
    }

    #[test]
    fn expansion_moves_partitions_to_new_node() {
        let (zk, controller, _parts, log) = cluster_with(2);
        controller
            .add_resource(ResourceConfig::new("db", 8, 2), &nodes(2))
            .unwrap();
        // Add a third node and expand the resource onto it.
        let newbie = NodeId(2);
        let _p = Participant::join(&zk, "espresso", newbie).unwrap();
        controller.register_handler(newbie, recording_handler(log.clone()));
        log.lock().clear();
        controller.expand_resource("db", &nodes(3)).unwrap();
        let view = controller.external_view("db").unwrap();
        let hosted = view.partitions_on(newbie);
        assert!(!hosted.is_empty(), "new node hosts replicas");
        // The new node never jumps straight to Master: its first transition
        // per partition is always the Offline->Slave bootstrap, and any
        // mastership comes via a later Slave->Master step (the paper's
        // "bootstrap from snapshot, catch up, then hand off mastership").
        let steps = log.lock();
        let mut first_step_per_partition: std::collections::BTreeMap<PartitionId, &Transition> =
            std::collections::BTreeMap::new();
        for t in steps.iter().filter(|t| t.node == newbie) {
            first_step_per_partition.entry(t.partition).or_insert(t);
        }
        assert!(!first_step_per_partition.is_empty());
        for (p, t) in first_step_per_partition {
            assert_eq!(
                (t.from, t.to),
                (ReplicaState::Offline, ReplicaState::Slave),
                "partition {p} first step on new node"
            );
        }
    }

    #[test]
    fn failed_transition_surfaces_and_view_not_corrupted() {
        let zk = ZooKeeper::new();
        let controller = Controller::new(&zk, "c").unwrap();
        let _p0 = Participant::join(&zk, "c", NodeId(0)).unwrap();
        controller.register_handler(
            NodeId(0),
            Arc::new(|_t: &Transition| Err("disk full".into())),
        );
        let err = controller
            .add_resource(ResourceConfig::new("db", 1, 1), &nodes(1))
            .unwrap_err();
        assert!(matches!(err, HelixError::TransitionFailed(_)));
        // Nothing published as mastered.
        let view = controller.external_view("db").unwrap();
        assert_eq!(view.master_of(PartitionId(0)), None);
    }

    #[test]
    fn membership_watch_fires_on_crash() {
        let (zk, controller, parts, _log) = cluster_with(2);
        let rx = controller.watch_membership().unwrap();
        zk.expire(parts[1].session_id());
        assert!(rx.try_recv().is_ok());
    }

    #[test]
    fn external_view_watch_tracks_rebalances_without_polling() {
        let (zk, controller, parts, _log) = cluster_with(3);
        controller
            .add_resource(ResourceConfig::new("db", 6, 2), &nodes(3))
            .unwrap();
        let rx = controller.watch_external_view("db").unwrap();
        // Seeded from the published view.
        assert_eq!(*rx.get(), controller.external_view("db").unwrap());
        // A crash + rebalance pushes the new view into the cached copy.
        zk.expire(parts[0].session_id());
        controller.rebalance_all().unwrap();
        assert_eq!(*rx.get(), controller.external_view("db").unwrap());
        assert!(
            (0..6).all(|p| rx.get().master_of(PartitionId(p)) != Some(parts[0].node())),
            "crashed node no longer mastered in the cached view"
        );
    }

    #[test]
    fn retarget_moves_mastership_through_safety_phases() {
        let (_zk, controller, _parts, log) = cluster_with(3);
        controller
            .add_resource(ResourceConfig::new("db", 3, 2), &nodes(3))
            .unwrap();
        let p = PartitionId(0);
        let before = controller.external_view("db").unwrap();
        let donor = before.master_of(p).unwrap();
        let target = nodes(3)
            .into_iter()
            .find(|&n| before.state_of(p, n) == ReplicaState::Offline)
            .unwrap();

        log.lock().clear();
        let rx = controller.watch_external_view("db").unwrap();
        controller.retarget_partition("db", p, donor, target).unwrap();

        let after = controller.external_view("db").unwrap();
        assert_eq!(after.master_of(p), Some(target), "mastership moved");
        assert_eq!(after.state_of(p, donor), ReplicaState::Offline);
        assert_eq!(*rx.get(), after, "watch subscribers saw the flip");
        // The newcomer passed through Slave before mastering, and the donor
        // demoted before the promotion happened.
        let steps = log.lock();
        let target_steps: Vec<_> = steps.iter().filter(|t| t.node == target).collect();
        assert_eq!(
            (target_steps[0].from, target_steps[0].to),
            (ReplicaState::Offline, ReplicaState::Slave)
        );
        let demote_at = steps
            .iter()
            .position(|t| t.node == donor && t.to == ReplicaState::Slave)
            .expect("donor demoted");
        let promote_at = steps
            .iter()
            .position(|t| t.node == target && t.to == ReplicaState::Master)
            .expect("target promoted");
        assert!(demote_at < promote_at, "never two masters");
        drop(steps);

        // Stored preference list reflects the move.
        let prefs = controller.preference_list("db", p).unwrap();
        assert!(prefs.contains(&target) && !prefs.contains(&donor));
        // Invalid move rejected without disturbing the view.
        assert!(matches!(
            controller.retarget_partition("db", p, donor, target),
            Err(HelixError::Retarget(_))
        ));
        assert_eq!(controller.external_view("db").unwrap(), after);
    }

    #[test]
    fn unknown_resource_rejected() {
        let zk = ZooKeeper::new();
        let controller = Controller::new(&zk, "c").unwrap();
        assert!(matches!(
            controller.rebalance("nope"),
            Err(HelixError::UnknownResource(_))
        ));
    }
}
