//! Cluster health monitoring and SLA alerts.
//!
//! Paper §IV.B, Helix feature list: "Health check: It monitors cluster
//! health and provides alerts on SLA violations." This module watches two
//! things the rest of the crate produces:
//!
//! * **liveness SLA** — fraction of configured nodes alive;
//! * **replication SLA** — fraction of partitions at full replica count
//!   (and whether every partition has a master at all).

use li_commons::ring::{NodeId, PartitionId};
use std::collections::BTreeSet;

use crate::model::Assignment;

/// Severity of an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Degraded but serving (e.g. under-replicated partitions).
    Warning,
    /// Data unavailable (e.g. masterless partitions).
    Critical,
}

/// One SLA violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// SLA thresholds.
#[derive(Debug, Clone)]
pub struct SlaConfig {
    /// Minimum fraction of configured nodes that must be live.
    pub min_live_fraction: f64,
    /// Target replicas per partition.
    pub target_replicas: usize,
}

impl Default for SlaConfig {
    fn default() -> Self {
        SlaConfig {
            min_live_fraction: 0.5,
            target_replicas: 2,
        }
    }
}

/// A health report over one resource's external view.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Live nodes / configured nodes.
    pub live_fraction: f64,
    /// Partitions with a master.
    pub mastered_partitions: u32,
    /// Partitions below the replica target.
    pub under_replicated: Vec<PartitionId>,
    /// Partitions with no master (unavailable for writes).
    pub masterless: Vec<PartitionId>,
    /// Raised alerts, most severe first.
    pub alerts: Vec<Alert>,
}

impl HealthReport {
    /// True when no alert was raised.
    pub fn healthy(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// Evaluates the health of a resource.
pub fn check_health(
    config: &SlaConfig,
    configured_nodes: &[NodeId],
    live_nodes: &BTreeSet<NodeId>,
    num_partitions: u32,
    view: &Assignment,
) -> HealthReport {
    let live_fraction = if configured_nodes.is_empty() {
        0.0
    } else {
        configured_nodes
            .iter()
            .filter(|n| live_nodes.contains(n))
            .count() as f64
            / configured_nodes.len() as f64
    };

    let mut under_replicated = Vec::new();
    let mut masterless = Vec::new();
    let mut mastered = 0u32;
    for p in 0..num_partitions {
        let pid = PartitionId(p);
        let replicas = view
            .partitions
            .get(&pid)
            .map(|nodes| nodes.len())
            .unwrap_or(0);
        if view.master_of(pid).is_some() {
            mastered += 1;
        } else {
            masterless.push(pid);
        }
        if replicas < config.target_replicas {
            under_replicated.push(pid);
        }
    }

    let mut alerts = Vec::new();
    if !masterless.is_empty() {
        alerts.push(Alert {
            severity: Severity::Critical,
            message: format!("{} partition(s) have no master", masterless.len()),
        });
    }
    if live_fraction < config.min_live_fraction {
        alerts.push(Alert {
            severity: Severity::Critical,
            message: format!(
                "only {:.0}% of nodes live (SLA {:.0}%)",
                live_fraction * 100.0,
                config.min_live_fraction * 100.0
            ),
        });
    }
    if !under_replicated.is_empty() {
        alerts.push(Alert {
            severity: Severity::Warning,
            message: format!(
                "{} partition(s) under-replicated (< {})",
                under_replicated.len(),
                config.target_replicas
            ),
        });
    }
    alerts.sort_by_key(|a| std::cmp::Reverse(a.severity));

    HealthReport {
        live_fraction,
        mastered_partitions: mastered,
        under_replicated,
        masterless,
        alerts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{best_possible_state, ideal_state};
    use crate::model::ResourceConfig;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn live(ids: &[u16]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn fully_up_cluster_is_healthy() {
        let config = ResourceConfig::new("db", 8, 2);
        let (prefs, _) = ideal_state(&config, &nodes(4));
        let view = best_possible_state(&prefs, &live(&[0, 1, 2, 3]));
        let report = check_health(
            &SlaConfig::default(),
            &nodes(4),
            &live(&[0, 1, 2, 3]),
            8,
            &view,
        );
        assert!(report.healthy(), "{:?}", report.alerts);
        assert_eq!(report.mastered_partitions, 8);
        assert_eq!(report.live_fraction, 1.0);
    }

    #[test]
    fn one_node_down_warns_under_replication() {
        let config = ResourceConfig::new("db", 8, 2);
        let (prefs, _) = ideal_state(&config, &nodes(4));
        let view = best_possible_state(&prefs, &live(&[0, 1, 2]));
        let report = check_health(
            &SlaConfig::default(),
            &nodes(4),
            &live(&[0, 1, 2]),
            8,
            &view,
        );
        assert!(!report.healthy());
        assert!(report.masterless.is_empty(), "still fully mastered");
        assert!(!report.under_replicated.is_empty());
        assert_eq!(report.alerts[0].severity, Severity::Warning);
    }

    #[test]
    fn majority_loss_is_critical() {
        let config = ResourceConfig::new("db", 4, 2);
        let (prefs, _) = ideal_state(&config, &nodes(4));
        let view = best_possible_state(&prefs, &live(&[0]));
        let report = check_health(&SlaConfig::default(), &nodes(4), &live(&[0]), 4, &view);
        assert!(report
            .alerts
            .iter()
            .any(|a| a.severity == Severity::Critical));
        assert!(report.live_fraction < 0.5);
    }

    #[test]
    fn total_loss_flags_masterless_partitions() {
        let config = ResourceConfig::new("db", 4, 2);
        let (prefs, _) = ideal_state(&config, &nodes(2));
        let view = best_possible_state(&prefs, &BTreeSet::new());
        let report = check_health(&SlaConfig::default(), &nodes(2), &BTreeSet::new(), 4, &view);
        assert_eq!(report.masterless.len(), 4);
        assert_eq!(report.mastered_partitions, 0);
        assert_eq!(report.alerts[0].severity, Severity::Critical);
    }
}
