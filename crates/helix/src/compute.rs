//! Pure state-machine computations: IDEALSTATE, BESTPOSSIBLESTATE, and the
//! ordered transition plan between cluster states.

use li_commons::ring::{NodeId, PartitionId};
use std::collections::BTreeSet;

use crate::model::{Assignment, PartitionAssignment, ReplicaState, ResourceConfig, Transition};

/// Computes the IDEALSTATE for a resource over `nodes`: per-partition
/// preference lists dealt round-robin (partition `p`'s replicas start at
/// node `p % n`), plus the assignment they imply when every node is up
/// (first preference = master, rest slaves).
///
/// The preference lists are stable metadata: BESTPOSSIBLESTATE is always
/// derived from them, so replicas don't wander between nodes as liveness
/// flaps (Helix's "optimized rebalancing" property).
pub fn ideal_state(
    config: &ResourceConfig,
    nodes: &[NodeId],
) -> (Vec<PartitionAssignment>, Assignment) {
    assert!(!nodes.is_empty(), "ideal state needs at least one node");
    let replicas = config.replicas.min(nodes.len());
    let mut preference_lists = Vec::with_capacity(config.num_partitions as usize);
    let mut assignment = Assignment::new();
    for p in 0..config.num_partitions {
        let mut prefs = Vec::with_capacity(replicas);
        for r in 0..replicas {
            prefs.push(nodes[(p as usize + r) % nodes.len()]);
        }
        let partition = PartitionId(p);
        for (i, &node) in prefs.iter().enumerate() {
            let state = if i == 0 {
                ReplicaState::Master
            } else {
                ReplicaState::Slave
            };
            assignment.set_state(partition, node, state);
        }
        preference_lists.push(prefs);
    }
    (preference_lists, assignment)
}

/// Computes the BESTPOSSIBLESTATE: for each partition, the first *live*
/// node in its preference list masters it and the following live nodes
/// slave it. With every node live this equals the ideal assignment; with
/// none live the partition is simply unassigned.
pub fn best_possible_state(
    preference_lists: &[PartitionAssignment],
    live: &BTreeSet<NodeId>,
) -> Assignment {
    let mut assignment = Assignment::new();
    for (p, prefs) in preference_lists.iter().enumerate() {
        let partition = PartitionId(p as u32);
        let mut placed_master = false;
        for &node in prefs {
            if !live.contains(&node) {
                continue;
            }
            let state = if placed_master {
                ReplicaState::Slave
            } else {
                placed_master = true;
                ReplicaState::Master
            };
            assignment.set_state(partition, node, state);
        }
    }
    assignment
}

/// Computes the target partition map for a single-partition move: the
/// preference lists with `from` replaced (in place, keeping its slot) by
/// `to` in `partition`'s list. Every other partition's list is untouched,
/// so the move is surgical — replicas elsewhere don't wander. Moving the
/// master slot hands `to` mastership once the rebalance promotes it;
/// moving a slave slot just re-homes that replica.
pub fn retarget_preference_lists(
    preference_lists: &[PartitionAssignment],
    partition: PartitionId,
    from: NodeId,
    to: NodeId,
) -> Result<Vec<PartitionAssignment>, String> {
    let idx = partition.0 as usize;
    let Some(prefs) = preference_lists.get(idx) else {
        return Err(format!(
            "partition {partition} out of range (resource has {} partitions)",
            preference_lists.len()
        ));
    };
    if !prefs.contains(&from) {
        return Err(format!("{from} does not host {partition}"));
    }
    if prefs.contains(&to) {
        return Err(format!("{to} already hosts {partition}"));
    }
    let mut next = preference_lists.to_vec();
    next[idx] = prefs
        .iter()
        .map(|&n| if n == from { to } else { n })
        .collect();
    Ok(next)
}

/// Computes the ordered list of single-step transitions taking `current`
/// to `target` for `resource`.
///
/// Steps are emitted in four safety phases:
/// 1. `Master → Slave` (demote old masters first — never two masters),
/// 2. `Slave → Offline` (drops),
/// 3. `Offline → Slave` (bootstraps),
/// 4. `Slave → Master` (promotions last, after demotions freed the slot).
///
/// Multi-step paths (e.g. `Offline → Master`) are decomposed into their
/// legal single steps across the phases.
pub fn compute_transitions(
    resource: &str,
    current: &Assignment,
    target: &Assignment,
) -> Vec<Transition> {
    // Union of (partition, node) pairs present in either assignment.
    let mut pairs: BTreeSet<(PartitionId, NodeId)> = BTreeSet::new();
    for (&p, nodes) in &current.partitions {
        for &n in nodes.keys() {
            pairs.insert((p, n));
        }
    }
    for (&p, nodes) in &target.partitions {
        for &n in nodes.keys() {
            pairs.insert((p, n));
        }
    }

    let mut phases: [Vec<Transition>; 4] = Default::default();
    for (partition, node) in pairs {
        let from = current.state_of(partition, node);
        let to = target.state_of(partition, node);
        let mut cursor = from;
        for step in from.path_to(to) {
            let phase = match (cursor, step) {
                (ReplicaState::Master, ReplicaState::Slave) => 0,
                (ReplicaState::Slave, ReplicaState::Offline) => 1,
                (ReplicaState::Offline, ReplicaState::Slave) => 2,
                (ReplicaState::Slave, ReplicaState::Master) => 3,
                _ => unreachable!("path_to yields only legal steps"),
            };
            phases[phase].push(Transition {
                resource: resource.to_string(),
                partition,
                node,
                from: cursor,
                to: step,
            });
            cursor = step;
        }
    }
    phases.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn live(ids: &[u16]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn ideal_state_balances_masters() {
        let config = ResourceConfig::new("db", 12, 3);
        let (prefs, assignment) = ideal_state(&config, &nodes(4));
        assert_eq!(prefs.len(), 12);
        // Each node masters 3 of 12 partitions.
        let mut master_counts = std::collections::BTreeMap::new();
        for p in 0..12 {
            let m = assignment.master_of(PartitionId(p)).unwrap();
            *master_counts.entry(m).or_insert(0) += 1;
            assert_eq!(assignment.slaves_of(PartitionId(p)).len(), 2);
        }
        assert!(master_counts.values().all(|&c| c == 3), "{master_counts:?}");
    }

    #[test]
    fn replicas_capped_at_node_count() {
        let config = ResourceConfig::new("db", 4, 3);
        let (prefs, _) = ideal_state(&config, &nodes(2));
        assert!(prefs.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn best_possible_equals_ideal_when_all_live() {
        let config = ResourceConfig::new("db", 8, 2);
        let (prefs, ideal) = ideal_state(&config, &nodes(4));
        let best = best_possible_state(&prefs, &live(&[0, 1, 2, 3]));
        assert_eq!(best, ideal);
    }

    #[test]
    fn dead_master_replaced_by_preference_slave() {
        let config = ResourceConfig::new("db", 4, 2);
        let (prefs, ideal) = ideal_state(&config, &nodes(4));
        // Find a partition mastered by node 0 and note its slave.
        let p = (0..4)
            .map(PartitionId)
            .find(|&p| ideal.master_of(p) == Some(NodeId(0)))
            .unwrap();
        let slave = ideal.slaves_of(p)[0];
        let best = best_possible_state(&prefs, &live(&[1, 2, 3]));
        assert_eq!(best.master_of(p), Some(slave));
        assert_eq!(best.state_of(p, NodeId(0)), ReplicaState::Offline);
    }

    #[test]
    fn no_live_nodes_means_unassigned() {
        let config = ResourceConfig::new("db", 2, 2);
        let (prefs, _) = ideal_state(&config, &nodes(2));
        let best = best_possible_state(&prefs, &BTreeSet::new());
        assert!(best.partitions.is_empty());
    }

    #[test]
    fn transitions_for_failover_demote_before_promote() {
        let config = ResourceConfig::new("db", 1, 2);
        let (prefs, ideal) = ideal_state(&config, &nodes(2));
        let best = best_possible_state(&prefs, &live(&[1]));
        let plan = compute_transitions("db", &ideal, &best);
        // Node 0 (dead master): Master->Slave then Slave->Offline.
        // Node 1: Slave->Master.
        assert_eq!(plan.len(), 3);
        assert_eq!(
            (plan[0].node, plan[0].from, plan[0].to),
            (NodeId(0), ReplicaState::Master, ReplicaState::Slave)
        );
        assert_eq!(
            (plan[1].node, plan[1].from, plan[1].to),
            (NodeId(0), ReplicaState::Slave, ReplicaState::Offline)
        );
        assert_eq!(
            (plan[2].node, plan[2].from, plan[2].to),
            (NodeId(1), ReplicaState::Slave, ReplicaState::Master)
        );
    }

    #[test]
    fn retarget_swaps_one_slot_only() {
        let config = ResourceConfig::new("db", 4, 2);
        let (prefs, _) = ideal_state(&config, &nodes(3));
        let p = PartitionId(1);
        let from = prefs[1][0];
        let to = nodes(3)
            .into_iter()
            .find(|n| !prefs[1].contains(n))
            .unwrap();
        let next = retarget_preference_lists(&prefs, p, from, to).unwrap();
        assert_eq!(next[1][0], to, "target takes the vacated (master) slot");
        assert_eq!(next[1][1..], prefs[1][1..], "other replicas keep slots");
        for (i, list) in next.iter().enumerate() {
            if i != 1 {
                assert_eq!(list, &prefs[i], "partition {i} untouched");
            }
        }
        // Rejections: out-of-range partition, non-hosting donor, and a
        // target that already hosts the partition.
        assert!(retarget_preference_lists(&prefs, PartitionId(99), from, to).is_err());
        assert!(retarget_preference_lists(&prefs, p, to, from).is_err());
        assert!(retarget_preference_lists(&prefs, p, from, prefs[1][1]).is_err());
    }

    #[test]
    fn empty_plan_when_states_match() {
        let config = ResourceConfig::new("db", 8, 3);
        let (_, ideal) = ideal_state(&config, &nodes(4));
        assert!(compute_transitions("db", &ideal, &ideal).is_empty());
    }

    /// Applies a plan step-by-step, asserting every step is legal and that
    /// no partition ever has two masters.
    fn simulate(plan: &[Transition], start: &Assignment) -> Assignment {
        let mut state = start.clone();
        for step in plan {
            let actual = state.state_of(step.partition, step.node);
            assert_eq!(actual, step.from, "step from-state mismatch: {step}");
            assert!(actual.can_step_to(step.to), "illegal step {step}");
            state.set_state(step.partition, step.node, step.to);
            let masters = state
                .partitions
                .get(&step.partition)
                .map(|nodes| {
                    nodes
                        .values()
                        .filter(|&&s| s == ReplicaState::Master)
                        .count()
                })
                .unwrap_or(0);
            assert!(masters <= 1, "two masters after {step}");
        }
        state
    }

    proptest! {
        #[test]
        fn prop_plan_reaches_target_safely(
            num_partitions in 1u32..16,
            node_count in 1u16..8,
            replicas in 1usize..4,
            dead in proptest::collection::btree_set(0u16..8, 0..8),
        ) {
            let config = ResourceConfig::new("db", num_partitions, replicas);
            let all = nodes(node_count);
            let (prefs, ideal) = ideal_state(&config, &all);
            let live: BTreeSet<NodeId> = all
                .iter()
                .copied()
                .filter(|n| !dead.contains(&n.0))
                .collect();
            let best = best_possible_state(&prefs, &live);
            let plan = compute_transitions("db", &ideal, &best);
            let reached = simulate(&plan, &ideal);
            prop_assert_eq!(reached, best);
        }

        #[test]
        fn prop_recovery_plan_is_safe_too(
            num_partitions in 1u32..12,
            node_count in 2u16..6,
            dead_then_back in 0u16..6,
        ) {
            // Down then up: ideal -> degraded -> ideal again.
            let config = ResourceConfig::new("db", num_partitions, 2);
            let all = nodes(node_count);
            let dead = dead_then_back % node_count;
            let (prefs, ideal) = ideal_state(&config, &all);
            let degraded_live: BTreeSet<NodeId> =
                all.iter().copied().filter(|n| n.0 != dead).collect();
            let degraded = best_possible_state(&prefs, &degraded_live);
            let down_plan = compute_transitions("db", &ideal, &degraded);
            let mid = simulate(&down_plan, &ideal);
            prop_assert_eq!(&mid, &degraded);
            let full_live: BTreeSet<NodeId> = all.iter().copied().collect();
            let restored = best_possible_state(&prefs, &full_live);
            let up_plan = compute_transitions("db", &degraded, &restored);
            let end = simulate(&up_plan, &degraded);
            prop_assert_eq!(end, restored);
        }
    }
}
