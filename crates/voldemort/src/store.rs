//! Store definitions — the per-table configuration of Figure II.1.

use serde::{get_field, object, DeError, Deserialize, JsonValue, Serialize};

/// Which storage engine backs a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Volatile in-memory engine (tests, caches).
    Memory,
    /// Log-structured read-write engine, the BerkeleyDB-JE analog.
    BdbLike,
    /// The custom read-only engine fed by the build/pull/swap pipeline.
    ReadOnly,
}

/// Configuration of one store (a "database table" in the paper's terms):
/// "Every store has its set of configurations, including — replication
/// factor (N), required number of nodes which should participate in read
/// (R) and writes (W) and finally a schema."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreDef {
    /// Store name.
    pub name: String,
    /// Replication factor N.
    pub replication: usize,
    /// Read quorum R.
    pub required_reads: usize,
    /// Write quorum W.
    pub required_writes: usize,
    /// Zones that must be covered by the preference list (1 = single-DC).
    pub zones_required: usize,
    /// Backing engine.
    pub engine: EngineKind,
}

/// JSON form (serde's externally-tagged unit variants): a bare string
/// with the variant name.
impl Serialize for EngineKind {
    fn to_json_value(&self) -> JsonValue {
        let tag = match self {
            EngineKind::Memory => "Memory",
            EngineKind::BdbLike => "BdbLike",
            EngineKind::ReadOnly => "ReadOnly",
        };
        JsonValue::Str(tag.into())
    }
}

impl Deserialize for EngineKind {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        match value.as_str() {
            Some("Memory") => Ok(EngineKind::Memory),
            Some("BdbLike") => Ok(EngineKind::BdbLike),
            Some("ReadOnly") => Ok(EngineKind::ReadOnly),
            _ => Err(DeError::expected("engine kind", value)),
        }
    }
}

impl Serialize for StoreDef {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("name", self.name.to_json_value()),
            ("replication", self.replication.to_json_value()),
            ("required_reads", self.required_reads.to_json_value()),
            ("required_writes", self.required_writes.to_json_value()),
            ("zones_required", self.zones_required.to_json_value()),
            ("engine", self.engine.to_json_value()),
        ])
    }
}

impl Deserialize for StoreDef {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(StoreDef {
            name: get_field(value, "name")?,
            replication: get_field(value, "replication")?,
            required_reads: get_field(value, "required_reads")?,
            required_writes: get_field(value, "required_writes")?,
            zones_required: get_field(value, "zones_required")?,
            engine: get_field(value, "engine")?,
        })
    }
}

impl StoreDef {
    /// A store with N=2, R=1, W=1 on the BDB-like engine — the shape of the
    /// paper's read-write clusters.
    pub fn read_write(name: impl Into<String>) -> Self {
        StoreDef {
            name: name.into(),
            replication: 2,
            required_reads: 1,
            required_writes: 1,
            zones_required: 1,
            engine: EngineKind::BdbLike,
        }
    }

    /// A read-only store (N=2, R=1) fed by the offline pipeline.
    pub fn read_only(name: impl Into<String>) -> Self {
        StoreDef {
            name: name.into(),
            replication: 2,
            required_reads: 1,
            required_writes: 1,
            zones_required: 1,
            engine: EngineKind::ReadOnly,
        }
    }

    /// Builder: sets N/R/W.
    #[must_use]
    pub fn with_quorum(mut self, n: usize, r: usize, w: usize) -> Self {
        self.replication = n;
        self.required_reads = r;
        self.required_writes = w;
        self
    }

    /// Builder: sets the zone-count requirement.
    #[must_use]
    pub fn with_zones(mut self, zones: usize) -> Self {
        self.zones_required = zones;
        self
    }

    /// Builder: sets the engine.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Validates the quorum arithmetic (R ≤ N, W ≤ N, both ≥ 1).
    pub fn validate(&self) -> Result<(), String> {
        if self.replication == 0 {
            return Err("replication factor must be >= 1".into());
        }
        if self.required_reads == 0 || self.required_reads > self.replication {
            return Err(format!(
                "required_reads {} out of range 1..={}",
                self.required_reads, self.replication
            ));
        }
        if self.required_writes == 0 || self.required_writes > self.replication {
            return Err(format!(
                "required_writes {} out of range 1..={}",
                self.required_writes, self.replication
            ));
        }
        if self.zones_required == 0 {
            return Err("zones_required must be >= 1".into());
        }
        Ok(())
    }

    /// True when R + W > N, i.e. read and write quorums always intersect
    /// and reads see the latest committed write in the absence of failures.
    pub fn is_strictly_consistent(&self) -> bool {
        self.required_reads + self.required_writes > self.replication
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(StoreDef::read_write("s").validate().is_ok());
        assert!(StoreDef::read_only("s").validate().is_ok());
    }

    #[test]
    fn invalid_quorums_rejected() {
        assert!(StoreDef::read_write("s").with_quorum(0, 1, 1).validate().is_err());
        assert!(StoreDef::read_write("s").with_quorum(2, 3, 1).validate().is_err());
        assert!(StoreDef::read_write("s").with_quorum(2, 1, 3).validate().is_err());
        assert!(StoreDef::read_write("s").with_quorum(2, 0, 1).validate().is_err());
        assert!(StoreDef::read_write("s").with_zones(0).validate().is_err());
    }

    #[test]
    fn consistency_predicate() {
        assert!(StoreDef::read_write("s").with_quorum(3, 2, 2).is_strictly_consistent());
        assert!(!StoreDef::read_write("s").with_quorum(2, 1, 1).is_strictly_consistent());
    }
}
