//! On-disk format of read-only partition files.
//!
//! * **Data file**: concatenated records, each `[varint value_len][value]`.
//! * **Index file**: sorted fixed-width entries, each
//!   `[16-byte MD5(key)][8-byte LE data offset]` — "a compact list of
//!   sorted MD5 of key and offset to data into the data file".
//!
//! Fixed-width index entries are what make binary search trivial: entry
//! `i` lives at byte `24 * i`.

use bytes::Bytes;
use li_commons::md5::Digest;
use li_commons::varint;

/// Bytes per index entry: 16-byte digest + 8-byte offset.
pub const INDEX_ENTRY_LEN: usize = 24;

/// Serializes `(digest, value)` pairs into `(index, data)` file contents.
/// Input **must already be sorted by digest**; duplicates must have been
/// resolved by the builder.
pub fn write_partition(entries: &[(Digest, Bytes)]) -> (Vec<u8>, Vec<u8>) {
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "entries must be sorted by digest and unique"
    );
    let data_len: usize = entries.iter().map(|(_, v)| v.len() + 4).sum();
    let mut data = Vec::with_capacity(data_len);
    let mut index = Vec::with_capacity(entries.len() * INDEX_ENTRY_LEN);
    for (digest, value) in entries {
        let offset = data.len() as u64;
        varint::write_u64(&mut data, value.len() as u64);
        data.extend_from_slice(value);
        index.extend_from_slice(digest);
        index.extend_from_slice(&offset.to_le_bytes());
    }
    (index, data)
}

/// Number of entries in an index file.
pub fn entry_count(index: &[u8]) -> usize {
    index.len() / INDEX_ENTRY_LEN
}

/// Binary-searches `index` for `digest`; on a hit, reads the value out of
/// `data`.
pub fn search(index: &[u8], data: &[u8], digest: &Digest) -> Option<Bytes> {
    let n = entry_count(index);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let entry = &index[mid * INDEX_ENTRY_LEN..(mid + 1) * INDEX_ENTRY_LEN];
        match entry[..16].cmp(&digest[..]) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => {
                let offset =
                    u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes")) as usize;
                let mut cursor = &data[offset..];
                let len = varint::read_u64(&mut cursor).ok()? as usize;
                if cursor.len() < len {
                    return None;
                }
                return Some(Bytes::copy_from_slice(&cursor[..len]));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::md5::md5;

    fn build(pairs: &[(&str, &str)]) -> (Vec<u8>, Vec<u8>) {
        let mut entries: Vec<(Digest, Bytes)> = pairs
            .iter()
            .map(|(k, v)| (md5(k.as_bytes()), Bytes::copy_from_slice(v.as_bytes())))
            .collect();
        entries.sort_by_key(|e| e.0);
        write_partition(&entries)
    }

    #[test]
    fn search_finds_every_key() {
        let pairs: Vec<(String, String)> = (0..500)
            .map(|i| (format!("member:{i}"), format!("profile-{i}")))
            .collect();
        let refs: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let (index, data) = build(&refs);
        assert_eq!(entry_count(&index), 500);
        for (k, v) in &pairs {
            let hit = search(&index, &data, &md5(k.as_bytes())).unwrap();
            assert_eq!(hit.as_ref(), v.as_bytes());
        }
    }

    #[test]
    fn search_misses_absent_keys() {
        let (index, data) = build(&[("a", "1"), ("b", "2")]);
        assert!(search(&index, &data, &md5(b"zzz")).is_none());
    }

    #[test]
    fn empty_partition() {
        let (index, data) = write_partition(&[]);
        assert!(index.is_empty());
        assert!(data.is_empty());
        assert!(search(&index, &data, &md5(b"any")).is_none());
    }

    #[test]
    fn empty_values_supported() {
        let (index, data) = build(&[("k", "")]);
        assert_eq!(search(&index, &data, &md5(b"k")).unwrap().len(), 0);
    }

    #[test]
    fn large_values_round_trip() {
        let big = "x".repeat(100_000);
        let (index, data) = build(&[("big", &big), ("small", "y")]);
        assert_eq!(
            search(&index, &data, &md5(b"big")).unwrap().len(),
            100_000
        );
        assert_eq!(search(&index, &data, &md5(b"small")).unwrap().as_ref(), b"y");
    }
}
