//! The custom read-only storage engine and its offline data cycle.
//!
//! Paper §II.B and Figure II.3: "The custom read-only storage engine was
//! built for applications that require running various multi-stage complex
//! algorithms, using offline systems like Hadoop to generate their final
//! results. By offloading the index construction to the offline system we
//! do not hurt the performance of the live indices."
//!
//! The three phases:
//!
//! * **Build** ([`builder`]) — partition and sort the job output into
//!   per-destination-node index + data files. "An index file is a compact
//!   list of sorted MD5 of key and offset to data into the data file."
//! * **Pull** ([`store::ReadOnlyStore::pull`]) — each node fetches its
//!   files into a new versioned directory, throttled, data files before
//!   index files ("pulling the index files after all the data files to
//!   achieve cache-locality post-swap").
//! * **Swap** ([`store::ReadOnlyStore::swap`]) — an atomic switch to the
//!   new version, with instantaneous [`store::ReadOnlyStore::rollback`]
//!   because complete older versions are retained on disk.
//!
//! Lookups binary-search the sorted MD5 index, mirroring the paper's
//! "a search on the Voldemort side is done using binary search".

pub mod builder;
pub mod format;
pub mod store;

pub use builder::{BuildOutput, ReadOnlyBuilder};
pub use store::{ReadOnlyEngine, ReadOnlyStore, StoreEvent};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory removed on drop — the stand-in for HDFS and
/// node-local disks in tests, examples, and benches.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(tag: &str) -> std::io::Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "li-voldemort-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path)?;
        Ok(ScratchDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
