//! Pull + swap phases and the serving path of the read-only engine.

use bytes::Bytes;
use li_commons::clock::{VectorClock, Versioned};
use li_commons::md5::md5;
use li_commons::ring::{HashRing, NodeId, PartitionId};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use super::format;
use crate::engine::StorageEngine;
use crate::error::VoldemortError;

/// One fully-loaded store version: every partition's index and data files
/// held as immutable byte buffers — the analog of the paper's memory-mapped
/// files ("memory mapping the files delegates the caching to the operating
/// system's page-cache"; an in-process `Bytes` buffer has the same
/// zero-parse, share-on-read behaviour).
#[derive(Debug)]
struct LoadedVersion {
    version: u64,
    partitions: HashMap<u32, (Bytes, Bytes)>,
}

/// A data-cycle event on a read-only store — the "update stream to which
/// consumers can listen" named in the paper's future work (§II.C).
/// Downstream caches and precomputation jobs subscribe so they can react
/// the moment a new dataset version starts serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreEvent {
    /// A new version was swapped in.
    Swapped {
        /// The version now serving.
        version: u64,
    },
    /// The store rolled back to an earlier version.
    RolledBack {
        /// The version now serving.
        version: u64,
    },
}

/// A node's read-only store: versioned directories on disk, one loaded
/// (swapped-in) version serving traffic, and a history for rollback.
#[derive(Debug)]
pub struct ReadOnlyStore {
    node: NodeId,
    ring: HashRing,
    replication: usize,
    dir: PathBuf,
    current: RwLock<Option<Arc<LoadedVersion>>>,
    history: Mutex<Vec<Arc<LoadedVersion>>>,
    pull_log: Mutex<Vec<PathBuf>>,
    listeners: Mutex<Vec<Sender<StoreEvent>>>,
}

impl ReadOnlyStore {
    /// Opens (or creates) the store directory for `node`.
    pub fn open(
        dir: impl Into<PathBuf>,
        node: NodeId,
        ring: HashRing,
        replication: usize,
    ) -> Result<Self, VoldemortError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ReadOnlyStore {
            node,
            ring,
            replication,
            dir,
            current: RwLock::new(None),
            history: Mutex::new(Vec::new()),
            pull_log: Mutex::new(Vec::new()),
            listeners: Mutex::new(Vec::new()),
        })
    }

    /// The node this store serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Subscribes to the store's update stream (swap/rollback events).
    pub fn subscribe(&self) -> Receiver<StoreEvent> {
        let (tx, rx) = unbounded();
        self.listeners.lock().push(tx);
        rx
    }

    fn emit(&self, event: StoreEvent) {
        self.listeners
            .lock()
            .retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Pull phase: fetches this node's build output into a new versioned
    /// directory. Data files are copied before index files (the paper's
    /// cache-locality optimization) and the copy rate can be throttled to
    /// protect live serving ("throttling the pulls").
    pub fn pull(
        &self,
        build_node_dir: &Path,
        version: u64,
        throttle_bytes_per_sec: Option<u64>,
    ) -> Result<(), VoldemortError> {
        let version_dir = self.dir.join(format!("version-{version}"));
        fs::create_dir_all(&version_dir)?;

        let mut data_files = Vec::new();
        let mut index_files = Vec::new();
        if build_node_dir.is_dir() {
            for entry in fs::read_dir(build_node_dir)? {
                let path = entry?.path();
                match path.extension().and_then(|e| e.to_str()) {
                    Some("data") => data_files.push(path),
                    Some("index") => index_files.push(path),
                    _ => {}
                }
            }
        }
        data_files.sort();
        index_files.sort();

        for src in data_files.iter().chain(index_files.iter()) {
            let name = src.file_name().expect("file has name");
            let bytes = fs::read(src)?;
            if let Some(rate) = throttle_bytes_per_sec {
                if rate > 0 {
                    let secs = bytes.len() as f64 / rate as f64;
                    std::thread::sleep(Duration::from_secs_f64(secs.min(0.25)));
                }
            }
            fs::write(version_dir.join(name), &bytes)?;
            self.pull_log.lock().push(src.clone());
        }
        Ok(())
    }

    /// Swap phase: loads `version` from disk and atomically makes it the
    /// serving version. The previously-current version goes onto the
    /// rollback history.
    pub fn swap(&self, version: u64) -> Result<(), VoldemortError> {
        let version_dir = self.dir.join(format!("version-{version}"));
        if !version_dir.is_dir() {
            return Err(VoldemortError::ReadOnly(format!(
                "version {version} not pulled"
            )));
        }
        let mut partitions = HashMap::new();
        for entry in fs::read_dir(&version_dir)? {
            let path = entry?.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(partition) = stem.parse::<u32>() else {
                continue;
            };
            if path.extension().is_some_and(|e| e == "index") {
                let index = Bytes::from(fs::read(&path)?);
                let data = Bytes::from(fs::read(path.with_extension("data"))?);
                partitions.insert(partition, (index, data));
            }
        }
        let loaded = Arc::new(LoadedVersion {
            version,
            partitions,
        });
        let old = self.current.write().replace(loaded);
        if let Some(old) = old {
            self.history.lock().push(old);
        }
        self.emit(StoreEvent::Swapped { version });
        Ok(())
    }

    /// Instantaneous rollback to the previously-swapped version. Possible
    /// because "storing multiple versions of the complete dataset allows
    /// the developers to do instantaneous rollbacks in case of data
    /// problems."
    pub fn rollback(&self) -> Result<u64, VoldemortError> {
        let Some(previous) = self.history.lock().pop() else {
            return Err(VoldemortError::ReadOnly("no version to roll back to".into()));
        };
        let version = previous.version;
        *self.current.write() = Some(previous);
        self.emit(StoreEvent::RolledBack { version });
        Ok(version)
    }

    /// The currently-serving version, if any.
    pub fn current_version(&self) -> Option<u64> {
        self.current.read().as_ref().map(|v| v.version)
    }

    /// The replica partition (served by this node) that should hold `key`,
    /// if this node is in the key's preference list.
    pub fn locate(&self, key: &[u8]) -> Option<PartitionId> {
        let master = self.ring.master_partition(key);
        let replicas = self
            .ring
            .replica_partitions(master, self.replication)
            .ok()?;
        replicas
            .into_iter()
            .find(|&p| self.ring.owner_of(p) == self.node)
    }

    /// Point lookup: binary search in the serving version.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let partition = self.locate(key)?;
        let current = self.current.read();
        let loaded = current.as_ref()?;
        let (index, data) = loaded.partitions.get(&partition.0)?;
        format::search(index, data, &md5(key))
    }

    /// Order in which source files were pulled (tests assert
    /// data-before-index).
    pub fn pull_order(&self) -> Vec<PathBuf> {
        self.pull_log.lock().clone()
    }

    /// Total indexed entries in the serving version (all partitions).
    pub fn serving_entry_count(&self) -> usize {
        self.current
            .read()
            .as_ref()
            .map(|v| {
                v.partitions
                    .values()
                    .map(|(index, _)| format::entry_count(index))
                    .sum()
            })
            .unwrap_or(0)
    }
}

/// Adapter exposing a [`ReadOnlyStore`] through the common
/// [`StorageEngine`] interface (reads only).
#[derive(Debug)]
pub struct ReadOnlyEngine {
    store: Arc<ReadOnlyStore>,
}

impl ReadOnlyEngine {
    /// Wraps a store.
    pub fn new(store: Arc<ReadOnlyStore>) -> Self {
        ReadOnlyEngine { store }
    }

    /// The wrapped store (for admin access: pull/swap/rollback).
    pub fn store(&self) -> &Arc<ReadOnlyStore> {
        &self.store
    }
}

impl StorageEngine for ReadOnlyEngine {
    fn get(&self, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        Ok(self
            .store
            .get(key)
            .map(|value| vec![Versioned::new(VectorClock::new(), value)])
            .unwrap_or_default())
    }

    fn put(&self, _key: &[u8], _value: Versioned<Bytes>) -> Result<(), VoldemortError> {
        Err(VoldemortError::UnsupportedOperation(
            "put on read-only store (use the build/pull/swap pipeline)",
        ))
    }

    fn delete(&self, _key: &[u8], _clock: &VectorClock) -> Result<bool, VoldemortError> {
        Err(VoldemortError::UnsupportedOperation("delete on read-only store"))
    }

    fn entries(&self) -> Vec<(Bytes, Vec<Versioned<Bytes>>)> {
        // Bulk export is a pipeline concern for read-only stores; the
        // admin service re-pulls from the build output instead.
        Vec::new()
    }

    fn key_count(&self) -> usize {
        self.store.serving_entry_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readonly::{ReadOnlyBuilder, ScratchDir};

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn records(n: usize, tag: &str) -> Vec<(Bytes, Bytes)> {
        (0..n)
            .map(|i| {
                (
                    Bytes::from(format!("member:{i}")),
                    Bytes::from(format!("{tag}:{i}")),
                )
            })
            .collect()
    }

    struct Pipeline {
        _hdfs: ScratchDir,
        _local: ScratchDir,
        stores: Vec<Arc<ReadOnlyStore>>,
        ring: HashRing,
        builder: ReadOnlyBuilder,
        hdfs_path: PathBuf,
    }

    fn pipeline(node_count: u16, replication: usize) -> Pipeline {
        let hdfs = ScratchDir::new("hdfs").unwrap();
        let local = ScratchDir::new("local").unwrap();
        let ring = HashRing::balanced(16, &nodes(node_count)).unwrap();
        let builder = ReadOnlyBuilder::new(ring.clone(), replication, 2);
        let stores = nodes(node_count)
            .into_iter()
            .map(|node| {
                Arc::new(
                    ReadOnlyStore::open(
                        local.path().join(format!("node-{}", node.0)),
                        node,
                        ring.clone(),
                        replication,
                    )
                    .unwrap(),
                )
            })
            .collect();
        let hdfs_path = hdfs.path().to_path_buf();
        Pipeline {
            _hdfs: hdfs,
            _local: local,
            stores,
            ring,
            builder,
            hdfs_path,
        }
    }

    fn run_cycle(p: &Pipeline, data: Vec<(Bytes, Bytes)>, version: u64) {
        let out = p.builder.build(data, version, &p.hdfs_path).unwrap();
        for store in &p.stores {
            store.pull(&out.node_dir(store.node), version, None).unwrap();
            store.swap(version).unwrap();
        }
    }

    #[test]
    fn full_cycle_serves_all_keys() {
        let p = pipeline(3, 2);
        run_cycle(&p, records(300, "v1"), 1);
        for i in 0..300 {
            let key = format!("member:{i}");
            // Every node in the preference list can answer.
            let prefs = p.ring.preference_list(key.as_bytes(), 2).unwrap();
            for node in prefs {
                let store = &p.stores[node.0 as usize];
                let hit = store.get(key.as_bytes()).unwrap();
                assert_eq!(hit.as_ref(), format!("v1:{i}").as_bytes());
            }
        }
    }

    #[test]
    fn non_replica_node_does_not_serve_key() {
        let p = pipeline(3, 1);
        run_cycle(&p, records(50, "v1"), 1);
        for i in 0..50 {
            let key = format!("member:{i}");
            let owner = p.ring.preference_list(key.as_bytes(), 1).unwrap()[0];
            for store in &p.stores {
                let hit = store.get(key.as_bytes());
                if store.node == owner {
                    assert!(hit.is_some());
                } else {
                    assert!(hit.is_none(), "node {} should miss", store.node);
                }
            }
        }
    }

    #[test]
    fn swap_replaces_and_rollback_restores() {
        let p = pipeline(1, 1);
        run_cycle(&p, records(100, "old"), 1);
        assert_eq!(p.stores[0].current_version(), Some(1));
        run_cycle(&p, records(100, "new"), 2);
        assert_eq!(p.stores[0].current_version(), Some(2));
        assert_eq!(
            p.stores[0].get(b"member:7").unwrap().as_ref(),
            b"new:7"
        );
        // Data problem discovered: instantaneous rollback.
        assert_eq!(p.stores[0].rollback().unwrap(), 1);
        assert_eq!(
            p.stores[0].get(b"member:7").unwrap().as_ref(),
            b"old:7"
        );
        // Nothing left to roll back to.
        assert!(p.stores[0].rollback().is_err());
    }

    #[test]
    fn pull_copies_data_files_before_index_files() {
        let p = pipeline(1, 1);
        run_cycle(&p, records(60, "v"), 1);
        let order = p.stores[0].pull_order();
        assert!(!order.is_empty());
        let first_index = order
            .iter()
            .position(|f| f.extension().is_some_and(|e| e == "index"))
            .expect("some index file");
        let last_data = order
            .iter()
            .rposition(|f| f.extension().is_some_and(|e| e == "data"))
            .expect("some data file");
        assert!(
            last_data < first_index,
            "all data files must precede index files: {order:?}"
        );
    }

    #[test]
    fn swap_unpulled_version_fails() {
        let p = pipeline(1, 1);
        assert!(p.stores[0].swap(9).is_err());
    }

    #[test]
    fn get_before_any_swap_is_none() {
        let p = pipeline(1, 1);
        assert!(p.stores[0].get(b"member:1").is_none());
        assert_eq!(p.stores[0].current_version(), None);
    }

    #[test]
    fn update_stream_emits_swap_and_rollback_events() {
        use crate::readonly::StoreEvent;
        let p = pipeline(1, 1);
        let rx = p.stores[0].subscribe();
        run_cycle(&p, records(10, "v1"), 1);
        assert_eq!(rx.try_recv().unwrap(), StoreEvent::Swapped { version: 1 });
        run_cycle(&p, records(10, "v2"), 2);
        assert_eq!(rx.try_recv().unwrap(), StoreEvent::Swapped { version: 2 });
        p.stores[0].rollback().unwrap();
        assert_eq!(rx.try_recv().unwrap(), StoreEvent::RolledBack { version: 1 });
        assert!(rx.try_recv().is_err(), "no spurious events");
        // Dropped subscribers are pruned without disturbing others.
        drop(rx);
        let rx2 = p.stores[0].subscribe();
        run_cycle(&p, records(10, "v3"), 3);
        assert_eq!(rx2.try_recv().unwrap(), StoreEvent::Swapped { version: 3 });
    }

    #[test]
    fn engine_adapter_reads_and_rejects_writes() {
        let p = pipeline(1, 1);
        run_cycle(&p, records(20, "v"), 1);
        let engine = ReadOnlyEngine::new(p.stores[0].clone());
        let got = engine.get(b"member:3").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"v:3");
        assert!(got[0].clock.is_empty());
        assert!(matches!(
            engine.put(b"k", Versioned::initial(Bytes::new())),
            Err(VoldemortError::UnsupportedOperation(_))
        ));
        assert!(matches!(
            engine.delete(b"k", &VectorClock::new()),
            Err(VoldemortError::UnsupportedOperation(_))
        ));
        assert_eq!(engine.key_count(), 20);
    }
}
