//! Build phase: the Hadoop-job analog.
//!
//! "We take the output of complex algorithms and generate partitioned sets
//! of data and index files in Hadoop. These files are partitioned by
//! destination nodes and stored in HDFS. ... To generate these indices, we
//! leverage Hadoop's ability to sort its values in the reducers"
//! (Figure II.3a). Here the "cluster" is a pool of reducer threads and
//! "HDFS" is a build output directory; the artifact layout —
//! `node-<id>/<partition>.index` + `.data`, MD5-sorted — is the part the
//! serving path depends on, and is identical in spirit.

use bytes::Bytes;
use li_commons::md5::{md5, Digest};
use li_commons::ring::{HashRing, NodeId, PartitionId};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use super::format;
use crate::error::VoldemortError;

/// One reducer work item: a partition and its digest-sorted entries.
type PartitionWork = (PartitionId, Vec<(Digest, Bytes)>);

/// Result manifest of a build: where the files are and what they contain.
#[derive(Debug, Clone)]
pub struct BuildOutput {
    /// Root of the build output ("HDFS" directory).
    pub dir: PathBuf,
    /// Version number encoded in this build.
    pub version: u64,
    /// Per node: the partitions written for it.
    pub node_partitions: BTreeMap<NodeId, Vec<PartitionId>>,
    /// Total records written (after last-wins dedup), summed over replicas.
    pub replica_records: usize,
}

impl BuildOutput {
    /// Directory holding one node's files.
    pub fn node_dir(&self, node: NodeId) -> PathBuf {
        self.dir.join(format!("node-{}", node.0))
    }
}

/// The offline builder.
#[derive(Debug, Clone)]
pub struct ReadOnlyBuilder {
    ring: HashRing,
    replication: usize,
    reducers: usize,
}

impl ReadOnlyBuilder {
    /// Creates a builder targeting `ring` with `replication` copies of each
    /// record, using `reducers` parallel sort workers.
    pub fn new(ring: HashRing, replication: usize, reducers: usize) -> Self {
        ReadOnlyBuilder {
            ring,
            replication,
            reducers: reducers.max(1),
        }
    }

    /// Runs the build: partitions `records`, sorts each partition by MD5
    /// in reducer threads, and writes per-node index/data files under
    /// `out_dir/version-<version>/node-<id>/`.
    ///
    /// Later duplicates of a key win, matching "most of the scores change
    /// between runs" semantics where the job output is the truth.
    pub fn build(
        &self,
        records: impl IntoIterator<Item = (Bytes, Bytes)>,
        version: u64,
        out_dir: &Path,
    ) -> Result<BuildOutput, VoldemortError> {
        // Map phase: route each record to the replica partitions (and thus
        // destination nodes) that must store it.
        // (partition -> key digest -> (sequence, value)) with last-wins.
        let mut partitions: BTreeMap<PartitionId, BTreeMap<Digest, (usize, Bytes)>> =
            BTreeMap::new();
        for (seq, (key, value)) in records.into_iter().enumerate() {
            let digest = md5(&key);
            let master = self.ring.master_partition(&key);
            let replicas = self
                .ring
                .replica_partitions(master, self.replication)
                .map_err(|e| VoldemortError::ReadOnly(e.to_string()))?;
            for partition in replicas {
                let slot = partitions.entry(partition).or_default();
                match slot.get(&digest) {
                    Some(&(existing_seq, _)) if existing_seq > seq => {}
                    _ => {
                        slot.insert(digest, (seq, value.clone()));
                    }
                }
            }
        }

        // Reduce phase: sort (BTreeMap is already digest-sorted) and write
        // files, parallelized across reducer threads by partition.
        let version_dir = out_dir.join(format!("version-{version}"));
        fs::create_dir_all(&version_dir)?;

        let work: Vec<PartitionWork> = partitions
            .into_iter()
            .map(|(p, slot)| {
                (
                    p,
                    slot.into_iter().map(|(d, (_, v))| (d, v)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let replica_records: usize = work.iter().map(|(_, entries)| entries.len()).sum();

        let chunks: Vec<Vec<PartitionWork>> = {
            let mut chunks: Vec<Vec<_>> = (0..self.reducers).map(|_| Vec::new()).collect();
            for (i, item) in work.into_iter().enumerate() {
                chunks[i % self.reducers].push(item);
            }
            chunks
        };

        let ring = &self.ring;
        let dir = &version_dir;
        std::thread::scope(|scope| -> Result<(), VoldemortError> {
            let mut handles = Vec::new();
            for chunk in &chunks {
                handles.push(scope.spawn(move || -> Result<(), VoldemortError> {
                    for (partition, entries) in chunk {
                        let (index, data) = format::write_partition(entries);
                        let owner = ring.owner_of(*partition);
                        let node_dir = dir.join(format!("node-{}", owner.0));
                        fs::create_dir_all(&node_dir)?;
                        fs::write(node_dir.join(format!("{}.data", partition.0)), &data)?;
                        fs::write(node_dir.join(format!("{}.index", partition.0)), &index)?;
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("reducer thread panicked")?;
            }
            Ok(())
        })?;

        // Manifest.
        let mut node_partitions: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();
        for chunk in &chunks {
            for (partition, _) in chunk {
                node_partitions
                    .entry(ring.owner_of(*partition))
                    .or_default()
                    .push(*partition);
            }
        }
        for parts in node_partitions.values_mut() {
            parts.sort();
        }
        Ok(BuildOutput {
            dir: version_dir,
            version,
            node_partitions,
            replica_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readonly::ScratchDir;

    fn records(n: usize) -> Vec<(Bytes, Bytes)> {
        (0..n)
            .map(|i| {
                (
                    Bytes::from(format!("member:{i}")),
                    Bytes::from(format!("recs:{i}")),
                )
            })
            .collect()
    }

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn build_writes_per_node_files() {
        let scratch = ScratchDir::new("build").unwrap();
        let ring = HashRing::balanced(8, &nodes(2)).unwrap();
        let builder = ReadOnlyBuilder::new(ring, 2, 3);
        let out = builder.build(records(200), 1, scratch.path()).unwrap();

        assert_eq!(out.version, 1);
        // Replication 2 over 2 nodes: both nodes store everything.
        assert_eq!(out.replica_records, 400);
        for node in nodes(2) {
            let dir = out.node_dir(node);
            assert!(dir.is_dir(), "{dir:?}");
            let files = std::fs::read_dir(&dir).unwrap().count();
            // Up to 8 partitions x 2 files each on this node.
            assert!(files > 0 && files.is_multiple_of(2), "{files} files");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let scratch = ScratchDir::new("dedup").unwrap();
        let ring = HashRing::balanced(4, &nodes(1)).unwrap();
        let builder = ReadOnlyBuilder::new(ring.clone(), 1, 1);
        let input = vec![
            (Bytes::from_static(b"k"), Bytes::from_static(b"old")),
            (Bytes::from_static(b"k"), Bytes::from_static(b"new")),
        ];
        let out = builder.build(input, 1, scratch.path()).unwrap();
        assert_eq!(out.replica_records, 1);
        // Read back directly through the format layer.
        let partition = ring.master_partition(b"k");
        let node_dir = out.node_dir(NodeId(0));
        let index = std::fs::read(node_dir.join(format!("{}.index", partition.0))).unwrap();
        let data = std::fs::read(node_dir.join(format!("{}.data", partition.0))).unwrap();
        let hit = format::search(&index, &data, &md5(b"k")).unwrap();
        assert_eq!(hit.as_ref(), b"new");
    }

    #[test]
    fn index_files_are_sorted_by_digest() {
        let scratch = ScratchDir::new("sorted").unwrap();
        let ring = HashRing::balanced(2, &nodes(1)).unwrap();
        let builder = ReadOnlyBuilder::new(ring, 1, 2);
        let out = builder.build(records(100), 1, scratch.path()).unwrap();
        let node_dir = out.node_dir(NodeId(0));
        for entry in std::fs::read_dir(&node_dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "index") {
                let bytes = std::fs::read(&path).unwrap();
                let entries: Vec<&[u8]> = bytes.chunks(format::INDEX_ENTRY_LEN).collect();
                for w in entries.windows(2) {
                    assert!(w[0][..16] < w[1][..16], "unsorted index {path:?}");
                }
            }
        }
    }

    #[test]
    fn versioned_directories_coexist() {
        let scratch = ScratchDir::new("versions").unwrap();
        let ring = HashRing::balanced(4, &nodes(1)).unwrap();
        let builder = ReadOnlyBuilder::new(ring, 1, 1);
        builder.build(records(10), 1, scratch.path()).unwrap();
        builder.build(records(10), 2, scratch.path()).unwrap();
        assert!(scratch.path().join("version-1").is_dir());
        assert!(scratch.path().join("version-2").is_dir());
    }
}
