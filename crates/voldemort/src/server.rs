//! The storage node: per-store engines, hint storage, and the server-side
//! operations the coordinator dispatches.

use bytes::Bytes;
use li_commons::clock::{VectorClock, Versioned};
use li_commons::metrics::{Counter, Gauge, MetricsRegistry};
use li_commons::ring::NodeId;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use crate::engine::StorageEngine;
use crate::error::VoldemortError;

/// Per-node observability: request counts, bytes moved, hint queue depth,
/// all under the `voldemort.node<id>.` prefix of the cluster registry.
#[derive(Debug, Clone)]
struct NodeMetrics {
    gets: Counter,
    multigets: Counter,
    puts: Counter,
    deletes: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    hints_pending: Gauge,
}

impl NodeMetrics {
    fn new(registry: &Arc<MetricsRegistry>, id: NodeId) -> Self {
        let scope = registry.scope(format!("voldemort.node{}", id.0));
        NodeMetrics {
            gets: scope.counter("get.count"),
            multigets: scope.counter("multiget.count"),
            puts: scope.counter("put.count"),
            deletes: scope.counter("delete.count"),
            bytes_in: scope.counter("bytes_in"),
            bytes_out: scope.counter("bytes_out"),
            hints_pending: scope.gauge("hints.pending"),
        }
    }
}

/// A write stored on a fallback node on behalf of an unreachable replica —
/// the unit of hinted handoff. "Read repair detects inconsistencies during
/// gets while hinted handoff is triggered during puts" (§II.B).
#[derive(Debug, Clone)]
pub struct Hint {
    /// Store the write belongs to.
    pub store: String,
    /// The replica that should have received it.
    pub target: NodeId,
    /// Key written.
    pub key: Bytes,
    /// The versioned value.
    pub value: Versioned<Bytes>,
}

/// One Voldemort storage node.
pub struct VoldemortNode {
    id: NodeId,
    engines: RwLock<HashMap<String, Arc<dyn StorageEngine>>>,
    hints: Mutex<Vec<Hint>>,
    metrics: NodeMetrics,
}

impl std::fmt::Debug for VoldemortNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VoldemortNode")
            .field("id", &self.id)
            .field("stores", &self.engines.read().keys().collect::<Vec<_>>())
            .field("pending_hints", &self.hints.lock().len())
            .finish()
    }
}

impl VoldemortNode {
    /// Creates a standalone node with no stores, reporting into a private
    /// metrics registry. Cluster-managed nodes use
    /// [`VoldemortNode::with_metrics`] so the whole cluster shares one.
    pub fn new(id: NodeId) -> Self {
        Self::with_metrics(id, &MetricsRegistry::new())
    }

    /// Creates a node reporting under `voldemort.node<id>.` in `registry`.
    pub fn with_metrics(id: NodeId, registry: &Arc<MetricsRegistry>) -> Self {
        VoldemortNode {
            id,
            engines: RwLock::new(HashMap::new()),
            hints: Mutex::new(Vec::new()),
            metrics: NodeMetrics::new(registry, id),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Attaches an engine for `store` (admin: add store without downtime).
    pub fn add_store(
        &self,
        store: impl Into<String>,
        engine: Arc<dyn StorageEngine>,
    ) -> Result<(), VoldemortError> {
        let store = store.into();
        let mut engines = self.engines.write();
        if engines.contains_key(&store) {
            return Err(VoldemortError::DuplicateStore(store));
        }
        engines.insert(store, engine);
        Ok(())
    }

    /// Detaches a store (admin: delete store without downtime).
    pub fn remove_store(&self, store: &str) -> Result<(), VoldemortError> {
        self.engines
            .write()
            .remove(store)
            .map(|_| ())
            .ok_or_else(|| VoldemortError::UnknownStore(store.into()))
    }

    /// The engine backing `store`.
    pub fn engine(&self, store: &str) -> Result<Arc<dyn StorageEngine>, VoldemortError> {
        self.engines
            .read()
            .get(store)
            .cloned()
            .ok_or_else(|| VoldemortError::UnknownStore(store.into()))
    }

    /// Server-side get.
    pub fn get(&self, store: &str, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        self.metrics.gets.inc();
        let versions = self.engine(store)?.get(key)?;
        let bytes: usize = versions.iter().map(|v| v.value.len()).sum();
        self.metrics.bytes_out.add(bytes as u64);
        Ok(versions)
    }

    /// Server-side multi-get: the batched form behind the client's
    /// `get_all`, answering many keys in one request. Results are
    /// positionally aligned with `keys` (absent keys yield empty lists).
    pub fn get_many(
        &self,
        store: &str,
        keys: &[Bytes],
    ) -> Result<Vec<Vec<Versioned<Bytes>>>, VoldemortError> {
        self.metrics.multigets.inc();
        let engine = self.engine(store)?;
        let mut out = Vec::with_capacity(keys.len());
        let mut bytes = 0usize;
        for key in keys {
            let versions = engine.get(key)?;
            bytes += versions.iter().map(|v| v.value.len()).sum::<usize>();
            out.push(versions);
        }
        self.metrics.bytes_out.add(bytes as u64);
        Ok(out)
    }

    /// Server-side put (vector-clock checked).
    pub fn put(
        &self,
        store: &str,
        key: &[u8],
        value: Versioned<Bytes>,
    ) -> Result<(), VoldemortError> {
        self.metrics.puts.inc();
        self.metrics
            .bytes_in
            .add((key.len() + value.value.len()) as u64);
        self.engine(store)?.put(key, value)
    }

    /// Server-side force put (read repair / handoff replay / rebalance).
    pub fn force_put(
        &self,
        store: &str,
        key: &[u8],
        value: Versioned<Bytes>,
    ) -> Result<(), VoldemortError> {
        self.engine(store)?.force_put(key, value)
    }

    /// Server-side delete.
    pub fn delete(
        &self,
        store: &str,
        key: &[u8],
        clock: &VectorClock,
    ) -> Result<bool, VoldemortError> {
        self.metrics.deletes.inc();
        self.engine(store)?.delete(key, clock)
    }

    /// Stores a hint destined for another replica.
    pub fn store_hint(&self, hint: Hint) {
        self.hints.lock().push(hint);
        self.metrics.hints_pending.add(1);
    }

    /// Drains the hints whose target is `target` (handoff replay).
    pub fn take_hints_for(&self, target: NodeId) -> Vec<Hint> {
        let mut hints = self.hints.lock();
        let (matched, rest): (Vec<Hint>, Vec<Hint>) =
            hints.drain(..).partition(|h| h.target == target);
        *hints = rest;
        self.metrics.hints_pending.sub(matched.len() as i64);
        matched
    }

    /// Drains every parked hint regardless of target. Delivery-time
    /// routing (the current ring) decides where each one lands, so hints
    /// survive a partition moving out from under their original target.
    pub fn take_all_hints(&self) -> Vec<Hint> {
        let mut hints = self.hints.lock();
        let drained: Vec<Hint> = hints.drain(..).collect();
        self.metrics.hints_pending.sub(drained.len() as i64);
        drained
    }

    /// Number of hints currently parked on this node.
    pub fn hint_count(&self) -> usize {
        self.hints.lock().len()
    }

    /// Liveness probe (the async recovery thread's contact attempt).
    pub fn ping(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MemoryEngine;

    fn node_with_store() -> VoldemortNode {
        let node = VoldemortNode::new(NodeId(1));
        node.add_store("s", Arc::new(MemoryEngine::new())).unwrap();
        node
    }

    #[test]
    fn store_lifecycle() {
        let node = node_with_store();
        assert!(matches!(
            node.add_store("s", Arc::new(MemoryEngine::new())),
            Err(VoldemortError::DuplicateStore(_))
        ));
        node.remove_store("s").unwrap();
        assert!(matches!(
            node.get("s", b"k"),
            Err(VoldemortError::UnknownStore(_))
        ));
        assert!(matches!(
            node.remove_store("s"),
            Err(VoldemortError::UnknownStore(_))
        ));
    }

    #[test]
    fn ops_pass_through_to_engine() {
        let node = node_with_store();
        let clock = VectorClock::with(1, 1);
        node.put("s", b"k", Versioned::new(clock.clone(), Bytes::from_static(b"v")))
            .unwrap();
        assert_eq!(node.get("s", b"k").unwrap().len(), 1);
        assert!(node.delete("s", b"k", &clock).unwrap());
        assert!(node.get("s", b"k").unwrap().is_empty());
    }

    #[test]
    fn hints_partition_by_target() {
        let node = node_with_store();
        for target in [2u16, 3, 2] {
            node.store_hint(Hint {
                store: "s".into(),
                target: NodeId(target),
                key: Bytes::from_static(b"k"),
                value: Versioned::initial(Bytes::from_static(b"v")),
            });
        }
        assert_eq!(node.hint_count(), 3);
        let for_2 = node.take_hints_for(NodeId(2));
        assert_eq!(for_2.len(), 2);
        assert_eq!(node.hint_count(), 1);
        assert!(node.take_hints_for(NodeId(2)).is_empty());
        assert_eq!(node.take_hints_for(NodeId(3)).len(), 1);
        assert_eq!(node.hint_count(), 0);
    }
}
