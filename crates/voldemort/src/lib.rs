//! # li-voldemort — Project Voldemort reproduction
//!
//! Paper §II: "Project Voldemort is a highly available, low-latency
//! distributed data store ... best categorized as a distributed hash table
//! (DHT) ... heavily inspired by Amazon's Dynamo."
//!
//! The pluggable architecture of Figure II.1 maps onto this crate's
//! modules, each implementing the same code interface so modules can be
//! interchanged and mocked, exactly as the paper prescribes:
//!
//! * [`client`] — the client API of Figure II.2: vector-clocked `get`/`put`
//!   (with optional server-side **transforms** that save a round trip),
//!   `apply_update` optimistic-locking retry loops, quorum coordination
//!   (N/R/W), **read repair**, and **hinted handoff**.
//! * [`routing`] — O(1) consistent-hash routing over the full replicated
//!   topology, the zone-aware multi-datacenter variant, and a Chord-style
//!   O(log N) finger-table baseline used by the benchmarks to reproduce the
//!   paper's routing claim.
//! * [`engine`] — the pluggable `StorageEngine` trait with the in-memory
//!   engine and the BDB-JE-analog log-structured engine (read-write
//!   traffic).
//! * [`readonly`] — the custom read-only engine and its three-phase
//!   build → pull → swap data cycle from Hadoop (Figure II.3), including
//!   MD5-keyed sorted index files, binary search, versioned directories,
//!   instantaneous rollback, throttled pulls, and index-after-data fetch
//!   ordering.
//! * [`cluster`] / [`server`] — the node runtime: per-store engines, a
//!   success-ratio failure detector with async recovery probes, hint
//!   storage, and the admin service (store add/delete, rebalancing with
//!   request redirection).
//!
//! Everything runs over the deterministic [`li_commons::sim`] harness, so
//! quorum and failover behaviour is testable under injected crashes,
//! partitions, and message loss.
//!
//! ```
//! use li_voldemort::{StoreDef, VoldemortCluster};
//! use bytes::Bytes;
//!
//! // A 3-node cluster; one store with N=2 replicas, R=W=1.
//! let cluster = VoldemortCluster::new(32, 3)?;
//! cluster.add_store(StoreDef::read_write("profiles"))?;
//! let client = cluster.client("profiles")?;
//!
//! // Figure II.2's API: vector-clocked get/put with optimistic locking.
//! let clock = client.put_initial(b"member:42", Bytes::from_static(b"v1"))?;
//! client.put(b"member:42", &clock, Bytes::from_static(b"v2"))?;
//! let versions = client.get(b"member:42")?;
//! assert_eq!(versions[0].value.as_ref(), b"v2");
//! # Ok::<(), li_voldemort::VoldemortError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod migrate;
pub mod readonly;
pub mod routing;
pub mod server;
pub mod store;

pub use client::{
    FanOutMode, HedgeConfig, QuorumConfig, QuorumStats, ReadFanOut, RoutingMode, StoreClient,
    Transform, UpdateAction,
};
pub use cluster::VoldemortCluster;
pub use error::VoldemortError;
pub use migrate::PartitionMigration;
pub use store::{EngineKind, StoreDef};
