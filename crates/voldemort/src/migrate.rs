//! Online partition migration for Voldemort (ROADMAP item 4).
//!
//! [`PartitionMigration`] is the Voldemort half of the phased coordinator
//! in [`li_commons::migrate`]: it moves one logical partition from its
//! current owner (the *donor*) to a *target* node while the cluster keeps
//! serving reads and writes.
//!
//! ```text
//!   begin ──► Snapshot          bulk force_put of the partition's image
//!               │               (live traffic still routes to the donor;
//!               ▼                every acked write is journaled)
//!             DeltaCatchup      journal drained round by round
//!               │
//!               ▼
//!             DualWrite         acked writes mirror synchronously to the
//!               │               target; verify rounds drain the journal,
//!               │               repair source→target, and compare images
//!               ▼
//!             cutover           migration lock → final drain → router
//!                               lock → reassign → epoch bump
//! ```
//!
//! The key correctness idea: the *placement diff*. A cutover changes each
//! key's preference list from its `source_ring` form to its `target_ring`
//! form; the set of nodes in the target list but not the source list
//! ([`ActiveMigration::moved_targets`]) is exactly the set that must hold
//! the key's image before the flip. Snapshot, journal replay, dual-write,
//! and shadow verification all quantify over that diff, so even keys whose
//! replica walk shifts *indirectly* (the ring walk skips partitions of
//! already-chosen nodes) are copied and verified.
//!
//! Shadow verification is also self-healing in the safe direction: each
//! round force-puts the resolved *source* image onto the target (versioned
//! stores make that idempotent) before comparing, so source-ahead lag —
//! hint replays, read repair the journal never saw — converges instead of
//! blocking cutover. Only the unsafe direction counts as a mismatch: the
//! target serving versions the source cannot explain is corruption, and
//! the coordinator refuses the flip.

use bytes::Bytes;
use li_commons::clock::{resolve_siblings, VectorClock, Versioned};
use li_commons::migrate::{MigrationDriver, VerifyReport};
use li_commons::ring::{HashRing, NodeId, PartitionId};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::cluster::VoldemortCluster;
use crate::error::VoldemortError;
use crate::store::StoreDef;

/// Virtual node id the migration admin service occupies on the simulated
/// network: snapshot/verify traffic originates here, so crashing or
/// partitioning a node makes the corresponding migration phase fail the
/// same way a real admin RPC would.
pub const ADMIN_NODE: NodeId = NodeId(u16::MAX - 1);

/// An acked client write captured for delta replay. The client journals
/// it *after* the quorum acked (so the journal is exactly the set of
/// acked writes, including hint-acked ones); replay is `force_put` /
/// clock-checked delete, hence idempotent.
#[derive(Debug, Clone)]
pub(crate) enum JournaledWrite {
    /// An acked put: the committed versioned value.
    Put {
        store: String,
        key: Bytes,
        value: Versioned<Bytes>,
    },
    /// An acked delete at a version.
    Delete {
        store: String,
        key: Bytes,
        clock: VectorClock,
    },
}

/// Routing and capture state for one in-flight partition move. Lives in
/// the cluster behind `RwLock<Option<Arc<..>>>`; the client's ack hooks
/// take the read side, cutover takes the write side (so the final journal
/// drain cannot race an in-flight append).
///
/// Lock-ordering rule (vs the PR 7 commit points): the migration lock is
/// acquired *before* the router lock, everywhere. The ack-capture path
/// never needs the router at all — it routes against the `source_ring`
/// snapshot taken at begin, which is correct because partition membership
/// of keys is static during the move (only ownership flips, at cutover,
/// under both locks).
pub(crate) struct ActiveMigration {
    pub(crate) partition: PartitionId,
    pub(crate) donor: NodeId,
    pub(crate) to: NodeId,
    /// The ring as of `begin` — what routing serves during the move.
    pub(crate) source_ring: HashRing,
    /// The ring with the reassignment applied — what routing will serve
    /// after the flip.
    pub(crate) target_ring: HashRing,
    dual_write: AtomicBool,
    pub(crate) journal: Mutex<Vec<JournaledWrite>>,
}

impl ActiveMigration {
    pub(crate) fn new(
        partition: PartitionId,
        donor: NodeId,
        to: NodeId,
        source_ring: HashRing,
        target_ring: HashRing,
    ) -> Self {
        ActiveMigration {
            partition,
            donor,
            to,
            source_ring,
            target_ring,
            dual_write: AtomicBool::new(false),
            journal: Mutex::new(Vec::new()),
        }
    }

    /// Preference list a key routes to during the move.
    pub(crate) fn source_prefs(&self, key: &[u8], def: &StoreDef) -> Vec<NodeId> {
        self.source_ring
            .preference_list_zoned(key, def.replication, def.zones_required)
            .unwrap_or_default()
    }

    /// Nodes that gain this key at cutover: in the target-ring preference
    /// list but not the source-ring one. Empty for keys the flip does not
    /// affect — the common case, which keeps the ack hook cheap.
    pub(crate) fn moved_targets(&self, key: &[u8], def: &StoreDef) -> Vec<NodeId> {
        let src = self.source_prefs(key, def);
        let Ok(dst) = self
            .target_ring
            .preference_list_zoned(key, def.replication, def.zones_required)
        else {
            return Vec::new();
        };
        dst.into_iter().filter(|n| !src.contains(n)).collect()
    }

    /// Whether acked writes currently mirror synchronously to the gaining
    /// nodes.
    pub(crate) fn dual_write_active(&self) -> bool {
        self.dual_write.load(Ordering::Acquire)
    }

    pub(crate) fn enable_dual_write(&self) {
        self.dual_write.store(true, Ordering::Release);
    }
}

/// Resolved version-set equality: same (clock, value) multisets after
/// sibling resolution. Used by the shadow comparator (verify rounds and
/// the client's inline shadow reads).
pub(crate) fn image_equal(a: &[Versioned<Bytes>], b: &[Versioned<Bytes>]) -> bool {
    fn keyed(vs: &[Versioned<Bytes>]) -> Vec<(Vec<u8>, Bytes)> {
        let mut out: Vec<(Vec<u8>, Bytes)> = vs
            .iter()
            .map(|v| {
                let mut clock = Vec::new();
                v.clock.encode(&mut clock);
                (clock, v.value.clone())
            })
            .collect();
        out.sort();
        out
    }
    keyed(a) == keyed(b)
}

/// The Voldemort [`MigrationDriver`]: one partition move, step-driven.
/// Obtained from [`VoldemortCluster::begin_partition_migration`]; feed it
/// to a [`li_commons::migrate::MigrationCoordinator`] (or let
/// [`VoldemortCluster::migrate_partition`] run the whole thing).
pub struct PartitionMigration {
    cluster: Arc<VoldemortCluster>,
    state: Arc<ActiveMigration>,
}

impl std::fmt::Debug for PartitionMigration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionMigration")
            .field("partition", &self.state.partition)
            .field("donor", &self.state.donor)
            .field("to", &self.state.to)
            .field("dual_write", &self.state.dual_write_active())
            .finish()
    }
}

impl PartitionMigration {
    pub(crate) fn new(cluster: Arc<VoldemortCluster>, state: Arc<ActiveMigration>) -> Self {
        PartitionMigration { cluster, state }
    }

    /// The moving partition.
    pub fn partition(&self) -> PartitionId {
        self.state.partition
    }

    /// The node losing the partition.
    pub fn donor(&self) -> NodeId {
        self.state.donor
    }

    /// The node gaining the partition.
    pub fn target(&self) -> NodeId {
        self.state.to
    }

    /// Acked writes journaled and not yet replayed to the target.
    pub fn journal_len(&self) -> usize {
        self.state.journal.lock().len()
    }

    /// Admin reachability gate: each phase round first checks it can talk
    /// to both ends, so a crash or partition fails the round (retryable)
    /// instead of silently operating on half a cluster.
    fn reach(&self, node: NodeId) -> Result<(), VoldemortError> {
        self.cluster
            .network()
            .deliver(ADMIN_NODE, node)
            .map(|_| ())
            .map_err(|e| VoldemortError::Net(node, e))
    }

    /// All keys of `store` held anywhere in the cluster, sorted (the union
    /// matters: replica-walk shifts can move keys whose master partition is
    /// not the moving one).
    fn all_keys(&self, store: &str) -> Vec<Bytes> {
        let mut keys: BTreeSet<Bytes> = BTreeSet::new();
        for id in self.cluster.node_ids() {
            let Ok(node) = self.cluster.node(id) else {
                continue;
            };
            let Ok(engine) = node.engine(store) else {
                continue;
            };
            for (key, _) in engine.entries() {
                keys.insert(key);
            }
        }
        keys.into_iter().collect()
    }

    /// The resolved source image of `key`: every version held by its
    /// current preference-list replicas, sibling-resolved.
    fn source_image(&self, def: &StoreDef, key: &[u8]) -> Vec<Versioned<Bytes>> {
        let mut merged: Vec<Versioned<Bytes>> = Vec::new();
        for id in self.state.source_prefs(key, def) {
            let Ok(node) = self.cluster.node(id) else {
                continue;
            };
            let Ok(engine) = node.engine(&def.name) else {
                continue;
            };
            let Ok(versions) = engine.get(key) else {
                continue;
            };
            for v in versions {
                resolve_siblings(&mut merged, v);
            }
        }
        merged
    }

    fn snapshot_impl(&self) -> Result<u64, VoldemortError> {
        self.reach(self.state.donor)?;
        self.reach(self.state.to)?;
        let mut copied = 0u64;
        for def in self.cluster.rw_store_defs() {
            for key in self.all_keys(&def.name) {
                let gaining = self.state.moved_targets(&key, &def);
                if gaining.is_empty() {
                    continue;
                }
                let image = self.source_image(&def, &key);
                for &t in &gaining {
                    let target = self.cluster.node(t)?;
                    for v in &image {
                        target.force_put(&def.name, &key, v.clone())?;
                        copied += 1;
                    }
                }
            }
        }
        Ok(copied)
    }

    fn delta_round_impl(&self) -> Result<u64, VoldemortError> {
        self.reach(self.state.to)?;
        self.cluster.migration_drain_journal(&self.state)
    }

    fn verify_round_impl(&self) -> Result<VerifyReport, VoldemortError> {
        self.reach(self.state.donor)?;
        self.reach(self.state.to)?;
        // Drain first so the comparison covers everything acked so far.
        self.cluster.migration_drain_journal(&self.state)?;
        let mut compared = 0u64;
        let mut mismatches = 0u64;
        for def in self.cluster.rw_store_defs() {
            for key in self.all_keys(&def.name) {
                let gaining = self.state.moved_targets(&key, &def);
                if gaining.is_empty() {
                    continue;
                }
                let image = self.source_image(&def, &key);
                for &t in &gaining {
                    compared += 1;
                    let Ok(target) = self.cluster.node(t) else {
                        mismatches += 1;
                        continue;
                    };
                    // Safe-direction repair: source-ahead versions (hint
                    // replays, read repair the journal never saw) converge
                    // here instead of blocking the cutover.
                    for v in &image {
                        target.force_put(&def.name, &key, v.clone())?;
                    }
                    let mut target_image: Vec<Versioned<Bytes>> = Vec::new();
                    for v in target.engine(&def.name)?.get(&key)? {
                        resolve_siblings(&mut target_image, v);
                    }
                    // Unsafe direction: the target serving versions the
                    // source cannot explain is corruption, not lag.
                    if !image_equal(&image, &target_image) {
                        mismatches += 1;
                    }
                }
            }
        }
        Ok(VerifyReport {
            compared,
            mismatches,
        })
    }
}

impl MigrationDriver for PartitionMigration {
    fn snapshot(&self) -> Result<u64, String> {
        self.snapshot_impl().map_err(|e| e.to_string())
    }

    fn delta_round(&self) -> Result<u64, String> {
        self.delta_round_impl().map_err(|e| e.to_string())
    }

    fn begin_dual_write(&self) -> Result<(), String> {
        self.state.enable_dual_write();
        Ok(())
    }

    fn verify_round(&self) -> Result<VerifyReport, String> {
        self.verify_round_impl().map_err(|e| e.to_string())
    }

    fn cutover(&self) -> Result<(), String> {
        self.cluster
            .migration_cutover(&self.state)
            .map_err(|e| e.to_string())
    }

    fn abort(&self) {
        self.cluster.clear_migration();
    }
}
