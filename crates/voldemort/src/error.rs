//! Error types for the Voldemort reproduction.

use li_commons::ring::NodeId;
use li_commons::sim::NetError;
use std::fmt;

/// Errors surfaced by the Voldemort client and server stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoldemortError {
    /// The put carried a vector clock that does not descend from the
    /// stored version — the paper's optimistic-locking signal: "Two
    /// concurrent updates to the same key results in one of the clients
    /// failing due to an already written vector clock. This client
    /// receives a special error, which can trigger a retry."
    ObsoleteVersion,
    /// Fewer than R replicas answered a read.
    InsufficientReads {
        /// Replicas required.
        required: usize,
        /// Replicas that answered.
        got: usize,
    },
    /// Fewer than W replicas acknowledged a write.
    InsufficientWrites {
        /// Replicas required.
        required: usize,
        /// Replicas that acknowledged.
        got: usize,
    },
    /// No store with that name exists on the cluster.
    UnknownStore(String),
    /// A store with that name already exists.
    DuplicateStore(String),
    /// The routing layer could not produce a preference list.
    Routing(String),
    /// A remote operation failed at the network layer.
    Net(NodeId, NetError),
    /// A replica exceeded the client's per-node deadline; the caller gave
    /// up on it and the failure detector was told so it can back off.
    Timeout(NodeId),
    /// `apply_update` exhausted its retries.
    RetriesExhausted(u32),
    /// Read-only store pipeline failure (build/pull/swap).
    ReadOnly(String),
    /// Filesystem failure in the read-only engine.
    Io(String),
    /// The operation is not supported by this engine (e.g. writes to the
    /// read-only engine outside the swap pipeline).
    UnsupportedOperation(&'static str),
    /// Admin/rebalance failure.
    Admin(String),
}

impl fmt::Display for VoldemortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoldemortError::ObsoleteVersion => write!(f, "obsolete version (optimistic lock)"),
            VoldemortError::InsufficientReads { required, got } => {
                write!(f, "read quorum failed: {got}/{required}")
            }
            VoldemortError::InsufficientWrites { required, got } => {
                write!(f, "write quorum failed: {got}/{required}")
            }
            VoldemortError::UnknownStore(name) => write!(f, "unknown store `{name}`"),
            VoldemortError::DuplicateStore(name) => write!(f, "store `{name}` exists"),
            VoldemortError::Routing(msg) => write!(f, "routing error: {msg}"),
            VoldemortError::Net(node, e) => write!(f, "network error to {node}: {e}"),
            VoldemortError::Timeout(node) => write!(f, "per-node deadline exceeded at {node}"),
            VoldemortError::RetriesExhausted(n) => write!(f, "update failed after {n} retries"),
            VoldemortError::ReadOnly(msg) => write!(f, "read-only pipeline: {msg}"),
            VoldemortError::Io(msg) => write!(f, "io error: {msg}"),
            VoldemortError::UnsupportedOperation(op) => write!(f, "unsupported operation: {op}"),
            VoldemortError::Admin(msg) => write!(f, "admin error: {msg}"),
        }
    }
}

impl std::error::Error for VoldemortError {}

impl From<std::io::Error> for VoldemortError {
    fn from(e: std::io::Error) -> Self {
        VoldemortError::Io(e.to_string())
    }
}

impl From<li_commons::ring::RingError> for VoldemortError {
    fn from(e: li_commons::ring::RingError) -> Self {
        VoldemortError::Routing(e.to_string())
    }
}
