//! The client API of Figure II.2 and the quorum coordination behind it.
//!
//! ```text
//! 1) VectorClock<V> get (K key)
//! 2) put (K key, VectorClock<V> value)
//! 3) VectorClock<V> get (K key, T transform)
//! 4) put (K key, VectorClock<V> value, T transform)
//! 5) applyUpdate(UpdateAction action, int retries)
//! ```
//!
//! This client implements **client-side routing** (the paper notes routing
//! is pluggable between client and server side): it holds the full
//! topology, computes the preference list, talks to R/W replicas itself,
//! performs read repair on stale replicas, and parks hinted-handoff writes
//! on fallback nodes when replicas are unreachable.
//!
//! # Parallel quorum I/O
//!
//! Replica requests go through the [`li_commons::exec`] fan-out executor:
//! the call completes as soon as R (or W) replicas acknowledge, and
//! stragglers are demoted to background read repair (gets) or hinted
//! handoff (puts) instead of adding their latency to the caller. The
//! execution strategy is chosen per client via [`QuorumConfig`]:
//!
//! * [`FanOutMode::Deterministic`] (default) — replayable inline
//!   execution; simulated latencies overlap by accounting (the reported
//!   [`QuorumStats::sim_latency`] is the R-th fastest replica, not the
//!   sum), which is what the chaos harness replays byte-identically.
//! * [`FanOutMode::Parallel`] — real worker threads from the cluster's
//!   shared pool, with optional per-node deadlines
//!   ([`QuorumConfig::per_node_timeout`], fed into the failure detector as
//!   failures so slow nodes back off to banned) and *hedged reads*
//!   ([`QuorumConfig::hedge`]: after a quantile-derived delay, one backup
//!   request goes to the next replica; `get.hedged` / `get.hedge_won`
//!   count the rate and usefulness).
//! * [`FanOutMode::Serial`] — the pre-parallel walk, kept as the
//!   benchmark baseline.

use bytes::Bytes;
use li_commons::clock::{resolve_siblings, VectorClock, Versioned};
pub use li_commons::exec::FanOutMode;
use li_commons::exec::{fan_out, FanOutOptions, FanOutPool, FanOutTask, LateHandler};
use li_commons::metrics::{Counter, Histo};
use li_commons::ring::NodeId;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::cluster::VoldemortCluster;
use crate::error::VoldemortError;
use crate::server::Hint;
use crate::store::StoreDef;

/// A server-side transform (API methods 3 and 4): runs against the stored
/// value *on the node*, saving the round trip of shipping the whole value.
/// "For example, if the value is a list, we can run a transformed get to
/// retrieve a sub-list or a transformed put to append an entity to a list."
pub trait Transform: Send + Sync {
    /// Maps the stored value on a transformed get.
    fn on_get(&self, value: &[u8]) -> Bytes;

    /// Produces the new stored value from the current one and the client's
    /// input on a transformed put.
    fn on_put(&self, current: Option<&[u8]>, input: &[u8]) -> Bytes;
}

/// The read-modify-write closure for [`StoreClient::apply_update`]: given
/// the current siblings (empty when absent), produce the new value, or
/// `None` to abort.
pub type UpdateAction<'a> = &'a dyn Fn(&[Versioned<Bytes>]) -> Option<Bytes>;

/// One replica's read reply: simulated link latency plus the versions held.
type ReadReply = (Duration, Vec<Versioned<Bytes>>);

/// Late-straggler handler for read fan-outs.
type ReadLateHandler = LateHandler<ReadReply, VoldemortError>;

/// One node's batched multi-get task: per-key version lists in request order.
type MultiGetTask = FanOutTask<(NodeId, Vec<Vec<Versioned<Bytes>>>), VoldemortError>;

/// Which side coordinates requests. "Voldemort supports both server and
/// client side routing by moving the routing and associated modules"
/// (§II.B): with client-side routing the client talks to every replica
/// itself; with server-side routing it makes one hop to a coordinator
/// node, which then fans out to the replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// The client holds the topology and coordinates quorums itself.
    ClientSide,
    /// All requests funnel through the given coordinator node.
    ServerSide(NodeId),
}

/// How many replicas a quorum read contacts up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadFanOut {
    /// Contact the first R available replicas; a failure pulls in the next
    /// replica as a backup (cheapest; a slow replica inside the first R
    /// still hurts unless hedging covers it).
    #[default]
    Quorum,
    /// Contact all N replicas and complete on the first R answers — the
    /// paper's parallel quorum, which masks any N−R slow replicas.
    All,
}

/// Hedged-read tuning: if the quorum is unmet after a delay derived from
/// the observed replica latency distribution, one backup request goes to
/// the next untried replica. Only meaningful under
/// [`FanOutMode::Parallel`].
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Latency quantile the delay is derived from (e.g. 0.95: hedge when
    /// the primary is slower than 95% of observed replica calls).
    pub quantile: f64,
    /// Lower clamp on the derived delay (also used before any latency has
    /// been observed).
    pub min_delay: Duration,
    /// Upper clamp on the derived delay.
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            quantile: 0.95,
            min_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Per-client quorum I/O tuning. The default — deterministic inline
/// fan-out, quorum-sized read fan-out, no deadlines, no hedging, no
/// latency sleeping — reproduces the exact request sequence of the
/// pre-parallel client, which is what seeded chaos replays depend on.
#[derive(Debug, Clone, Default)]
pub struct QuorumConfig {
    /// Execution strategy (see [`FanOutMode`]).
    pub mode: FanOutMode,
    /// Read fan-out width (see [`ReadFanOut`]).
    pub read_fan_out: ReadFanOut,
    /// Per-node deadline: a replica whose simulated latency exceeds this
    /// counts as failed (`VoldemortError::Timeout`) and is reported to the
    /// failure detector, so persistently slow nodes get banned and backed
    /// off exactly like dead ones.
    pub per_node_timeout: Option<Duration>,
    /// Hedged-read tuning (Parallel mode only).
    pub hedge: Option<HedgeConfig>,
    /// Sleep the simulated per-link latency on each replica call (used by
    /// benchmarks so wall-clock percentiles reflect the simulated
    /// network; tests leave this off and read the accounted
    /// [`QuorumStats::sim_latency`] instead).
    pub simulate_latency: bool,
}

/// What one quorum operation observed — the accounting the chaos harness
/// checks its R-th-fastest-replica bound against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuorumStats {
    /// Simulated completion latency: for parallel/deterministic fan-out,
    /// the R-th smallest replica latency among the successes (replicas
    /// overlap); for [`FanOutMode::Serial`], the sum (they don't).
    pub sim_latency: Duration,
    /// Replica requests launched (primaries + backups + hedges).
    pub contacted: usize,
    /// Hedge requests launched.
    pub hedges: usize,
    /// Hedge requests whose response completed the quorum.
    pub hedge_wins: usize,
}

/// Client-side observability under the cluster registry's
/// `voldemort.client.` prefix: end-to-end latency per API call, quorum
/// outcomes, writes that needed a hint to meet W (sloppy quorum), and the
/// hedged-read counters.
#[derive(Debug, Clone)]
struct ClientMetrics {
    get_latency: Histo,
    put_latency: Histo,
    gets_ok: Counter,
    puts_ok: Counter,
    quorum_read_failures: Counter,
    quorum_write_failures: Counter,
    hinted_writes: Counter,
    hedged: Counter,
    hedge_won: Counter,
    get_sim_latency: Histo,
    put_sim_latency: Histo,
    replica_latency: Histo,
}

impl ClientMetrics {
    fn new(cluster: &VoldemortCluster) -> Self {
        let scope = cluster.metrics().scope("voldemort.client");
        ClientMetrics {
            get_latency: scope.histogram("get.latency_ns"),
            put_latency: scope.histogram("put.latency_ns"),
            gets_ok: scope.counter("get.ok"),
            puts_ok: scope.counter("put.ok"),
            quorum_read_failures: scope.counter("quorum.read_failures"),
            quorum_write_failures: scope.counter("quorum.write_failures"),
            hinted_writes: scope.counter("put.hinted"),
            hedged: scope.counter("get.hedged"),
            hedge_won: scope.counter("get.hedge_won"),
            get_sim_latency: scope.histogram("get.sim_latency_ns"),
            put_sim_latency: scope.histogram("put.sim_latency_ns"),
            replica_latency: scope.histogram("replica.latency_ns"),
        }
    }
}

/// Delivers one replica-bound message, enforcing the per-node deadline and
/// maintaining the failure detector. Returns the simulated link latency.
fn replica_deliver(
    cluster: &VoldemortCluster,
    origin: NodeId,
    node: NodeId,
    timeout: Option<Duration>,
    sleep: bool,
) -> Result<Duration, VoldemortError> {
    match cluster.network().deliver(origin, node) {
        Ok(latency) => {
            if let Some(deadline) = timeout {
                if latency > deadline {
                    // The caller gives up at the deadline (sleep only that
                    // long) and the slow node is penalized like a dead one,
                    // so the detector's ban/backoff covers chronic
                    // stragglers too.
                    if sleep {
                        std::thread::sleep(deadline);
                    }
                    cluster.detector().record_failure(node);
                    return Err(VoldemortError::Timeout(node));
                }
            }
            if sleep {
                std::thread::sleep(latency);
            }
            Ok(latency)
        }
        Err(net) => {
            cluster.detector().record_failure(node);
            Err(VoldemortError::Net(node, net))
        }
    }
}

/// A client bound to one store.
pub struct StoreClient {
    cluster: Arc<VoldemortCluster>,
    store: StoreDef,
    routing: RoutingMode,
    config: QuorumConfig,
    metrics: ClientMetrics,
}

impl StoreClient {
    /// Virtual node id the client occupies on the simulated network.
    pub const CLIENT_NODE: NodeId = NodeId(u16::MAX);

    pub(crate) fn new(cluster: Arc<VoldemortCluster>, store: StoreDef) -> Self {
        let metrics = ClientMetrics::new(&cluster);
        StoreClient {
            cluster,
            store,
            routing: RoutingMode::ClientSide,
            config: QuorumConfig::default(),
            metrics,
        }
    }

    /// Switches to server-side routing through `coordinator`: every
    /// request pays one extra hop to the coordinator, which then runs the
    /// replica fan-out (the module relocation the pluggable architecture
    /// allows).
    #[must_use]
    pub fn with_server_routing(mut self, coordinator: NodeId) -> Self {
        self.routing = RoutingMode::ServerSide(coordinator);
        self
    }

    /// Replaces the quorum I/O configuration (fan-out mode, read width,
    /// per-node deadline, hedging).
    #[must_use]
    pub fn with_quorum_config(mut self, config: QuorumConfig) -> Self {
        self.config = config;
        self
    }

    /// The active quorum I/O configuration.
    pub fn quorum_config(&self) -> &QuorumConfig {
        &self.config
    }

    /// The node that acts as the origin of replica traffic.
    fn origin(&self) -> NodeId {
        match self.routing {
            RoutingMode::ClientSide => Self::CLIENT_NODE,
            RoutingMode::ServerSide(coordinator) => coordinator,
        }
    }

    /// For server-side routing: the client -> coordinator hop itself.
    fn enter(&self) -> Result<(), VoldemortError> {
        if let RoutingMode::ServerSide(coordinator) = self.routing {
            self.cluster
                .network()
                .deliver(Self::CLIENT_NODE, coordinator)
                .map_err(|e| VoldemortError::Net(coordinator, e))?;
        }
        Ok(())
    }

    /// The store definition this client operates under.
    pub fn store_def(&self) -> &StoreDef {
        &self.store
    }

    fn preference_list(&self, key: &[u8]) -> Result<Vec<NodeId>, VoldemortError> {
        self.cluster.route(&self.store, key)
    }

    /// The worker pool, only when this client actually runs parallel.
    fn pool(&self) -> Option<Arc<FanOutPool>> {
        (self.config.mode == FanOutMode::Parallel).then(|| self.cluster.fan_out_pool())
    }

    /// Attempts one remote call inline, maintaining the failure detector.
    fn call<T>(
        &self,
        node: NodeId,
        op: impl FnOnce() -> Result<T, VoldemortError>,
    ) -> Result<T, VoldemortError> {
        let detector = self.cluster.detector();
        match self.cluster.network().deliver(self.origin(), node) {
            Ok(_latency) => {
                let result = op();
                // An application-level rejection (e.g. ObsoleteVersion) is
                // a *successful* interaction for liveness purposes.
                detector.record_success(node);
                result
            }
            Err(net) => {
                detector.record_failure(node);
                Err(VoldemortError::Net(node, net))
            }
        }
    }

    /// Preference-list nodes that exist and the failure detector considers
    /// available, in preference order.
    fn available_replicas(&self, prefs: &[NodeId]) -> Vec<NodeId> {
        let detector = self.cluster.detector();
        prefs
            .iter()
            .copied()
            .filter(|&n| detector.is_available(n) && self.cluster.node(n).is_ok())
            .collect()
    }

    /// The hedge delay for this moment, derived from the replica-latency
    /// histogram (Parallel mode with hedging configured only).
    fn hedge_delay(&self) -> Option<Duration> {
        if self.config.mode != FanOutMode::Parallel {
            return None;
        }
        let cfg = self.config.hedge.as_ref()?;
        let observed = self.metrics.replica_latency.snapshot();
        let delay = if observed.count() == 0 {
            cfg.min_delay
        } else {
            Duration::from_nanos(observed.quantile(cfg.quantile))
        };
        Some(delay.clamp(cfg.min_delay, cfg.max_delay))
    }

    /// Builds the replica-get task for `node`. `'static` because Parallel
    /// mode stragglers may outlive this call.
    fn get_task(
        &self,
        node: NodeId,
        key: &[u8],
    ) -> FanOutTask<(Duration, Vec<Versioned<Bytes>>), VoldemortError> {
        let cluster = Arc::clone(&self.cluster);
        let store = self.store.name.clone();
        let key = Bytes::copy_from_slice(key);
        let origin = self.origin();
        let timeout = self.config.per_node_timeout;
        let sleep = self.config.simulate_latency;
        FanOutTask::new(u64::from(node.0), move || {
            let server = cluster.node(node)?;
            let latency = replica_deliver(&cluster, origin, node, timeout, sleep)?;
            let result = server.get(&store, &key);
            cluster.detector().record_success(node);
            result.map(|versions| (latency, versions))
        })
    }

    /// API method 1: quorum get. Returns all concurrent siblings (empty
    /// when the key is absent); conflict resolution is the application's
    /// job, per the Dynamo design.
    pub fn get(&self, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        self.get_internal(key, None).map(|(versions, _)| versions)
    }

    /// Like [`StoreClient::get`], also reporting the fan-out accounting
    /// ([`QuorumStats`]) for this operation.
    pub fn get_with_stats(
        &self,
        key: &[u8],
    ) -> Result<(Vec<Versioned<Bytes>>, QuorumStats), VoldemortError> {
        self.get_internal(key, None)
    }

    /// API method 3: transformed get — the transform runs server-side on
    /// each replica's value.
    pub fn get_with_transform(
        &self,
        key: &[u8],
        transform: &dyn Transform,
    ) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        self.get_internal(key, Some(transform))
            .map(|(versions, _)| versions)
    }

    fn get_internal(
        &self,
        key: &[u8],
        transform: Option<&dyn Transform>,
    ) -> Result<(Vec<Versioned<Bytes>>, QuorumStats), VoldemortError> {
        let start = Instant::now();
        let result = self.get_quorum(key, transform);
        self.metrics.get_latency.record_duration(start.elapsed());
        match &result {
            Ok((_, stats)) => {
                self.metrics.gets_ok.inc();
                self.metrics
                    .get_sim_latency
                    .record(stats.sim_latency.as_nanos() as u64);
            }
            Err(VoldemortError::InsufficientReads { .. }) => {
                self.metrics.quorum_read_failures.inc();
            }
            Err(_) => {}
        }
        result
    }

    fn get_quorum(
        &self,
        key: &[u8],
        transform: Option<&dyn Transform>,
    ) -> Result<(Vec<Versioned<Bytes>>, QuorumStats), VoldemortError> {
        self.enter()?;
        let prefs = self.preference_list(key)?;
        let required = self.store.required_reads;
        let available = self.available_replicas(&prefs);
        let width = match self.config.read_fan_out {
            ReadFanOut::Quorum => required.min(available.len()),
            ReadFanOut::All => available.len(),
        };
        let primary: Vec<_> = available[..width].iter().map(|&n| self.get_task(n, key)).collect();
        let backups: Vec<_> = available[width..].iter().map(|&n| self.get_task(n, key)).collect();

        // Stragglers that answer after we've returned get repaired in the
        // background against the merged set published here. Best-effort: a
        // straggler racing the publish is skipped, exactly like a replica
        // that missed this read entirely — the next read repairs it.
        let merged_latch: Arc<OnceLock<Vec<Versioned<Bytes>>>> = Arc::new(OnceLock::new());
        let late: Option<ReadLateHandler> =
            (self.config.mode == FanOutMode::Parallel).then(|| {
                let cluster = Arc::clone(&self.cluster);
                let store = self.store.name.clone();
                let key = Bytes::copy_from_slice(key);
                let origin = self.origin();
                let latch = Arc::clone(&merged_latch);
                let handler: ReadLateHandler =
                    Arc::new(move |node, outcome| {
                        let Ok((_, versions)) = outcome else { return };
                        let Some(merged) = latch.get() else { return };
                        let node = NodeId(node as u16);
                        for version in merged {
                            if !versions.iter().any(|v| v.clock == version.clock) {
                                if let Ok(server) = cluster.node(node) {
                                    if cluster.network().deliver(origin, node).is_ok() {
                                        let _ = server.force_put(&store, &key, version.clone());
                                    }
                                }
                            }
                        }
                    });
                handler
            });

        let opts = FanOutOptions {
            mode: self.config.mode,
            required,
            hedge_delay: (!backups.is_empty())
                .then(|| self.hedge_delay())
                .flatten(),
            overall_deadline: None,
        };
        let report = fan_out(self.pool().as_deref(), &opts, primary, backups, None, late);
        self.metrics.hedged.add(report.hedges as u64);
        self.metrics.hedge_won.add(report.hedge_wins as u64);
        for (_, (latency, _)) in report.successes() {
            self.metrics.replica_latency.record(latency.as_nanos() as u64);
        }
        if !report.satisfied() {
            let _ = merged_latch.set(Vec::new());
            return Err(VoldemortError::InsufficientReads {
                required,
                got: report.quorum.len(),
            });
        }

        // Collect responses and order them by preference-list position so
        // the merge and repair sequence is independent of completion order.
        let mut responses: Vec<(NodeId, Duration, Vec<Versioned<Bytes>>)> = report
            .quorum
            .into_iter()
            .chain(report.extras)
            .map(|(id, (latency, versions))| (NodeId(id as u16), latency, versions))
            .collect();
        responses.sort_by_key(|(node, _, _)| prefs.iter().position(|p| p == node));

        // Merge all observed versions into the live sibling set.
        let mut merged: Vec<Versioned<Bytes>> = Vec::new();
        for (_, _, versions) in &responses {
            for version in versions {
                resolve_siblings(&mut merged, version.clone());
            }
        }
        let _ = merged_latch.set(merged.clone());

        // During a migration's dual-write phase, shadow-read the gaining
        // node(s) and compare against the quorum-merged image
        // (observability only: `migration.shadow_reads` /
        // `migration.shadow_mismatch`; the cutover refusal decision
        // belongs to the verifier's own comparison rounds).
        self.shadow_read_probe(key, &merged);

        // Read repair: push missing versions back to stale responders.
        for (node, _, versions) in &responses {
            for version in &merged {
                let has = versions.iter().any(|v| v.clock == version.clock);
                if !has {
                    if let Ok(server) = self.cluster.node(*node) {
                        let _ = self.call(*node, || {
                            server.force_put(&self.store.name, key, version.clone())
                        });
                    }
                }
            }
        }

        let mut latencies: Vec<Duration> =
            responses.iter().map(|(_, latency, _)| *latency).collect();
        latencies.sort();
        let sim_latency = match self.config.mode {
            FanOutMode::Serial => latencies.iter().sum(),
            _ => latencies
                .get(required.saturating_sub(1))
                .copied()
                .unwrap_or_default(),
        };
        let stats = QuorumStats {
            sim_latency,
            contacted: report.launched,
            hedges: report.hedges,
            hedge_wins: report.hedge_wins,
        };

        let merged = match transform {
            Some(t) => merged
                .into_iter()
                .map(|v| {
                    let transformed = t.on_get(&v.value);
                    Versioned::new(v.clock, transformed)
                })
                .collect(),
            None => merged,
        };
        Ok((merged, stats))
    }

    /// During dual-write, reads the migration target's image of `key` and
    /// counts a `migration.shadow_mismatch` when it diverges from what the
    /// read quorum served.
    fn shadow_read_probe(&self, key: &[u8], merged: &[Versioned<Bytes>]) {
        let Some(m) = self.cluster.active_migration() else {
            return;
        };
        if !m.dual_write_active() {
            return;
        }
        let gaining = m.moved_targets(key, &self.store);
        if gaining.is_empty() {
            return;
        }
        let scope = self.cluster.metrics().scope("migration");
        for t in gaining {
            let Ok(node) = self.cluster.node(t) else {
                continue;
            };
            if self.cluster.network().deliver(self.origin(), t).is_err() {
                continue;
            }
            let Ok(engine) = node.engine(&self.store.name) else {
                continue;
            };
            let Ok(versions) = engine.get(key) else {
                continue;
            };
            let mut image: Vec<Versioned<Bytes>> = Vec::new();
            for v in versions {
                resolve_siblings(&mut image, v);
            }
            scope.counter("shadow_reads").inc();
            if !crate::migrate::image_equal(merged, &image) {
                scope.counter("shadow_mismatch").inc();
            }
        }
    }

    /// API method 2: quorum put. `clock` must be the version the caller
    /// read (or empty for a first write); the coordinator increments it and
    /// requires W replica acknowledgements. Unreachable replicas get their
    /// write parked as a hint on the next available node (sloppy quorum).
    pub fn put(
        &self,
        key: &[u8],
        clock: &VectorClock,
        value: Bytes,
    ) -> Result<VectorClock, VoldemortError> {
        self.put_internal(key, clock, value, None)
    }

    /// Convenience for a first write (empty base clock).
    pub fn put_initial(&self, key: &[u8], value: Bytes) -> Result<VectorClock, VoldemortError> {
        self.put(key, &VectorClock::new(), value)
    }

    /// API method 4: transformed put — each replica derives the stored
    /// value from its current value and the client's (small) input.
    pub fn put_with_transform(
        &self,
        key: &[u8],
        clock: &VectorClock,
        input: Bytes,
        transform: &dyn Transform,
    ) -> Result<VectorClock, VoldemortError> {
        self.put_internal(key, clock, input, Some(transform))
    }

    fn put_internal(
        &self,
        key: &[u8],
        clock: &VectorClock,
        value: Bytes,
        transform: Option<&dyn Transform>,
    ) -> Result<VectorClock, VoldemortError> {
        let start = Instant::now();
        let result = self.put_quorum(key, clock, value, transform);
        self.metrics.put_latency.record_duration(start.elapsed());
        match &result {
            Ok(_) => self.metrics.puts_ok.inc(),
            Err(VoldemortError::InsufficientWrites { .. }) => {
                self.metrics.quorum_write_failures.inc();
            }
            Err(_) => {}
        }
        result
    }

    /// One synchronous replica put (used for the coordinator hop and for
    /// transformed puts, which need per-replica server state and therefore
    /// can't ship as `'static` tasks).
    fn put_replica_inline(
        &self,
        node: NodeId,
        key: &[u8],
        candidate: &VectorClock,
        value: &Bytes,
        transform: Option<&dyn Transform>,
    ) -> Result<Duration, VoldemortError> {
        let server = self.cluster.node(node)?;
        let latency = replica_deliver(
            &self.cluster,
            self.origin(),
            node,
            self.config.per_node_timeout,
            self.config.simulate_latency,
        )?;
        let result = (|| {
            let stored_value = match transform {
                Some(t) => {
                    let current = server.get(&self.store.name, key)?;
                    // Transform against the newest value this replica has.
                    let current_bytes = current.first().map(|v| v.value.clone());
                    t.on_put(current_bytes.as_deref(), value)
                }
                None => value.clone(),
            };
            server.put(
                &self.store.name,
                key,
                Versioned::new(candidate.clone(), stored_value),
            )
        })();
        self.cluster.detector().record_success(node);
        result.map(|()| latency)
    }

    /// Builds the replica-put task for `node` (raw values only).
    fn put_task(
        &self,
        node: NodeId,
        key: &[u8],
        versioned: Versioned<Bytes>,
    ) -> FanOutTask<Duration, VoldemortError> {
        let cluster = Arc::clone(&self.cluster);
        let store = self.store.name.clone();
        let key = Bytes::copy_from_slice(key);
        let origin = self.origin();
        let timeout = self.config.per_node_timeout;
        let sleep = self.config.simulate_latency;
        FanOutTask::new(u64::from(node.0), move || {
            let server = cluster.node(node)?;
            let latency = replica_deliver(&cluster, origin, node, timeout, sleep)?;
            let result = server.put(&store, &key, versioned);
            cluster.detector().record_success(node);
            result.map(|()| latency)
        })
    }

    fn put_quorum(
        &self,
        key: &[u8],
        clock: &VectorClock,
        value: Bytes,
        transform: Option<&dyn Transform>,
    ) -> Result<VectorClock, VoldemortError> {
        self.enter()?;
        let prefs = self.preference_list(key)?;
        // Captured before the quorum runs: if a migration cutover flips
        // routing while this put is in flight, the epoch moves and the
        // committed version is re-pushed to the new preference list.
        let epoch = self.cluster.topology_epoch();
        let detector = self.cluster.detector();
        let required = self.store.required_writes;
        let mut acks = 0usize;
        let mut failed_replicas: Vec<NodeId> = Vec::new();
        let mut sim_latency = Duration::ZERO;

        // Phase 1 — coordinator hop, always serial: the first replica that
        // actually accepts the write stamps the incremented vector clock,
        // as in Dynamo. Two writers racing through disjoint replica subsets
        // therefore produce *concurrent* clocks (siblings), while writers
        // sharing a replica collide on the optimistic lock. Fanning the
        // clock-stamping write out in parallel would let disjoint writers
        // mint *identical* clocks, silently losing one write — so this hop
        // stays serial in every mode.
        let mut committed_clock: Option<VectorClock> = None;
        let mut coordinator_node: Option<NodeId> = None;
        let mut wave_start = prefs.len();
        for (i, &node) in prefs.iter().enumerate() {
            if self.cluster.node(node).is_err() || !detector.is_available(node) {
                failed_replicas.push(node);
                continue;
            }
            let candidate = clock.incremented(node.0);
            match self.put_replica_inline(node, key, &candidate, &value, transform) {
                Ok(latency) => {
                    sim_latency += latency;
                    committed_clock = Some(candidate);
                    coordinator_node = Some(node);
                    acks = 1;
                    wave_start = i + 1;
                    break;
                }
                // Optimistic lock: someone committed a newer version.
                Err(VoldemortError::ObsoleteVersion) => {
                    return Err(VoldemortError::ObsoleteVersion)
                }
                // An engine-level rejection is a property of the store, not
                // of this replica — no other replica (or hint) will accept
                // it either.
                Err(e @ VoldemortError::UnsupportedOperation(_)) => return Err(e),
                Err(_) => failed_replicas.push(node),
            }
        }
        let new_clock = committed_clock
            .clone()
            .unwrap_or_else(|| clock.incremented(prefs[0].0));

        // Phase 2 — replicate the committed version to the remaining
        // preference-list replicas, in parallel, waiting only for the
        // W−1 further acks the quorum still needs. Stragglers keep running;
        // a late failure parks a hint asynchronously.
        if committed_clock.is_some() && wave_start < prefs.len() {
            let mut tasks = Vec::new();
            match transform {
                None => {
                    for &node in &prefs[wave_start..] {
                        if self.cluster.node(node).is_err() || !detector.is_available(node) {
                            failed_replicas.push(node);
                            continue;
                        }
                        tasks.push(self.put_task(
                            node,
                            key,
                            Versioned::new(new_clock.clone(), value.clone()),
                        ));
                    }
                }
                Some(t) => {
                    // Transformed puts read per-replica state; keep them on
                    // the inline path regardless of mode.
                    for &node in &prefs[wave_start..] {
                        if self.cluster.node(node).is_err() || !detector.is_available(node) {
                            failed_replicas.push(node);
                            continue;
                        }
                        match self.put_replica_inline(node, key, &new_clock, &value, Some(t)) {
                            Ok(_) => acks += 1,
                            Err(VoldemortError::ObsoleteVersion) => {
                                return Err(VoldemortError::ObsoleteVersion)
                            }
                            Err(e @ VoldemortError::UnsupportedOperation(_)) => return Err(e),
                            Err(_) => failed_replicas.push(node),
                        }
                    }
                }
            }
            if !tasks.is_empty() {
                let late: Option<LateHandler<Duration, VoldemortError>> =
                    (self.config.mode == FanOutMode::Parallel).then(|| {
                        self.late_hint_handler(key, &prefs, &new_clock, &value)
                    });
                // Replication is not optional: every replica must be
                // attempted. Inline modes run the whole wave (legacy
                // parity); only Parallel returns at W acks and leaves the
                // rest replicating in the background.
                let wave_required = match self.config.mode {
                    FanOutMode::Parallel => required.saturating_sub(acks),
                    _ => tasks.len(),
                };
                let opts = FanOutOptions {
                    mode: self.config.mode,
                    required: wave_required,
                    hedge_delay: None,
                    overall_deadline: None,
                };
                let is_fatal = |e: &VoldemortError| {
                    matches!(
                        e,
                        VoldemortError::ObsoleteVersion
                            | VoldemortError::UnsupportedOperation(_)
                    )
                };
                let report = fan_out(
                    self.pool().as_deref(),
                    &opts,
                    tasks,
                    Vec::new(),
                    Some(&is_fatal),
                    late,
                );
                if let Some((_, e)) = report.fatal {
                    return Err(e);
                }
                let mut wave_latencies: Vec<Duration> = Vec::new();
                for (_, latency) in report.successes() {
                    acks += 1;
                    wave_latencies.push(*latency);
                    self.metrics.replica_latency.record(latency.as_nanos() as u64);
                }
                for (node, _) in &report.failures {
                    failed_replicas.push(NodeId(*node as u16));
                }
                wave_latencies.sort();
                sim_latency += match self.config.mode {
                    FanOutMode::Serial => wave_latencies.iter().sum(),
                    _ => opts
                        .required
                        .checked_sub(1)
                        .and_then(|i| wave_latencies.get(i))
                        .copied()
                        .unwrap_or_default(),
                };
            }
        }
        self.metrics
            .put_sim_latency
            .record(sim_latency.as_nanos() as u64);

        // Hinted handoff: park failed replicas' writes on fallback nodes.
        if acks < required && !failed_replicas.is_empty() {
            let fallbacks: Vec<NodeId> = self
                .cluster
                .node_ids()
                .into_iter()
                .filter(|n| !prefs.contains(n) && detector.is_available(*n))
                .collect();
            let mut fallback_iter = fallbacks.into_iter();
            for &target in &failed_replicas {
                if acks >= required {
                    break;
                }
                let Some(holder_id) = fallback_iter.next() else {
                    break;
                };
                let Ok(holder) = self.cluster.node(holder_id) else {
                    continue;
                };
                let hint = Hint {
                    store: self.store.name.clone(),
                    target,
                    key: Bytes::copy_from_slice(key),
                    value: Versioned::new(new_clock.clone(), value.clone()),
                };
                if self
                    .call(holder_id, || {
                        holder.store_hint(hint);
                        Ok(())
                    })
                    .is_ok()
                {
                    acks += 1;
                    self.metrics.hinted_writes.inc();
                }
            }
        }

        if acks < required {
            return Err(VoldemortError::InsufficientWrites {
                required,
                got: acks,
            });
        }

        // The write is acked: this is the zero-loss capture point for an
        // in-flight partition migration. For transformed puts the stored
        // value differs from the input, so it is fetched back from the
        // coordinator replica that committed it.
        let stored = match transform {
            None => value.clone(),
            Some(_) => self
                .committed_value(coordinator_node, key, &new_clock)
                .unwrap_or_else(|| value.clone()),
        };
        self.cluster.on_acked_put(
            &self.store,
            key,
            &Versioned::new(new_clock.clone(), stored.clone()),
            self.origin(),
        );
        self.heal_routing_drift(key, &prefs, &new_clock, &stored, epoch);
        Ok(new_clock)
    }

    /// The value the coordinator replica stored for `clock` (transformed
    /// puts derive it server-side, so the client reads it back).
    fn committed_value(
        &self,
        coordinator: Option<NodeId>,
        key: &[u8],
        clock: &VectorClock,
    ) -> Option<Bytes> {
        let node = self.cluster.node(coordinator?).ok()?;
        let versions = node.engine(&self.store.name).ok()?.get(key).ok()?;
        versions
            .into_iter()
            .find(|v| v.clock == *clock)
            .map(|v| v.value)
    }

    /// If the topology changed while this put was in flight (a cutover
    /// flip raced the quorum), the acked version may live only on the old
    /// replica set. Re-route and push the committed version to any node
    /// that just became a replica, so a flip cannot orphan an acked write.
    /// Unreachable new replicas get the write parked as a hint —
    /// `deliver_hints` routes via the current ring, so it lands there.
    fn heal_routing_drift(
        &self,
        key: &[u8],
        prefs: &[NodeId],
        clock: &VectorClock,
        value: &Bytes,
        epoch_before: u64,
    ) {
        if self.cluster.topology_epoch() == epoch_before {
            return;
        }
        let Ok(now_prefs) = self.preference_list(key) else {
            return;
        };
        let detector = self.cluster.detector();
        for node in now_prefs.iter().copied().filter(|n| !prefs.contains(n)) {
            let versioned = Versioned::new(clock.clone(), value.clone());
            let landed = self
                .cluster
                .node(node)
                .ok()
                .filter(|_| self.cluster.network().deliver(self.origin(), node).is_ok())
                .is_some_and(|server| {
                    server
                        .force_put(&self.store.name, key, versioned.clone())
                        .is_ok()
                });
            if landed {
                continue;
            }
            for holder_id in self
                .cluster
                .node_ids()
                .into_iter()
                .filter(|n| !now_prefs.contains(n) && detector.is_available(*n))
            {
                let Ok(holder) = self.cluster.node(holder_id) else {
                    continue;
                };
                if self.cluster.network().deliver(self.origin(), holder_id).is_ok() {
                    holder.store_hint(Hint {
                        store: self.store.name.clone(),
                        target: node,
                        key: Bytes::copy_from_slice(key),
                        value: versioned,
                    });
                    self.metrics.hinted_writes.inc();
                    break;
                }
            }
        }
    }

    /// Builds the background hinted-handoff handler for put stragglers
    /// that fail after the quorum already returned.
    fn late_hint_handler(
        &self,
        key: &[u8],
        prefs: &[NodeId],
        new_clock: &VectorClock,
        value: &Bytes,
    ) -> LateHandler<Duration, VoldemortError> {
        let cluster = Arc::clone(&self.cluster);
        let store = self.store.name.clone();
        let key = Bytes::copy_from_slice(key);
        let prefs = prefs.to_vec();
        let new_clock = new_clock.clone();
        let value = value.clone();
        let origin = self.origin();
        let hinted = self.metrics.hinted_writes.clone();
        Arc::new(move |node, outcome| {
            if outcome.is_ok() {
                return;
            }
            let target = NodeId(node as u16);
            let detector = cluster.detector();
            let fallbacks: Vec<NodeId> = cluster
                .node_ids()
                .into_iter()
                .filter(|n| !prefs.contains(n) && detector.is_available(*n))
                .collect();
            for holder_id in fallbacks {
                let Ok(holder) = cluster.node(holder_id) else {
                    continue;
                };
                if cluster.network().deliver(origin, holder_id).is_ok() {
                    holder.store_hint(Hint {
                        store: store.clone(),
                        target,
                        key: key.clone(),
                        value: Versioned::new(new_clock.clone(), value.clone()),
                    });
                    hinted.inc();
                    break;
                }
            }
        })
    }

    /// Quorum delete at version `clock`. All N replicas are contacted; the
    /// call completes at W acknowledgements.
    pub fn delete(&self, key: &[u8], clock: &VectorClock) -> Result<bool, VoldemortError> {
        self.enter()?;
        let prefs = self.preference_list(key)?;
        let epoch = self.cluster.topology_epoch();
        let required = self.store.required_writes;
        let mut tasks: Vec<FanOutTask<(Duration, bool), VoldemortError>> = Vec::new();
        for &node in &prefs {
            if self.cluster.node(node).is_err() {
                continue;
            }
            let cluster = Arc::clone(&self.cluster);
            let store = self.store.name.clone();
            let key = Bytes::copy_from_slice(key);
            let clock = clock.clone();
            let origin = self.origin();
            let timeout = self.config.per_node_timeout;
            let sleep = self.config.simulate_latency;
            tasks.push(FanOutTask::new(u64::from(node.0), move || {
                let server = cluster.node(node)?;
                let latency = replica_deliver(&cluster, origin, node, timeout, sleep)?;
                let result = server.delete(&store, &key, &clock);
                cluster.detector().record_success(node);
                result.map(|deleted| (latency, deleted))
            }));
        }
        let opts = FanOutOptions {
            mode: self.config.mode,
            required,
            hedge_delay: None,
            overall_deadline: None,
        };
        let report = fan_out(self.pool().as_deref(), &opts, tasks, Vec::new(), None, None);
        let acks = report.quorum.len() + report.extras.len();
        if acks < required {
            return Err(VoldemortError::InsufficientWrites {
                required,
                got: acks,
            });
        }
        let any_deleted = report.successes().any(|(_, (_, deleted))| *deleted);
        // Acked-delete capture for an in-flight migration, plus the same
        // cutover-race heal as puts (replay the delete on any replica the
        // key just gained).
        self.cluster
            .on_acked_delete(&self.store, key, clock, self.origin());
        if self.cluster.topology_epoch() != epoch {
            if let Ok(now_prefs) = self.preference_list(key) {
                for node in now_prefs.into_iter().filter(|n| !prefs.contains(n)) {
                    if let Ok(server) = self.cluster.node(node) {
                        if self.cluster.network().deliver(self.origin(), node).is_ok() {
                            let _ = server.delete(&self.store.name, key, clock);
                        }
                    }
                }
            }
        }
        Ok(any_deleted)
    }

    /// Batch get: one call, many keys (Voldemort's `getAll`). Keys are
    /// batched by replica node — each node in the union of the keys'
    /// quorum target sets is contacted exactly once with a multi-get —
    /// instead of running an independent quorum per key. Keys that fail
    /// their read quorum are simply absent from the result map, so a
    /// partially degraded cluster still serves what it can.
    pub fn get_all(
        &self,
        keys: &[&[u8]],
    ) -> Result<std::collections::HashMap<Vec<u8>, Vec<Versioned<Bytes>>>, VoldemortError> {
        self.enter()?;
        let required = self.store.required_reads;
        let mut out = std::collections::HashMap::with_capacity(keys.len());

        // Plan: the first R available replicas of each key (or all N with
        // ReadFanOut::All), grouped per node. BTreeMap keeps node contact
        // order deterministic.
        let mut key_targets: Vec<Vec<NodeId>> = Vec::with_capacity(keys.len());
        let mut per_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, &key) in keys.iter().enumerate() {
            let prefs = self.preference_list(key)?;
            let available = self.available_replicas(&prefs);
            let width = match self.config.read_fan_out {
                ReadFanOut::Quorum => required.min(available.len()),
                ReadFanOut::All => available.len(),
            };
            let targets = available[..width].to_vec();
            for &node in &targets {
                per_node.entry(node).or_default().push(i);
            }
            key_targets.push(targets);
        }

        // One multi-get task per node.
        let mut tasks: Vec<MultiGetTask> = Vec::new();
        for (&node, indices) in &per_node {
            let cluster = Arc::clone(&self.cluster);
            let store = self.store.name.clone();
            let node_keys: Vec<Bytes> = indices
                .iter()
                .map(|&i| Bytes::copy_from_slice(keys[i]))
                .collect();
            let origin = self.origin();
            let timeout = self.config.per_node_timeout;
            let sleep = self.config.simulate_latency;
            tasks.push(FanOutTask::new(u64::from(node.0), move || {
                let server = cluster.node(node)?;
                let _latency = replica_deliver(&cluster, origin, node, timeout, sleep)?;
                let result = server.get_many(&store, &node_keys);
                cluster.detector().record_success(node);
                result.map(|versions| (node, versions))
            }));
        }
        let opts = FanOutOptions {
            // Every node response matters for some key's quorum, so the
            // batch waits for all of them.
            mode: self.config.mode,
            required: tasks.len(),
            hedge_delay: None,
            overall_deadline: None,
        };
        let report = fan_out(self.pool().as_deref(), &opts, tasks, Vec::new(), None, None);
        let mut node_results: BTreeMap<NodeId, Vec<Vec<Versioned<Bytes>>>> = BTreeMap::new();
        for (_, (node, versions)) in report.quorum.into_iter().chain(report.extras) {
            node_results.insert(node, versions);
        }

        // Assemble per-key quorums from the per-node responses.
        for (i, &key) in keys.iter().enumerate() {
            let responses: Vec<(NodeId, Vec<Versioned<Bytes>>)> = key_targets[i]
                .iter()
                .filter_map(|node| {
                    let lists = node_results.get(node)?;
                    let slot = per_node[node].iter().position(|&j| j == i)?;
                    Some((*node, lists[slot].clone()))
                })
                .collect();
            if responses.len() < required {
                continue; // quorum miss: key absent, like the per-key path
            }
            let mut merged: Vec<Versioned<Bytes>> = Vec::new();
            for (_, versions) in &responses {
                for version in versions {
                    resolve_siblings(&mut merged, version.clone());
                }
            }
            // Read repair stale responders, as the single-key path does.
            for (node, versions) in &responses {
                for version in &merged {
                    if !versions.iter().any(|v| v.clock == version.clock) {
                        if let Ok(server) = self.cluster.node(*node) {
                            let _ = self.call(*node, || {
                                server.force_put(&self.store.name, key, version.clone())
                            });
                        }
                    }
                }
            }
            if !merged.is_empty() {
                out.insert(key.to_vec(), merged);
            }
        }
        Ok(out)
    }

    /// API method 5: `applyUpdate` — encapsulated read-modify-write with
    /// optimistic-lock retry, "used in cases like counters where
    /// 'read, modify, write if no change' loops are required."
    pub fn apply_update(
        &self,
        key: &[u8],
        retries: u32,
        action: UpdateAction<'_>,
    ) -> Result<VectorClock, VoldemortError> {
        for _ in 0..=retries {
            let siblings = self.get(key)?;
            let Some(new_value) = action(&siblings) else {
                // Action chose to abort; report the current clock.
                return Ok(siblings
                    .first()
                    .map(|v| v.clock.clone())
                    .unwrap_or_default());
            };
            // Base clock dominates all observed siblings, so a successful
            // put also reconciles any conflict.
            let base = siblings
                .iter()
                .fold(VectorClock::new(), |acc, v| acc.merged(&v.clock));
            match self.put(key, &base, new_value) {
                Ok(clock) => return Ok(clock),
                Err(VoldemortError::ObsoleteVersion) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(VoldemortError::RetriesExhausted(retries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreDef;

    fn cluster_with_store(
        nodes: u16,
        n: usize,
        r: usize,
        w: usize,
    ) -> (Arc<VoldemortCluster>, StoreClient) {
        let cluster = VoldemortCluster::new(32, nodes).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(n, r, w))
            .unwrap();
        let client = cluster.client("s").unwrap();
        (cluster, client)
    }

    #[test]
    fn put_get_round_trip() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        let clock = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        let got = client.get(b"k").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"v1");
        assert_eq!(got[0].clock, clock);
    }

    #[test]
    fn get_absent_key_is_empty() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        assert!(client.get(b"missing").unwrap().is_empty());
    }

    #[test]
    fn stale_put_gets_obsolete_version_error() {
        let (_cluster, client) = cluster_with_store(3, 2, 2, 2);
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        let _c2 = client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        // Re-using the stale clock c0 (empty) fails the optimistic lock.
        let err = client
            .put(b"k", &VectorClock::new(), Bytes::from_static(b"v3"))
            .unwrap_err();
        assert_eq!(err, VoldemortError::ObsoleteVersion);
    }

    #[test]
    fn writes_replicate_to_n_nodes() {
        let (cluster, client) = cluster_with_store(4, 3, 2, 2);
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 3).unwrap();
        for node in prefs {
            let versions = cluster.node(node).unwrap().get("s", b"k").unwrap();
            assert_eq!(versions.len(), 1, "replica {node} missing value");
        }
    }

    #[test]
    fn delete_removes_value() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        let clock = client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(client.delete(b"k", &clock).unwrap());
        assert!(client.get(b"k").unwrap().is_empty());
    }

    struct ListAppend;
    impl Transform for ListAppend {
        fn on_get(&self, value: &[u8]) -> Bytes {
            // Return only the last element of a comma-separated list —
            // the "sub-list" example from the paper.
            let s = std::str::from_utf8(value).unwrap_or("");
            Bytes::copy_from_slice(s.rsplit(',').next().unwrap_or("").as_bytes())
        }
        fn on_put(&self, current: Option<&[u8]>, input: &[u8]) -> Bytes {
            match current {
                Some(existing) if !existing.is_empty() => {
                    let mut out = existing.to_vec();
                    out.push(b',');
                    out.extend_from_slice(input);
                    Bytes::from(out)
                }
                _ => Bytes::copy_from_slice(input),
            }
        }
    }

    #[test]
    fn transforms_run_server_side() {
        let (_cluster, client) = cluster_with_store(3, 2, 2, 2);
        let c1 = client
            .put_with_transform(b"follows", &VectorClock::new(), Bytes::from_static(b"li"), &ListAppend)
            .unwrap();
        let c2 = client
            .put_with_transform(b"follows", &c1, Bytes::from_static(b"msft"), &ListAppend)
            .unwrap();
        let full = client.get(b"follows").unwrap();
        assert_eq!(full[0].value.as_ref(), b"li,msft");
        let tail = client.get_with_transform(b"follows", &ListAppend).unwrap();
        assert_eq!(tail[0].value.as_ref(), b"msft");
        let _ = c2;
    }

    #[test]
    fn apply_update_implements_counters() {
        let (_cluster, client) = cluster_with_store(3, 3, 2, 2);
        for _ in 0..10 {
            client
                .apply_update(b"counter", 3, &|siblings| {
                    let current: u64 = siblings
                        .first()
                        .and_then(|v| std::str::from_utf8(&v.value).ok())
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    Some(Bytes::from((current + 1).to_string()))
                })
                .unwrap();
        }
        let got = client.get(b"counter").unwrap();
        assert_eq!(got[0].value.as_ref(), b"10");
    }

    #[test]
    fn apply_update_abort_leaves_value() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        client.put_initial(b"k", Bytes::from_static(b"keep")).unwrap();
        client
            .apply_update(b"k", 3, &|_siblings| None)
            .unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"keep");
    }

    #[test]
    fn get_all_returns_present_keys_only() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        client.put_initial(b"a", Bytes::from_static(b"1")).unwrap();
        client.put_initial(b"b", Bytes::from_static(b"2")).unwrap();
        let got = client.get_all(&[b"a", b"b", b"missing"]).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[b"a".as_slice()][0].value.as_ref(), b"1");
        assert!(!got.contains_key(b"missing".as_slice()));
    }

    #[test]
    fn server_side_routing_same_semantics_extra_hop() {
        let (cluster, _direct) = cluster_with_store(3, 2, 2, 2);
        let coordinator = NodeId(0);
        let client = cluster.client("s").unwrap().with_server_routing(coordinator);
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v1");
        client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v2");
        // The coordinator is a single point for this client: losing it
        // fails requests (client-side routing would route around it).
        cluster.network().crash(coordinator);
        assert!(matches!(
            client.get(b"k"),
            Err(VoldemortError::Net(node, _)) if node == coordinator
        ));
        let direct = cluster.client("s").unwrap();
        assert!(direct.get(b"k").is_ok(), "client-side routing unaffected");
    }

    #[test]
    fn quorum_read_fails_when_too_many_replicas_down() {
        let (cluster, client) = cluster_with_store(3, 3, 2, 2);
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 3).unwrap();
        cluster.network().crash(prefs[0]);
        cluster.network().crash(prefs[1]);
        let err = client.get(b"k").unwrap_err();
        assert!(matches!(err, VoldemortError::InsufficientReads { .. }));
    }

    #[test]
    fn read_repair_fixes_stale_replica() {
        let (cluster, client) = cluster_with_store(3, 2, 2, 1);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 2).unwrap();
        // Write v1 everywhere, then v2 while replica 1 is down.
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        cluster.network().crash(prefs[1]);
        let c2 = client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        cluster.network().restart(prefs[1]);
        // Replica 1 is stale.
        let stale = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
        assert_eq!(stale[0].clock, c1);
        // Quorum read (R=2) observes both, returns v2, and repairs.
        let got = client.get(b"k").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"v2");
        let repaired = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
        assert_eq!(repaired.len(), 1);
        assert_eq!(repaired[0].clock, c2, "read repair wrote v2 back");
    }

    #[test]
    fn hinted_handoff_parks_and_replays() {
        let (cluster, client) = cluster_with_store(4, 2, 1, 2);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 2).unwrap();
        cluster.network().crash(prefs[1]);
        // W=2 met via 1 live replica + 1 hint on a fallback node.
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(cluster.pending_hints(), 1);
        // Target recovers; replay drains the hint onto it.
        cluster.network().restart(prefs[1]);
        assert_eq!(cluster.deliver_hints(), 1);
        assert_eq!(cluster.pending_hints(), 0);
        let recovered = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].value.as_ref(), b"v");
    }

    #[test]
    fn write_quorum_fails_when_no_fallbacks() {
        // 2 nodes, N=2: no fallback nodes exist outside the preference list.
        let (cluster, client) = cluster_with_store(2, 2, 1, 2);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 2).unwrap();
        cluster.network().crash(prefs[1]);
        let err = client.put_initial(b"k", Bytes::from_static(b"v")).unwrap_err();
        assert!(matches!(err, VoldemortError::InsufficientWrites { got: 1, .. }));
    }

    #[test]
    fn concurrent_writers_produce_siblings_resolved_by_update() {
        let (cluster, client) = cluster_with_store(4, 3, 3, 1);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 3).unwrap();
        // Writer A reaches only replica 0; writer B only replica 1
        // (simulated by crashing the others during each write; W=1).
        let c0 = client.put_initial(b"k", Bytes::from_static(b"base")).unwrap();
        cluster.network().crash(prefs[1]);
        cluster.network().crash(prefs[2]);
        let _a = client.put(b"k", &c0, Bytes::from_static(b"A")).unwrap();
        cluster.network().restart(prefs[1]);
        cluster.network().restart(prefs[2]);
        cluster.network().crash(prefs[0]);
        let _b = client.put(b"k", &c0, Bytes::from_static(b"B")).unwrap();
        cluster.network().restart(prefs[0]);
        // R=3 read sees both branches as concurrent siblings...
        let siblings = client.get(b"k").unwrap();
        assert_eq!(siblings.len(), 2, "expected divergent branches");
        // ...which apply_update reconciles (deterministically: max value).
        client
            .apply_update(b"k", 3, &|siblings| {
                let winner = siblings
                    .iter()
                    .map(|v| v.value.clone())
                    .max()
                    .unwrap_or_default();
                Some(winner)
            })
            .unwrap();
        let resolved = client.get(b"k").unwrap();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].value.as_ref(), b"B");
    }

    #[test]
    fn read_fan_out_all_masks_a_slow_replica() {
        let (cluster, client) = cluster_with_store(5, 3, 2, 2);
        let client = client.with_quorum_config(QuorumConfig {
            read_fan_out: ReadFanOut::All,
            ..QuorumConfig::default()
        });
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let prefs = cluster.ring().preference_list(b"k", 3).unwrap();
        // Make the *first* preference slow: serial/quorum fan-out would eat
        // its full latency; fanning to all N completes at the R=2 fastest.
        cluster.network().set_link_latency(
            StoreClient::CLIENT_NODE,
            prefs[0],
            Duration::from_millis(40),
        );
        let (versions, stats) = client.get_with_stats(b"k").unwrap();
        assert_eq!(versions[0].value.as_ref(), b"v");
        assert_eq!(stats.contacted, 3, "all N contacted");
        assert_eq!(
            stats.sim_latency,
            Duration::ZERO,
            "R-th fastest replica bounds the accounted latency"
        );
    }

    #[test]
    fn per_node_timeout_feeds_failure_detector() {
        let (cluster, client) = cluster_with_store(4, 3, 2, 2);
        let client = client.with_quorum_config(QuorumConfig {
            read_fan_out: ReadFanOut::All,
            per_node_timeout: Some(Duration::from_millis(5)),
            ..QuorumConfig::default()
        });
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let prefs = cluster.ring().preference_list(b"k", 3).unwrap();
        cluster.network().set_link_latency(
            StoreClient::CLIENT_NODE,
            prefs[2],
            Duration::from_millis(50),
        );
        // Reads keep succeeding (quorum from the two fast replicas) while
        // every timeout counts against the slow node's success ratio...
        for _ in 0..20 {
            client.get(b"k").unwrap();
        }
        // ...until the detector bans it like a dead node.
        assert!(!cluster.detector().is_available(prefs[2]));
        assert!(cluster.detector().is_available(prefs[0]));
    }

    #[test]
    fn parallel_mode_serves_quorum_reads_and_writes() {
        let (cluster, client) = cluster_with_store(5, 3, 2, 2);
        let client = client.with_quorum_config(QuorumConfig {
            mode: FanOutMode::Parallel,
            read_fan_out: ReadFanOut::All,
            ..QuorumConfig::default()
        });
        let mut clock = VectorClock::new();
        for i in 0..20u32 {
            clock = client
                .put(b"k", &clock, Bytes::from(i.to_string()))
                .unwrap();
            let got = client.get(b"k").unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].value.as_ref(), i.to_string().as_bytes());
        }
        // Stragglers (N−W late acks per put) finish on the shared pool.
        cluster.fan_out_pool().wait_idle();
        let prefs = cluster.ring().preference_list(b"k", 3).unwrap();
        for node in prefs {
            let versions = cluster.node(node).unwrap().get("s", b"k").unwrap();
            assert_eq!(versions.len(), 1, "replica {node} converged");
        }
    }

    #[test]
    fn hedged_read_recovers_tail_latency_and_counts() {
        let (cluster, client) = cluster_with_store(5, 3, 1, 1);
        let client = client.with_quorum_config(QuorumConfig {
            mode: FanOutMode::Parallel,
            read_fan_out: ReadFanOut::Quorum,
            hedge: Some(HedgeConfig {
                quantile: 0.95,
                min_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(2),
            }),
            simulate_latency: true,
            ..QuorumConfig::default()
        });
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let prefs = cluster.ring().preference_list(b"k", 3).unwrap();
        // R=1 with Quorum fan-out contacts only prefs[0] — make it slow so
        // the hedge to prefs[1] wins the race.
        cluster.network().set_link_latency(
            StoreClient::CLIENT_NODE,
            prefs[0],
            Duration::from_millis(250),
        );
        let start = Instant::now();
        let (versions, stats) = client.get_with_stats(b"k").unwrap();
        let elapsed = start.elapsed();
        assert_eq!(versions[0].value.as_ref(), b"v");
        assert_eq!(stats.hedges, 1, "hedge fired");
        assert_eq!(stats.hedge_wins, 1, "hedge supplied the quorum answer");
        assert!(
            elapsed < Duration::from_millis(200),
            "hedged read returned before the slow replica ({elapsed:?})"
        );
        let snapshot = cluster.metrics().snapshot();
        assert_eq!(snapshot.counter("voldemort.client.get.hedged"), Some(1));
        assert_eq!(snapshot.counter("voldemort.client.get.hedge_won"), Some(1));
        cluster.fan_out_pool().wait_idle();
    }
}
