//! The client API of Figure II.2 and the quorum coordination behind it.
//!
//! ```text
//! 1) VectorClock<V> get (K key)
//! 2) put (K key, VectorClock<V> value)
//! 3) VectorClock<V> get (K key, T transform)
//! 4) put (K key, VectorClock<V> value, T transform)
//! 5) applyUpdate(UpdateAction action, int retries)
//! ```
//!
//! This client implements **client-side routing** (the paper notes routing
//! is pluggable between client and server side): it holds the full
//! topology, computes the preference list, talks to R/W replicas itself,
//! performs read repair on stale replicas, and parks hinted-handoff writes
//! on fallback nodes when replicas are unreachable.

use bytes::Bytes;
use li_commons::clock::{resolve_siblings, VectorClock, Versioned};
use li_commons::metrics::{Counter, Histo};
use li_commons::ring::NodeId;
use std::sync::Arc;
use std::time::Instant;

use crate::cluster::VoldemortCluster;
use crate::error::VoldemortError;
use crate::server::Hint;
use crate::store::StoreDef;

/// A server-side transform (API methods 3 and 4): runs against the stored
/// value *on the node*, saving the round trip of shipping the whole value.
/// "For example, if the value is a list, we can run a transformed get to
/// retrieve a sub-list or a transformed put to append an entity to a list."
pub trait Transform: Send + Sync {
    /// Maps the stored value on a transformed get.
    fn on_get(&self, value: &[u8]) -> Bytes;

    /// Produces the new stored value from the current one and the client's
    /// input on a transformed put.
    fn on_put(&self, current: Option<&[u8]>, input: &[u8]) -> Bytes;
}

/// The read-modify-write closure for [`StoreClient::apply_update`]: given
/// the current siblings (empty when absent), produce the new value, or
/// `None` to abort.
pub type UpdateAction<'a> = &'a dyn Fn(&[Versioned<Bytes>]) -> Option<Bytes>;

/// Which side coordinates requests. "Voldemort supports both server and
/// client side routing by moving the routing and associated modules"
/// (§II.B): with client-side routing the client talks to every replica
/// itself; with server-side routing it makes one hop to a coordinator
/// node, which then fans out to the replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// The client holds the topology and coordinates quorums itself.
    ClientSide,
    /// All requests funnel through the given coordinator node.
    ServerSide(NodeId),
}

/// Client-side observability under the cluster registry's
/// `voldemort.client.` prefix: end-to-end latency per API call, quorum
/// outcomes, and writes that needed a hint to meet W (sloppy quorum).
#[derive(Debug, Clone)]
struct ClientMetrics {
    get_latency: Histo,
    put_latency: Histo,
    gets_ok: Counter,
    puts_ok: Counter,
    quorum_read_failures: Counter,
    quorum_write_failures: Counter,
    hinted_writes: Counter,
}

impl ClientMetrics {
    fn new(cluster: &VoldemortCluster) -> Self {
        let scope = cluster.metrics().scope("voldemort.client");
        ClientMetrics {
            get_latency: scope.histogram("get.latency_ns"),
            put_latency: scope.histogram("put.latency_ns"),
            gets_ok: scope.counter("get.ok"),
            puts_ok: scope.counter("put.ok"),
            quorum_read_failures: scope.counter("quorum.read_failures"),
            quorum_write_failures: scope.counter("quorum.write_failures"),
            hinted_writes: scope.counter("put.hinted"),
        }
    }
}

/// A client bound to one store.
pub struct StoreClient {
    cluster: Arc<VoldemortCluster>,
    store: StoreDef,
    routing: RoutingMode,
    metrics: ClientMetrics,
}

impl StoreClient {
    /// Virtual node id the client occupies on the simulated network.
    pub const CLIENT_NODE: NodeId = NodeId(u16::MAX);

    pub(crate) fn new(cluster: Arc<VoldemortCluster>, store: StoreDef) -> Self {
        let metrics = ClientMetrics::new(&cluster);
        StoreClient {
            cluster,
            store,
            routing: RoutingMode::ClientSide,
            metrics,
        }
    }

    /// Switches to server-side routing through `coordinator`: every
    /// request pays one extra hop to the coordinator, which then runs the
    /// replica fan-out (the module relocation the pluggable architecture
    /// allows).
    #[must_use]
    pub fn with_server_routing(mut self, coordinator: NodeId) -> Self {
        self.routing = RoutingMode::ServerSide(coordinator);
        self
    }

    /// The node that acts as the origin of replica traffic.
    fn origin(&self) -> NodeId {
        match self.routing {
            RoutingMode::ClientSide => Self::CLIENT_NODE,
            RoutingMode::ServerSide(coordinator) => coordinator,
        }
    }

    /// For server-side routing: the client -> coordinator hop itself.
    fn enter(&self) -> Result<(), VoldemortError> {
        if let RoutingMode::ServerSide(coordinator) = self.routing {
            self.cluster
                .network()
                .deliver(Self::CLIENT_NODE, coordinator)
                .map_err(|e| VoldemortError::Net(coordinator, e))?;
        }
        Ok(())
    }

    /// The store definition this client operates under.
    pub fn store_def(&self) -> &StoreDef {
        &self.store
    }

    fn preference_list(&self, key: &[u8]) -> Result<Vec<NodeId>, VoldemortError> {
        self.cluster.route(&self.store, key)
    }

    /// Attempts one remote call, maintaining the failure detector.
    fn call<T>(
        &self,
        node: NodeId,
        op: impl FnOnce() -> Result<T, VoldemortError>,
    ) -> Result<T, VoldemortError> {
        let detector = self.cluster.detector();
        match self.cluster.network().deliver(self.origin(), node) {
            Ok(_latency) => match op() {
                Ok(value) => {
                    detector.record_success(node);
                    Ok(value)
                }
                // An application-level rejection (e.g. ObsoleteVersion) is
                // a *successful* interaction for liveness purposes.
                Err(e) => {
                    detector.record_success(node);
                    Err(e)
                }
            },
            Err(net) => {
                detector.record_failure(node);
                Err(VoldemortError::Net(node, net))
            }
        }
    }

    /// API method 1: quorum get. Returns all concurrent siblings (empty
    /// when the key is absent); conflict resolution is the application's
    /// job, per the Dynamo design.
    pub fn get(&self, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        self.get_internal(key, None)
    }

    /// API method 3: transformed get — the transform runs server-side on
    /// each replica's value.
    pub fn get_with_transform(
        &self,
        key: &[u8],
        transform: &dyn Transform,
    ) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        self.get_internal(key, Some(transform))
    }

    fn get_internal(
        &self,
        key: &[u8],
        transform: Option<&dyn Transform>,
    ) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        let start = Instant::now();
        let result = self.get_quorum(key, transform);
        self.metrics.get_latency.record_duration(start.elapsed());
        match &result {
            Ok(_) => self.metrics.gets_ok.inc(),
            Err(VoldemortError::InsufficientReads { .. }) => {
                self.metrics.quorum_read_failures.inc();
            }
            Err(_) => {}
        }
        result
    }

    fn get_quorum(
        &self,
        key: &[u8],
        transform: Option<&dyn Transform>,
    ) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        self.enter()?;
        let prefs = self.preference_list(key)?;
        let detector = self.cluster.detector();
        let mut responses: Vec<(NodeId, Vec<Versioned<Bytes>>)> = Vec::new();
        for &node in &prefs {
            if responses.len() >= self.store.required_reads {
                break;
            }
            if !detector.is_available(node) {
                continue;
            }
            let Ok(server) = self.cluster.node(node) else {
                continue;
            };
            match self.call(node, || server.get(&self.store.name, key)) {
                Ok(versions) => responses.push((node, versions)),
                Err(_) => continue,
            }
        }
        if responses.len() < self.store.required_reads {
            return Err(VoldemortError::InsufficientReads {
                required: self.store.required_reads,
                got: responses.len(),
            });
        }

        // Merge all observed versions into the live sibling set.
        let mut merged: Vec<Versioned<Bytes>> = Vec::new();
        for (_, versions) in &responses {
            for version in versions {
                resolve_siblings(&mut merged, version.clone());
            }
        }

        // Read repair: push missing versions back to stale responders.
        for (node, versions) in &responses {
            for version in &merged {
                let has = versions.iter().any(|v| v.clock == version.clock);
                if !has {
                    if let Ok(server) = self.cluster.node(*node) {
                        let _ = self.call(*node, || {
                            server.force_put(&self.store.name, key, version.clone())
                        });
                    }
                }
            }
        }

        match transform {
            Some(t) => Ok(merged
                .into_iter()
                .map(|v| {
                    let transformed = t.on_get(&v.value);
                    Versioned::new(v.clock, transformed)
                })
                .collect()),
            None => Ok(merged),
        }
    }

    /// API method 2: quorum put. `clock` must be the version the caller
    /// read (or empty for a first write); the coordinator increments it and
    /// requires W replica acknowledgements. Unreachable replicas get their
    /// write parked as a hint on the next available node (sloppy quorum).
    pub fn put(
        &self,
        key: &[u8],
        clock: &VectorClock,
        value: Bytes,
    ) -> Result<VectorClock, VoldemortError> {
        self.put_internal(key, clock, value, None)
    }

    /// Convenience for a first write (empty base clock).
    pub fn put_initial(&self, key: &[u8], value: Bytes) -> Result<VectorClock, VoldemortError> {
        self.put(key, &VectorClock::new(), value)
    }

    /// API method 4: transformed put — each replica derives the stored
    /// value from its current value and the client's (small) input.
    pub fn put_with_transform(
        &self,
        key: &[u8],
        clock: &VectorClock,
        input: Bytes,
        transform: &dyn Transform,
    ) -> Result<VectorClock, VoldemortError> {
        self.put_internal(key, clock, input, Some(transform))
    }

    fn put_internal(
        &self,
        key: &[u8],
        clock: &VectorClock,
        value: Bytes,
        transform: Option<&dyn Transform>,
    ) -> Result<VectorClock, VoldemortError> {
        let start = Instant::now();
        let result = self.put_quorum(key, clock, value, transform);
        self.metrics.put_latency.record_duration(start.elapsed());
        match &result {
            Ok(_) => self.metrics.puts_ok.inc(),
            Err(VoldemortError::InsufficientWrites { .. }) => {
                self.metrics.quorum_write_failures.inc();
            }
            Err(_) => {}
        }
        result
    }

    fn put_quorum(
        &self,
        key: &[u8],
        clock: &VectorClock,
        value: Bytes,
        transform: Option<&dyn Transform>,
    ) -> Result<VectorClock, VoldemortError> {
        self.enter()?;
        let prefs = self.preference_list(key)?;
        // The first replica that actually accepts the write acts as the
        // coordinator: its node id stamps the incremented vector clock, as
        // in Dynamo. Two writers racing through disjoint replica subsets
        // therefore produce *concurrent* clocks (siblings), while writers
        // sharing a replica collide on the optimistic lock.
        let mut committed_clock: Option<VectorClock> = None;

        let detector = self.cluster.detector();
        let mut acks = 0usize;
        let mut failed_replicas: Vec<NodeId> = Vec::new();
        for &node in &prefs {
            let server = match self.cluster.node(node) {
                Ok(s) => s,
                Err(_) => {
                    failed_replicas.push(node);
                    continue;
                }
            };
            if !detector.is_available(node) {
                failed_replicas.push(node);
                continue;
            }
            let candidate = committed_clock
                .clone()
                .unwrap_or_else(|| clock.incremented(node.0));
            let outcome = self.call(node, || {
                let stored_value = match transform {
                    Some(t) => {
                        let current = server.get(&self.store.name, key)?;
                        // Transform against the newest value this replica has.
                        let current_bytes = current.first().map(|v| v.value.clone());
                        t.on_put(current_bytes.as_deref(), &value)
                    }
                    None => value.clone(),
                };
                server.put(
                    &self.store.name,
                    key,
                    Versioned::new(candidate.clone(), stored_value),
                )
            });
            match outcome {
                Ok(()) => {
                    committed_clock.get_or_insert(candidate);
                    acks += 1;
                }
                Err(VoldemortError::ObsoleteVersion) => {
                    // Optimistic lock: someone committed a newer version.
                    return Err(VoldemortError::ObsoleteVersion);
                }
                // An engine-level rejection is a property of the store, not
                // of this replica — no other replica (or hint) will accept
                // it either.
                Err(e @ VoldemortError::UnsupportedOperation(_)) => return Err(e),
                Err(_) => failed_replicas.push(node),
            }
        }
        let new_clock = committed_clock
            .unwrap_or_else(|| clock.incremented(prefs[0].0));

        // Hinted handoff: park failed replicas' writes on fallback nodes.
        if acks < self.store.required_writes && !failed_replicas.is_empty() {
            let fallbacks: Vec<NodeId> = self
                .cluster
                .node_ids()
                .into_iter()
                .filter(|n| !prefs.contains(n) && detector.is_available(*n))
                .collect();
            let mut fallback_iter = fallbacks.into_iter();
            for &target in &failed_replicas {
                if acks >= self.store.required_writes {
                    break;
                }
                let Some(holder_id) = fallback_iter.next() else {
                    break;
                };
                let Ok(holder) = self.cluster.node(holder_id) else {
                    continue;
                };
                let hint = Hint {
                    store: self.store.name.clone(),
                    target,
                    key: Bytes::copy_from_slice(key),
                    value: Versioned::new(new_clock.clone(), value.clone()),
                };
                if self.call(holder_id, || {
                    holder.store_hint(hint);
                    Ok(())
                })
                .is_ok()
                {
                    acks += 1;
                    self.metrics.hinted_writes.inc();
                }
            }
        }

        if acks < self.store.required_writes {
            return Err(VoldemortError::InsufficientWrites {
                required: self.store.required_writes,
                got: acks,
            });
        }
        Ok(new_clock)
    }

    /// Quorum delete at version `clock`.
    pub fn delete(&self, key: &[u8], clock: &VectorClock) -> Result<bool, VoldemortError> {
        self.enter()?;
        let prefs = self.preference_list(key)?;
        let mut acks = 0usize;
        let mut any_deleted = false;
        for &node in &prefs {
            let Ok(server) = self.cluster.node(node) else {
                continue;
            };
            if let Ok(deleted) = self.call(node, || server.delete(&self.store.name, key, clock)) {
                acks += 1;
                any_deleted |= deleted;
            }
        }
        if acks < self.store.required_writes {
            return Err(VoldemortError::InsufficientWrites {
                required: self.store.required_writes,
                got: acks,
            });
        }
        Ok(any_deleted)
    }

    /// Batch get: one call, many keys (Voldemort's `getAll`). Keys that
    /// fail their read quorum are simply absent from the result map, so a
    /// partially degraded cluster still serves what it can.
    pub fn get_all(
        &self,
        keys: &[&[u8]],
    ) -> Result<std::collections::HashMap<Vec<u8>, Vec<Versioned<Bytes>>>, VoldemortError> {
        let mut out = std::collections::HashMap::with_capacity(keys.len());
        for &key in keys {
            match self.get(key) {
                Ok(versions) if !versions.is_empty() => {
                    out.insert(key.to_vec(), versions);
                }
                Ok(_) => {}
                Err(VoldemortError::InsufficientReads { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// API method 5: `applyUpdate` — encapsulated read-modify-write with
    /// optimistic-lock retry, "used in cases like counters where
    /// 'read, modify, write if no change' loops are required."
    pub fn apply_update(
        &self,
        key: &[u8],
        retries: u32,
        action: UpdateAction<'_>,
    ) -> Result<VectorClock, VoldemortError> {
        for _ in 0..=retries {
            let siblings = self.get(key)?;
            let Some(new_value) = action(&siblings) else {
                // Action chose to abort; report the current clock.
                return Ok(siblings
                    .first()
                    .map(|v| v.clock.clone())
                    .unwrap_or_default());
            };
            // Base clock dominates all observed siblings, so a successful
            // put also reconciles any conflict.
            let base = siblings
                .iter()
                .fold(VectorClock::new(), |acc, v| acc.merged(&v.clock));
            match self.put(key, &base, new_value) {
                Ok(clock) => return Ok(clock),
                Err(VoldemortError::ObsoleteVersion) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(VoldemortError::RetriesExhausted(retries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreDef;

    fn cluster_with_store(
        nodes: u16,
        n: usize,
        r: usize,
        w: usize,
    ) -> (Arc<VoldemortCluster>, StoreClient) {
        let cluster = VoldemortCluster::new(32, nodes).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(n, r, w))
            .unwrap();
        let client = cluster.client("s").unwrap();
        (cluster, client)
    }

    #[test]
    fn put_get_round_trip() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        let clock = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        let got = client.get(b"k").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"v1");
        assert_eq!(got[0].clock, clock);
    }

    #[test]
    fn get_absent_key_is_empty() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        assert!(client.get(b"missing").unwrap().is_empty());
    }

    #[test]
    fn stale_put_gets_obsolete_version_error() {
        let (_cluster, client) = cluster_with_store(3, 2, 2, 2);
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        let _c2 = client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        // Re-using the stale clock c0 (empty) fails the optimistic lock.
        let err = client
            .put(b"k", &VectorClock::new(), Bytes::from_static(b"v3"))
            .unwrap_err();
        assert_eq!(err, VoldemortError::ObsoleteVersion);
    }

    #[test]
    fn writes_replicate_to_n_nodes() {
        let (cluster, client) = cluster_with_store(4, 3, 2, 2);
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 3).unwrap();
        for node in prefs {
            let versions = cluster.node(node).unwrap().get("s", b"k").unwrap();
            assert_eq!(versions.len(), 1, "replica {node} missing value");
        }
    }

    #[test]
    fn delete_removes_value() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        let clock = client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        assert!(client.delete(b"k", &clock).unwrap());
        assert!(client.get(b"k").unwrap().is_empty());
    }

    struct ListAppend;
    impl Transform for ListAppend {
        fn on_get(&self, value: &[u8]) -> Bytes {
            // Return only the last element of a comma-separated list —
            // the "sub-list" example from the paper.
            let s = std::str::from_utf8(value).unwrap_or("");
            Bytes::copy_from_slice(s.rsplit(',').next().unwrap_or("").as_bytes())
        }
        fn on_put(&self, current: Option<&[u8]>, input: &[u8]) -> Bytes {
            match current {
                Some(existing) if !existing.is_empty() => {
                    let mut out = existing.to_vec();
                    out.push(b',');
                    out.extend_from_slice(input);
                    Bytes::from(out)
                }
                _ => Bytes::copy_from_slice(input),
            }
        }
    }

    #[test]
    fn transforms_run_server_side() {
        let (_cluster, client) = cluster_with_store(3, 2, 2, 2);
        let c1 = client
            .put_with_transform(b"follows", &VectorClock::new(), Bytes::from_static(b"li"), &ListAppend)
            .unwrap();
        let c2 = client
            .put_with_transform(b"follows", &c1, Bytes::from_static(b"msft"), &ListAppend)
            .unwrap();
        let full = client.get(b"follows").unwrap();
        assert_eq!(full[0].value.as_ref(), b"li,msft");
        let tail = client.get_with_transform(b"follows", &ListAppend).unwrap();
        assert_eq!(tail[0].value.as_ref(), b"msft");
        let _ = c2;
    }

    #[test]
    fn apply_update_implements_counters() {
        let (_cluster, client) = cluster_with_store(3, 3, 2, 2);
        for _ in 0..10 {
            client
                .apply_update(b"counter", 3, &|siblings| {
                    let current: u64 = siblings
                        .first()
                        .and_then(|v| std::str::from_utf8(&v.value).ok())
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    Some(Bytes::from((current + 1).to_string()))
                })
                .unwrap();
        }
        let got = client.get(b"counter").unwrap();
        assert_eq!(got[0].value.as_ref(), b"10");
    }

    #[test]
    fn apply_update_abort_leaves_value() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        client.put_initial(b"k", Bytes::from_static(b"keep")).unwrap();
        client
            .apply_update(b"k", 3, &|_siblings| None)
            .unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"keep");
    }

    #[test]
    fn get_all_returns_present_keys_only() {
        let (_cluster, client) = cluster_with_store(3, 2, 1, 1);
        client.put_initial(b"a", Bytes::from_static(b"1")).unwrap();
        client.put_initial(b"b", Bytes::from_static(b"2")).unwrap();
        let got = client.get_all(&[b"a", b"b", b"missing"]).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[b"a".as_slice()][0].value.as_ref(), b"1");
        assert!(!got.contains_key(b"missing".as_slice()));
    }

    #[test]
    fn server_side_routing_same_semantics_extra_hop() {
        let (cluster, _direct) = cluster_with_store(3, 2, 2, 2);
        let coordinator = NodeId(0);
        let client = cluster.client("s").unwrap().with_server_routing(coordinator);
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v1");
        client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v2");
        // The coordinator is a single point for this client: losing it
        // fails requests (client-side routing would route around it).
        cluster.network().crash(coordinator);
        assert!(matches!(
            client.get(b"k"),
            Err(VoldemortError::Net(node, _)) if node == coordinator
        ));
        let direct = cluster.client("s").unwrap();
        assert!(direct.get(b"k").is_ok(), "client-side routing unaffected");
    }

    #[test]
    fn quorum_read_fails_when_too_many_replicas_down() {
        let (cluster, client) = cluster_with_store(3, 3, 2, 2);
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 3).unwrap();
        cluster.network().crash(prefs[0]);
        cluster.network().crash(prefs[1]);
        let err = client.get(b"k").unwrap_err();
        assert!(matches!(err, VoldemortError::InsufficientReads { .. }));
    }

    #[test]
    fn read_repair_fixes_stale_replica() {
        let (cluster, client) = cluster_with_store(3, 2, 2, 1);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 2).unwrap();
        // Write v1 everywhere, then v2 while replica 1 is down.
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        cluster.network().crash(prefs[1]);
        let c2 = client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        cluster.network().restart(prefs[1]);
        // Replica 1 is stale.
        let stale = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
        assert_eq!(stale[0].clock, c1);
        // Quorum read (R=2) observes both, returns v2, and repairs.
        let got = client.get(b"k").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"v2");
        let repaired = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
        assert_eq!(repaired.len(), 1);
        assert_eq!(repaired[0].clock, c2, "read repair wrote v2 back");
    }

    #[test]
    fn hinted_handoff_parks_and_replays() {
        let (cluster, client) = cluster_with_store(4, 2, 1, 2);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 2).unwrap();
        cluster.network().crash(prefs[1]);
        // W=2 met via 1 live replica + 1 hint on a fallback node.
        client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(cluster.pending_hints(), 1);
        // Target recovers; replay drains the hint onto it.
        cluster.network().restart(prefs[1]);
        assert_eq!(cluster.deliver_hints(), 1);
        assert_eq!(cluster.pending_hints(), 0);
        let recovered = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].value.as_ref(), b"v");
    }

    #[test]
    fn write_quorum_fails_when_no_fallbacks() {
        // 2 nodes, N=2: no fallback nodes exist outside the preference list.
        let (cluster, client) = cluster_with_store(2, 2, 1, 2);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 2).unwrap();
        cluster.network().crash(prefs[1]);
        let err = client.put_initial(b"k", Bytes::from_static(b"v")).unwrap_err();
        assert!(matches!(err, VoldemortError::InsufficientWrites { got: 1, .. }));
    }

    #[test]
    fn concurrent_writers_produce_siblings_resolved_by_update() {
        let (cluster, client) = cluster_with_store(4, 3, 3, 1);
        let ring = cluster.ring();
        let prefs = ring.preference_list(b"k", 3).unwrap();
        // Writer A reaches only replica 0; writer B only replica 1
        // (simulated by crashing the others during each write; W=1).
        let c0 = client.put_initial(b"k", Bytes::from_static(b"base")).unwrap();
        cluster.network().crash(prefs[1]);
        cluster.network().crash(prefs[2]);
        let _a = client.put(b"k", &c0, Bytes::from_static(b"A")).unwrap();
        cluster.network().restart(prefs[1]);
        cluster.network().restart(prefs[2]);
        cluster.network().crash(prefs[0]);
        let _b = client.put(b"k", &c0, Bytes::from_static(b"B")).unwrap();
        cluster.network().restart(prefs[0]);
        // R=3 read sees both branches as concurrent siblings...
        let siblings = client.get(b"k").unwrap();
        assert_eq!(siblings.len(), 2, "expected divergent branches");
        // ...which apply_update reconciles (deterministically: max value).
        client
            .apply_update(b"k", 3, &|siblings| {
                let winner = siblings
                    .iter()
                    .map(|v| v.value.clone())
                    .max()
                    .unwrap_or_default();
                Some(winner)
            })
            .unwrap();
        let resolved = client.get(b"k").unwrap();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].value.as_ref(), b"B");
    }
}
