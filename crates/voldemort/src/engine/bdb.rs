//! Log-structured read-write engine — the BerkeleyDB JE analog.
//!
//! The paper's read-write stores run on "BerkeleyDB Java Edition (BDB)
//! \[OBS99\]" (§II.B). BDB JE is itself a log-structured store: every write
//! appends to a sequential log and an in-memory btree indexes the latest
//! entries. This engine reproduces that shape — sequential append on
//! write, indexed lookup on read, recovery by log replay, and periodic
//! compaction — which is what gives the paper's read-write clusters their
//! write-throughput/read-latency profile (benchmarked against the
//! read-only engine in `li-bench`).

use bytes::Bytes;
use li_commons::bufio;
use li_commons::clock::{VectorClock, Versioned};
use li_commons::varint;
use parking_lot::Mutex;
use std::collections::BTreeMap;

use super::{slot_delete, slot_put, StorageEngine};
use crate::error::VoldemortError;

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

#[derive(Debug, Default)]
struct Inner {
    index: BTreeMap<Vec<u8>, Vec<Versioned<Bytes>>>,
    log: Vec<u8>,
    /// Live bytes estimate for compaction heuristics.
    records_since_compaction: usize,
}

/// Log-structured engine with an in-memory index over an append-only log.
#[derive(Debug, Default)]
pub struct BdbLikeEngine {
    inner: Mutex<Inner>,
}

fn encode_put(key: &[u8], value: &Versioned<Bytes>) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + value.value.len() + 16);
    out.push(OP_PUT);
    varint::write_bytes(&mut out, key);
    value.clock.encode(&mut out);
    varint::write_bytes(&mut out, &value.value);
    out
}

fn encode_delete(key: &[u8], clock: &VectorClock) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 16);
    out.push(OP_DELETE);
    varint::write_bytes(&mut out, key);
    clock.encode(&mut out);
    out
}

impl BdbLikeEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialized log bytes (the durable artifact).
    pub fn log_bytes(&self) -> Vec<u8> {
        self.inner.lock().log.clone()
    }

    /// Current log size in bytes.
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Rebuilds an engine by replaying a log, stopping at the first torn
    /// frame (crash recovery).
    pub fn recover(log: &[u8]) -> Self {
        let engine = Self::new();
        let (frames, valid) = bufio::recover(log);
        {
            let mut inner = engine.inner.lock();
            for frame in &frames {
                let mut cursor = &frame[..];
                if cursor.is_empty() {
                    break;
                }
                let op = cursor[0];
                cursor = &cursor[1..];
                let Ok(key) = varint::read_bytes(&mut cursor) else {
                    break;
                };
                let Ok(clock) = VectorClock::decode(&mut cursor) else {
                    break;
                };
                match op {
                    OP_PUT => {
                        let Ok(value) = varint::read_bytes(&mut cursor) else {
                            break;
                        };
                        let slot = inner.index.entry(key.clone()).or_default();
                        // Replay ignores obsolescence: the log is history.
                        let _ = slot_put(slot, Versioned::new(clock, Bytes::from(value)));
                        if inner.index.get(&key).is_some_and(Vec::is_empty) {
                            inner.index.remove(&key);
                        }
                    }
                    OP_DELETE => {
                        if let Some(slot) = inner.index.get_mut(&key) {
                            slot_delete(slot, &clock);
                            if slot.is_empty() {
                                inner.index.remove(&key);
                            }
                        }
                    }
                    _ => break,
                }
            }
            inner.log = log[..valid].to_vec();
        }
        engine
    }

    /// Rewrites the log to contain only live versions, reclaiming space
    /// from superseded writes (BDB JE's cleaner).
    pub fn compact(&self) {
        let mut inner = self.inner.lock();
        let mut fresh = Vec::with_capacity(inner.log.len() / 2);
        for (key, slot) in &inner.index {
            for version in slot {
                bufio::write_frame(&mut fresh, &encode_put(key, version));
            }
        }
        inner.log = fresh;
        inner.records_since_compaction = 0;
    }
}

impl StorageEngine for BdbLikeEngine {
    fn get(&self, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        Ok(self.inner.lock().index.get(key).cloned().unwrap_or_default())
    }

    fn put(&self, key: &[u8], value: Versioned<Bytes>) -> Result<(), VoldemortError> {
        let mut inner = self.inner.lock();
        let slot = inner.index.entry(key.to_vec()).or_default();
        let outcome = slot_put(slot, value.clone());
        if slot.is_empty() {
            inner.index.remove(key);
        }
        if outcome.is_ok() {
            let record = encode_put(key, &value);
            bufio::write_frame(&mut inner.log, &record);
            inner.records_since_compaction += 1;
        }
        outcome
    }

    fn delete(&self, key: &[u8], clock: &VectorClock) -> Result<bool, VoldemortError> {
        let mut inner = self.inner.lock();
        let Some(slot) = inner.index.get_mut(key) else {
            return Ok(false);
        };
        let removed = slot_delete(slot, clock);
        if slot.is_empty() {
            inner.index.remove(key);
        }
        if removed {
            let record = encode_delete(key, clock);
            bufio::write_frame(&mut inner.log, &record);
            inner.records_since_compaction += 1;
        }
        Ok(removed)
    }

    fn entries(&self) -> Vec<(Bytes, Vec<Versioned<Bytes>>)> {
        self.inner
            .lock()
            .index
            .iter()
            .map(|(k, v)| (Bytes::copy_from_slice(k), v.clone()))
            .collect()
    }

    fn key_count(&self) -> usize {
        self.inner.lock().index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforms_to_engine_contract() {
        crate::engine::conformance::run_all(|| Box::new(BdbLikeEngine::new()));
    }

    fn versioned(n: u64, value: &str) -> Versioned<Bytes> {
        Versioned::new(VectorClock::with(1, n), Bytes::copy_from_slice(value.as_bytes()))
    }

    #[test]
    fn recovery_replays_log() {
        let engine = BdbLikeEngine::new();
        engine.put(b"a", versioned(1, "v1")).unwrap();
        engine.put(b"a", versioned(2, "v2")).unwrap();
        engine.put(b"b", versioned(1, "x")).unwrap();
        engine.delete(b"b", &VectorClock::with(1, 1)).unwrap();
        let log = engine.log_bytes();

        let recovered = BdbLikeEngine::recover(&log);
        let a = recovered.get(b"a").unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].value.as_ref(), b"v2");
        assert!(recovered.get(b"b").unwrap().is_empty());
        assert_eq!(recovered.key_count(), 1);
    }

    #[test]
    fn recovery_truncates_torn_write() {
        let engine = BdbLikeEngine::new();
        engine.put(b"a", versioned(1, "v1")).unwrap();
        let keep = engine.log_len();
        engine.put(b"b", versioned(1, "v2")).unwrap();
        let mut log = engine.log_bytes();
        log.truncate(keep + 5); // tear the second frame
        let recovered = BdbLikeEngine::recover(&log);
        assert_eq!(recovered.key_count(), 1);
        assert!(!recovered.get(b"a").unwrap().is_empty());
        assert!(recovered.get(b"b").unwrap().is_empty());
    }

    #[test]
    fn compaction_shrinks_log_preserves_data() {
        let engine = BdbLikeEngine::new();
        for i in 1..=100u64 {
            engine.put(b"hot", versioned(i, &format!("v{i}"))).unwrap();
        }
        let before = engine.log_len();
        engine.compact();
        let after = engine.log_len();
        assert!(after < before / 10, "compaction {before} -> {after}");
        // Data intact, including through recovery of the compacted log.
        let recovered = BdbLikeEngine::recover(&engine.log_bytes());
        assert_eq!(recovered.get(b"hot").unwrap()[0].value.as_ref(), b"v100");
    }

    #[test]
    fn obsolete_puts_do_not_pollute_log() {
        let engine = BdbLikeEngine::new();
        engine.put(b"k", versioned(5, "new")).unwrap();
        let len = engine.log_len();
        assert!(engine.put(b"k", versioned(1, "old")).is_err());
        assert_eq!(engine.log_len(), len, "rejected write not logged");
    }

    #[test]
    fn compaction_preserves_concurrent_siblings() {
        let engine = BdbLikeEngine::new();
        let base = VectorClock::with(1, 1);
        engine
            .put(b"k", Versioned::new(base.incremented(2), Bytes::from_static(b"left")))
            .unwrap();
        engine
            .put(b"k", Versioned::new(base.incremented(3), Bytes::from_static(b"right")))
            .unwrap();
        engine.compact();
        let recovered = BdbLikeEngine::recover(&engine.log_bytes());
        assert_eq!(recovered.get(b"k").unwrap().len(), 2, "both siblings survive");
    }

    #[test]
    fn concurrent_writers_never_corrupt_log() {
        use std::sync::Arc;
        let engine = Arc::new(BdbLikeEngine::new());
        let mut handles = Vec::new();
        for t in 0..4u16 {
            let engine = engine.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let key = format!("t{t}-k{i}");
                    engine
                        .put(
                            key.as_bytes(),
                            Versioned::new(VectorClock::with(t, 1), Bytes::from_static(b"v")),
                        )
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.key_count(), 400);
        // The log is a valid frame sequence end to end.
        let recovered = BdbLikeEngine::recover(&engine.log_bytes());
        assert_eq!(recovered.key_count(), 400);
    }

    #[test]
    fn writes_are_sequential_appends() {
        let engine = BdbLikeEngine::new();
        let mut last = 0;
        for i in 0..50u64 {
            engine
                .put(format!("k{i}").as_bytes(), versioned(1, "value"))
                .unwrap();
            let len = engine.log_len();
            assert!(len > last, "log only grows");
            last = len;
        }
    }
}
