//! Volatile in-memory engine.

use bytes::Bytes;
use li_commons::clock::{VectorClock, Versioned};
use parking_lot::RwLock;
use std::collections::BTreeMap;

use super::{slot_delete, slot_put, StorageEngine};
use crate::error::VoldemortError;

/// A BTreeMap-backed engine: the simplest conforming implementation, used
/// for caches, tests, and as the mock the paper's pluggable design calls
/// for.
#[derive(Debug, Default)]
pub struct MemoryEngine {
    map: RwLock<BTreeMap<Vec<u8>, Vec<Versioned<Bytes>>>>,
}

impl MemoryEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageEngine for MemoryEngine {
    fn get(&self, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError> {
        Ok(self.map.read().get(key).cloned().unwrap_or_default())
    }

    fn put(&self, key: &[u8], value: Versioned<Bytes>) -> Result<(), VoldemortError> {
        let mut map = self.map.write();
        let slot = map.entry(key.to_vec()).or_default();
        let result = slot_put(slot, value);
        if slot.is_empty() {
            map.remove(key);
        }
        result
    }

    fn delete(&self, key: &[u8], clock: &VectorClock) -> Result<bool, VoldemortError> {
        let mut map = self.map.write();
        let Some(slot) = map.get_mut(key) else {
            return Ok(false);
        };
        let removed = slot_delete(slot, clock);
        if slot.is_empty() {
            map.remove(key);
        }
        Ok(removed)
    }

    fn entries(&self) -> Vec<(Bytes, Vec<Versioned<Bytes>>)> {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (Bytes::copy_from_slice(k), v.clone()))
            .collect()
    }

    fn key_count(&self) -> usize {
        self.map.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforms_to_engine_contract() {
        crate::engine::conformance::run_all(|| Box::new(MemoryEngine::new()));
    }
}
