//! Pluggable storage engines.
//!
//! "Every module in the architecture implements the same code interface
//! thereby making it easy to (a) interchange modules ... and (b) test code
//! easily by mocking modules" (§II.B). [`StorageEngine`] is that interface
//! for the storage layer; the server holds one boxed engine per store.

mod bdb;
mod mem;

pub use bdb::BdbLikeEngine;
pub use mem::MemoryEngine;

use bytes::Bytes;
use li_commons::clock::{VectorClock, Versioned};

use crate::error::VoldemortError;

/// The storage interface every engine implements. Engines store the full
/// sibling set per key: concurrent vector-clocked versions coexist until a
/// descendant write reconciles them.
pub trait StorageEngine: Send + Sync {
    /// All live versions of `key` (empty when absent).
    fn get(&self, key: &[u8]) -> Result<Vec<Versioned<Bytes>>, VoldemortError>;

    /// Stores a version. Fails with [`VoldemortError::ObsoleteVersion`]
    /// when an existing version is equal to or dominates the candidate —
    /// the optimistic-lock signal propagated to clients.
    fn put(&self, key: &[u8], value: Versioned<Bytes>) -> Result<(), VoldemortError>;

    /// Stores a version without surfacing obsolescence (used by read
    /// repair, hinted-handoff replay, and rebalancing, where a stale
    /// incoming version is silently dropped rather than an error).
    fn force_put(&self, key: &[u8], value: Versioned<Bytes>) -> Result<(), VoldemortError> {
        match self.put(key, value) {
            Ok(()) | Err(VoldemortError::ObsoleteVersion) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Deletes every version of `key` dominated by (or equal to) `clock`.
    /// Concurrent siblings survive. Returns true when anything was removed.
    fn delete(&self, key: &[u8], clock: &VectorClock) -> Result<bool, VoldemortError>;

    /// Snapshot of all entries — the bulk interface used by rebalancing
    /// and hinted-handoff drains.
    fn entries(&self) -> Vec<(Bytes, Vec<Versioned<Bytes>>)>;

    /// Number of keys with at least one live version.
    fn key_count(&self) -> usize;
}

/// Shared sibling-slot mutation used by the read-write engines.
pub(crate) fn slot_put(
    slot: &mut Vec<Versioned<Bytes>>,
    value: Versioned<Bytes>,
) -> Result<(), VoldemortError> {
    if li_commons::clock::resolve_siblings(slot, value) {
        Ok(())
    } else {
        Err(VoldemortError::ObsoleteVersion)
    }
}

/// Shared delete logic: drop versions `<= clock`.
pub(crate) fn slot_delete(slot: &mut Vec<Versioned<Bytes>>, clock: &VectorClock) -> bool {
    let before = slot.len();
    slot.retain(|v| {
        !matches!(
            v.clock.compare(clock),
            li_commons::clock::Occurred::Before | li_commons::clock::Occurred::Equal
        )
    });
    before != slot.len()
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Engine-agnostic conformance tests, run against every engine — the
    //! "same code interface" promise made executable.

    use super::*;
    use li_commons::clock::VectorClock;

    pub fn run_all(make: impl Fn() -> Box<dyn StorageEngine>) {
        get_empty(make());
        put_then_get(make());
        obsolete_put_rejected(make());
        concurrent_siblings_coexist(make());
        force_put_swallows_obsolete(make());
        delete_dominated_versions(make());
        delete_spares_concurrent(make());
        entries_snapshot(make());
    }

    fn v(clock: VectorClock, value: &str) -> Versioned<Bytes> {
        Versioned::new(clock, Bytes::copy_from_slice(value.as_bytes()))
    }

    fn get_empty(e: Box<dyn StorageEngine>) {
        assert!(e.get(b"missing").unwrap().is_empty());
        assert_eq!(e.key_count(), 0);
    }

    fn put_then_get(e: Box<dyn StorageEngine>) {
        let clock = VectorClock::with(1, 1);
        e.put(b"k", v(clock.clone(), "hello")).unwrap();
        let got = e.get(b"k").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"hello");
        assert_eq!(got[0].clock, clock);
        assert_eq!(e.key_count(), 1);
    }

    fn obsolete_put_rejected(e: Box<dyn StorageEngine>) {
        let c1 = VectorClock::with(1, 1);
        let c2 = c1.incremented(1);
        e.put(b"k", v(c2, "new")).unwrap();
        assert_eq!(
            e.put(b"k", v(c1.clone(), "old")).unwrap_err(),
            VoldemortError::ObsoleteVersion
        );
        // Equal clock is obsolete too (already written).
        let existing = e.get(b"k").unwrap()[0].clock.clone();
        assert_eq!(
            e.put(b"k", v(existing, "same")).unwrap_err(),
            VoldemortError::ObsoleteVersion
        );
    }

    fn concurrent_siblings_coexist(e: Box<dyn StorageEngine>) {
        let base = VectorClock::with(1, 1);
        e.put(b"k", v(base.clone(), "base")).unwrap();
        e.put(b"k", v(base.incremented(2), "left")).unwrap();
        e.put(b"k", v(base.incremented(3), "right")).unwrap();
        let siblings = e.get(b"k").unwrap();
        assert_eq!(siblings.len(), 2, "left/right concurrent");
        // A write descending from both collapses the set.
        let merged = siblings[0].clock.merged(&siblings[1].clock).incremented(1);
        e.put(b"k", v(merged, "resolved")).unwrap();
        let after = e.get(b"k").unwrap();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].value.as_ref(), b"resolved");
    }

    fn force_put_swallows_obsolete(e: Box<dyn StorageEngine>) {
        let c1 = VectorClock::with(1, 1);
        let c2 = c1.incremented(1);
        e.put(b"k", v(c2.clone(), "new")).unwrap();
        e.force_put(b"k", v(c1, "old")).unwrap();
        let got = e.get(b"k").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"new");
    }

    fn delete_dominated_versions(e: Box<dyn StorageEngine>) {
        let c1 = VectorClock::with(1, 1);
        e.put(b"k", v(c1.clone(), "x")).unwrap();
        assert!(e.delete(b"k", &c1).unwrap());
        assert!(e.get(b"k").unwrap().is_empty());
        assert!(!e.delete(b"k", &c1).unwrap(), "second delete is no-op");
        assert_eq!(e.key_count(), 0);
    }

    fn delete_spares_concurrent(e: Box<dyn StorageEngine>) {
        let base = VectorClock::with(1, 1);
        let left = base.incremented(2);
        let right = base.incremented(3);
        e.put(b"k", v(left.clone(), "left")).unwrap();
        e.put(b"k", v(right, "right")).unwrap();
        // Deleting at `left` removes only the left sibling.
        assert!(e.delete(b"k", &left).unwrap());
        let rest = e.get(b"k").unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].value.as_ref(), b"right");
    }

    fn entries_snapshot(e: Box<dyn StorageEngine>) {
        for i in 0..5 {
            let key = format!("k{i}");
            e.put(key.as_bytes(), v(VectorClock::with(1, 1), "v")).unwrap();
        }
        let mut entries = e.entries();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].0.as_ref(), b"k0");
        assert_eq!(e.key_count(), 5);
    }
}
