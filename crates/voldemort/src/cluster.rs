//! The cluster runtime: nodes, topology, failure detection, admin service.

use li_commons::clock::Occurred;
use li_commons::exec::FanOutPool;
use li_commons::failure::{FailureDetector, FailureDetectorConfig};
use li_commons::metrics::MetricsRegistry;
use li_commons::ring::{HashRing, NodeId, PartitionId, ZoneId};
use li_commons::sim::{Clock, RealClock, SimNetwork};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use crate::client::StoreClient;
use crate::engine::{BdbLikeEngine, MemoryEngine, StorageEngine};
use crate::error::VoldemortError;
use crate::readonly::{ReadOnlyEngine, ReadOnlyStore};
use crate::routing::Router;
use crate::server::VoldemortNode;
use crate::store::{EngineKind, StoreDef};

/// A whole Voldemort cluster, in process. Nodes are real state machines;
/// the network between the coordinator and nodes is the injectable
/// [`SimNetwork`], so crashes, partitions, and drops exercise the same code
/// paths they would in production.
pub struct VoldemortCluster {
    nodes: RwLock<HashMap<NodeId, Arc<VoldemortNode>>>,
    router: RwLock<Router>,
    stores: RwLock<HashMap<String, StoreDef>>,
    network: SimNetwork,
    detector: FailureDetector,
    clock: Arc<dyn Clock>,
    metrics: Arc<MetricsRegistry>,
    /// Read-mostly handle to the shared fan-out pool: quorum ops take the
    /// read lock (never the write path once initialized), so concurrent
    /// clients don't serialize on a mutex just to clone the pool `Arc`.
    fan_out_pool: RwLock<Option<Arc<FanOutPool>>>,
    /// How many times `fan_out_pool()` fell through to the init (write)
    /// path. Stays at 1 after first use — the proof that the per-op read
    /// path acquires no exclusive lock.
    pool_init_acquisitions: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for VoldemortCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VoldemortCluster")
            .field("nodes", &self.nodes.read().len())
            .field("stores", &self.stores.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl VoldemortCluster {
    /// Builds a single-zone cluster of `node_count` nodes over
    /// `num_partitions` logical partitions, with a reliable network and the
    /// real clock.
    pub fn new(num_partitions: u32, node_count: u16) -> Result<Arc<Self>, VoldemortError> {
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let ring = HashRing::balanced(num_partitions, &nodes)?;
        Self::with_parts(ring, SimNetwork::reliable(), Arc::new(RealClock::new()))
    }

    /// Builds a two-zone cluster (the paper's two-datacenter deployments):
    /// even nodes in zone 0, odd nodes in zone 1.
    pub fn new_two_zone(
        num_partitions: u32,
        node_count: u16,
    ) -> Result<Arc<Self>, VoldemortError> {
        let layout: Vec<(NodeId, ZoneId)> = (0..node_count)
            .map(|i| (NodeId(i), ZoneId((i % 2) as u8)))
            .collect();
        let ring = HashRing::zoned(num_partitions, &layout)?;
        Self::with_parts(ring, SimNetwork::reliable(), Arc::new(RealClock::new()))
    }

    /// Fully-injected constructor for failure testing.
    pub fn with_parts(
        ring: HashRing,
        network: SimNetwork,
        clock: Arc<dyn Clock>,
    ) -> Result<Arc<Self>, VoldemortError> {
        Self::with_metrics(ring, network, clock, &MetricsRegistry::new())
    }

    /// Fully-injected constructor that reports into a shared metrics
    /// registry (names under `voldemort.`).
    pub fn with_metrics(
        ring: HashRing,
        network: SimNetwork,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Arc<Self>, VoldemortError> {
        let metrics = Arc::clone(registry);
        let nodes = ring
            .nodes()
            .into_iter()
            .map(|id| (id, Arc::new(VoldemortNode::with_metrics(id, &metrics))))
            .collect();
        Ok(Arc::new(VoldemortCluster {
            nodes: RwLock::new(nodes),
            router: RwLock::new(Router::new(ring)),
            stores: RwLock::new(HashMap::new()),
            network,
            detector: FailureDetector::new(FailureDetectorConfig::default(), clock.clone()),
            clock,
            metrics,
            fan_out_pool: RwLock::new(None),
            pool_init_acquisitions: std::sync::atomic::AtomicU64::new(0),
        }))
    }

    /// The metrics registry every node and client of this cluster reports
    /// into (names under `voldemort.`).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The injectable network (crash/partition/drop controls).
    pub fn network(&self) -> &SimNetwork {
        &self.network
    }

    /// The failure detector shared by all clients of this cluster.
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// The cluster clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The shared worker pool behind every client's parallel quorum
    /// fan-out. Created lazily on first use, so clusters that only ever
    /// run the deterministic inline mode spawn no threads. After that
    /// first call, every acquisition is a shared read-lock clone — no
    /// exclusive lock on the per-operation path.
    pub fn fan_out_pool(&self) -> Arc<FanOutPool> {
        if let Some(pool) = self.fan_out_pool.read().as_ref() {
            return Arc::clone(pool);
        }
        self.pool_init_acquisitions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Arc::clone(
            self.fan_out_pool
                .write()
                .get_or_insert_with(|| Arc::new(FanOutPool::new(8))),
        )
    }

    /// Times the slow (exclusive-lock) path of [`Self::fan_out_pool`] ran.
    /// Settles at a small constant (1, absent a benign init race) no
    /// matter how many quorum operations execute.
    pub fn fan_out_pool_init_acquisitions(&self) -> u64 {
        self.pool_init_acquisitions
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A node handle.
    pub fn node(&self, id: NodeId) -> Result<Arc<VoldemortNode>, VoldemortError> {
        self.nodes
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| VoldemortError::Routing(format!("no node {id}")))
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Snapshot of the current topology.
    pub fn ring(&self) -> HashRing {
        self.router.read().ring().clone()
    }

    pub(crate) fn route(
        &self,
        store: &StoreDef,
        key: &[u8],
    ) -> Result<Vec<NodeId>, VoldemortError> {
        self.router.read().route(store, key)
    }

    /// Creates a store on every node (admin service "add store" — no
    /// downtime, existing stores unaffected). Read-write engines only; use
    /// [`VoldemortCluster::add_read_only_store`] for the pipeline-fed kind.
    pub fn add_store(&self, def: StoreDef) -> Result<(), VoldemortError> {
        def.validate().map_err(VoldemortError::Admin)?;
        if def.engine == EngineKind::ReadOnly {
            return Err(VoldemortError::Admin(
                "read-only stores need a directory; use add_read_only_store".into(),
            ));
        }
        let mut stores = self.stores.write();
        if stores.contains_key(&def.name) {
            return Err(VoldemortError::DuplicateStore(def.name));
        }
        for node in self.nodes.read().values() {
            let engine: Arc<dyn StorageEngine> = match def.engine {
                EngineKind::Memory => Arc::new(MemoryEngine::new()),
                EngineKind::BdbLike => Arc::new(BdbLikeEngine::new()),
                EngineKind::ReadOnly => unreachable!("rejected above"),
            };
            node.add_store(&def.name, engine)?;
        }
        stores.insert(def.name.clone(), def);
        Ok(())
    }

    /// Creates a read-only store across the cluster, rooted at
    /// `dir/node-<id>/<store>` on each node. Returns the per-node store
    /// handles for driving the pull/swap pipeline.
    pub fn add_read_only_store(
        &self,
        def: StoreDef,
        dir: &Path,
    ) -> Result<Vec<Arc<ReadOnlyStore>>, VoldemortError> {
        def.validate().map_err(VoldemortError::Admin)?;
        let mut stores = self.stores.write();
        if stores.contains_key(&def.name) {
            return Err(VoldemortError::DuplicateStore(def.name));
        }
        let ring = self.router.read().ring().clone();
        let mut handles = Vec::new();
        for id in self.node_ids() {
            let store = Arc::new(ReadOnlyStore::open(
                dir.join(format!("node-{}", id.0)).join(&def.name),
                id,
                ring.clone(),
                def.replication,
            )?);
            self.node(id)?
                .add_store(&def.name, Arc::new(ReadOnlyEngine::new(store.clone())))?;
            handles.push(store);
        }
        stores.insert(def.name.clone(), def);
        Ok(handles)
    }

    /// Deletes a store from every node (admin "delete store").
    pub fn delete_store(&self, name: &str) -> Result<(), VoldemortError> {
        let mut stores = self.stores.write();
        stores
            .remove(name)
            .ok_or_else(|| VoldemortError::UnknownStore(name.into()))?;
        for node in self.nodes.read().values() {
            node.remove_store(name)?;
        }
        Ok(())
    }

    /// The definition of `store`.
    pub fn store_def(&self, store: &str) -> Result<StoreDef, VoldemortError> {
        self.stores
            .read()
            .get(store)
            .cloned()
            .ok_or_else(|| VoldemortError::UnknownStore(store.into()))
    }

    /// Opens a client for `store`.
    pub fn client(self: &Arc<Self>, store: &str) -> Result<StoreClient, VoldemortError> {
        let def = self.store_def(store)?;
        Ok(StoreClient::new(self.clone(), def))
    }

    /// Runs one round of asynchronous recovery probes: banned nodes that
    /// are due get pinged over the network; reachable ones rejoin the
    /// available pool. "Once marked down the node is considered online only
    /// when an asynchronous thread is able to contact it again."
    pub fn run_failure_probes(&self) {
        for node in self.detector.nodes_due_for_probe() {
            let reachable = self.network.deliver(StoreClient::CLIENT_NODE, node).is_ok()
                && self.nodes.read().get(&node).is_some_and(|n| n.ping());
            self.detector.probe_result(node, reachable);
        }
    }

    /// Replays hinted-handoff hints whose targets are reachable again.
    /// Returns the number of hints delivered.
    ///
    /// A hint can race a concurrent client put: the target may already
    /// hold a version that supersedes (or equals) the parked write. Such
    /// hints are dropped instead of replayed — force-putting them would
    /// resurrect an overwritten version as a spurious sibling. Dropped
    /// hints count under `voldemort.hints.dropped_obsolete`.
    pub fn deliver_hints(&self) -> usize {
        let dropped_obsolete = self
            .metrics
            .scope("voldemort.hints")
            .counter("dropped_obsolete");
        let mut delivered = 0;
        let targets: Vec<NodeId> = self.node_ids();
        // Sorted so replay order (and any RNG the network consumes per
        // delivery) is deterministic run-to-run.
        let mut holders: Vec<Arc<VoldemortNode>> = self.nodes.read().values().cloned().collect();
        holders.sort_by_key(|n| n.id());
        for holder in &holders {
            for &target in &targets {
                if target == holder.id() {
                    continue;
                }
                if self.network.deliver(holder.id(), target).is_err() {
                    continue;
                }
                for hint in holder.take_hints_for(target) {
                    if let Ok(target_node) = self.node(target) {
                        let obsolete = target_node
                            .get(&hint.store, &hint.key)
                            .map(|current| {
                                current.iter().any(|v| {
                                    matches!(
                                        v.clock.compare(&hint.value.clock),
                                        Occurred::After | Occurred::Equal
                                    )
                                })
                            })
                            .unwrap_or(false);
                        if obsolete {
                            dropped_obsolete.inc();
                            continue;
                        }
                        if target_node
                            .force_put(&hint.store, &hint.key, hint.value.clone())
                            .is_ok()
                        {
                            delivered += 1;
                        } else {
                            holder.store_hint(hint);
                        }
                    }
                }
            }
        }
        delivered
    }

    /// Total pending hints across the cluster.
    pub fn pending_hints(&self) -> usize {
        self.nodes.read().values().map(|n| n.hint_count()).sum()
    }

    /// Admin: migrates one logical partition to `to` for all read-write
    /// stores, then atomically flips ownership in the routing table.
    /// Requests during the copy keep hitting the old owner; the flip under
    /// the router write lock is the "redirecting requests of moving
    /// partitions to their new destination" moment.
    pub fn migrate_partition(
        &self,
        partition: PartitionId,
        to: NodeId,
    ) -> Result<(), VoldemortError> {
        // Copy phase (router still points at the donor).
        let (donor, ring) = {
            let router = self.router.read();
            (router.ring().owner_of(partition), router.ring().clone())
        };
        if donor == to {
            return Ok(());
        }
        let target = self.node(to)?;
        let donor_node = self.node(donor)?;
        let stores: Vec<StoreDef> = self.stores.read().values().cloned().collect();
        for def in &stores {
            if def.engine == EngineKind::ReadOnly {
                // Read-only stores move via a fresh pull from the build
                // output, not via entry copy.
                continue;
            }
            let engine = donor_node.engine(&def.name)?;
            for (key, versions) in engine.entries() {
                let master = ring.master_partition(&key);
                let replicas = ring.replica_partitions(master, def.replication)?;
                if replicas.contains(&partition) {
                    for version in versions {
                        target.force_put(&def.name, &key, version)?;
                    }
                }
            }
        }
        // Flip phase: atomic wrt routing.
        let mut router = self.router.write();
        router.ring_mut().reassign(partition, to)?;
        Ok(())
    }

    /// Admin: adds a fresh node to the cluster (zone 0) without downtime —
    /// creates it, attaches engines for every read-write store, registers
    /// it in the topology, then migrates its fair share of partitions one
    /// at a time. Returns the moved partitions.
    ///
    /// Read-only stores are excluded: their data moves by re-running the
    /// pull phase against the next build, which already targets the new
    /// topology.
    pub fn rebalance_in_new_node(
        &self,
        id: NodeId,
    ) -> Result<Vec<PartitionId>, VoldemortError> {
        {
            let mut nodes = self.nodes.write();
            if nodes.contains_key(&id) {
                return Err(VoldemortError::Admin(format!("{id} already in cluster")));
            }
            let node = Arc::new(VoldemortNode::with_metrics(id, &self.metrics));
            for def in self.stores.read().values() {
                let engine: Arc<dyn StorageEngine> = match def.engine {
                    EngineKind::Memory => Arc::new(MemoryEngine::new()),
                    EngineKind::BdbLike => Arc::new(BdbLikeEngine::new()),
                    EngineKind::ReadOnly => {
                        return Err(VoldemortError::Admin(
                            "cannot dynamically add a node to a cluster with read-only \
                             stores; rebuild and re-pull instead"
                                .into(),
                        ))
                    }
                };
                node.add_store(&def.name, engine)?;
            }
            nodes.insert(id, node);
        }
        let moves = {
            let mut router = self.router.write();
            router.ring_mut().add_node(id, ZoneId(0));
            router.ring().plan_rebalance(id)
        };
        let mut moved = Vec::with_capacity(moves.len());
        for (partition, _, to) in moves {
            self.migrate_partition(partition, to)?;
            moved.push(partition);
        }
        Ok(moved)
    }
}

/// Chaos-scheduler hooks. Voldemort's failure surface is entirely the
/// network: a crash makes the node unreachable (its storage survives —
/// the paper's nodes recover with their BDB intact), and a pause is
/// modeled the same way (a GC-paused node is indistinguishable from a
/// dead one to its peers).
impl li_commons::chaos::FaultHooks for VoldemortCluster {
    fn crash(&self, node: NodeId) {
        self.network.crash(node);
    }

    fn restart(&self, node: NodeId) {
        self.network.restart(node);
    }

    fn pause(&self, node: NodeId) {
        self.network.crash(node);
    }

    fn resume(&self, node: NodeId) {
        self.network.restart(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn add_and_delete_stores() {
        let cluster = VoldemortCluster::new(16, 3).unwrap();
        cluster.add_store(StoreDef::read_write("follows")).unwrap();
        assert!(matches!(
            cluster.add_store(StoreDef::read_write("follows")),
            Err(VoldemortError::DuplicateStore(_))
        ));
        cluster.delete_store("follows").unwrap();
        assert!(cluster.store_def("follows").is_err());
        assert!(matches!(
            cluster.delete_store("follows"),
            Err(VoldemortError::UnknownStore(_))
        ));
    }

    #[test]
    fn fan_out_pool_reads_take_no_exclusive_lock_after_init() {
        let cluster = VoldemortCluster::new(8, 2).unwrap();
        assert_eq!(cluster.fan_out_pool_init_acquisitions(), 0, "lazy");
        let first = cluster.fan_out_pool();
        assert_eq!(cluster.fan_out_pool_init_acquisitions(), 1);
        // 16 concurrent acquisitions all ride the read path.
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cluster = cluster.clone();
            handles.push(std::thread::spawn(move || cluster.fan_out_pool()));
        }
        for h in handles {
            assert!(Arc::ptr_eq(&h.join().unwrap(), &first), "one shared pool");
        }
        assert_eq!(
            cluster.fan_out_pool_init_acquisitions(),
            1,
            "zero exclusive acquisitions on the read path"
        );
    }

    #[test]
    fn invalid_store_def_rejected() {
        let cluster = VoldemortCluster::new(16, 2).unwrap();
        let bad = StoreDef::read_write("s").with_quorum(3, 1, 4);
        assert!(matches!(
            cluster.add_store(bad),
            Err(VoldemortError::Admin(_))
        ));
    }

    #[test]
    fn read_only_store_requires_dedicated_path() {
        let cluster = VoldemortCluster::new(8, 1).unwrap();
        assert!(matches!(
            cluster.add_store(StoreDef::read_only("ro")),
            Err(VoldemortError::Admin(_))
        ));
    }

    #[test]
    fn migrate_partition_moves_data_and_ownership() {
        let cluster = VoldemortCluster::new(8, 2).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(1, 1, 1))
            .unwrap();
        let client = cluster.client("s").unwrap();
        for i in 0..200 {
            client
                .put_initial(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
                .unwrap();
        }
        let ring = cluster.ring();
        // Move every partition owned by node 0 to node 1.
        let moving = ring.partitions_of(NodeId(0));
        for p in &moving {
            cluster.migrate_partition(*p, NodeId(1)).unwrap();
        }
        // All keys still readable (now served entirely by node 1).
        for i in 0..200 {
            let got = client.get(format!("k{i}").as_bytes()).unwrap();
            assert_eq!(got.len(), 1, "k{i} lost in migration");
        }
        assert!(cluster.ring().partitions_of(NodeId(0)).is_empty());
    }
}
