//! The cluster runtime: nodes, topology, failure detection, admin service.

use bytes::Bytes;
use li_commons::clock::{resolve_siblings, Occurred, VectorClock, Versioned};
use li_commons::exec::FanOutPool;
use li_commons::failure::{FailureDetector, FailureDetectorConfig};
use li_commons::fnv::fnv1a;
use li_commons::metrics::MetricsRegistry;
use li_commons::migrate::{MigrationConfig, MigrationCoordinator};
use li_commons::ring::{HashRing, NodeId, PartitionId, ZoneId};
use li_commons::sim::{Clock, RealClock, SimNetwork};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::client::StoreClient;
use crate::engine::{BdbLikeEngine, MemoryEngine, StorageEngine};
use crate::error::VoldemortError;
use crate::migrate::{ActiveMigration, JournaledWrite, PartitionMigration};
use crate::readonly::{ReadOnlyEngine, ReadOnlyStore};
use crate::routing::Router;
use crate::server::VoldemortNode;
use crate::store::{EngineKind, StoreDef};

/// A whole Voldemort cluster, in process. Nodes are real state machines;
/// the network between the coordinator and nodes is the injectable
/// [`SimNetwork`], so crashes, partitions, and drops exercise the same code
/// paths they would in production.
pub struct VoldemortCluster {
    nodes: RwLock<HashMap<NodeId, Arc<VoldemortNode>>>,
    router: RwLock<Router>,
    stores: RwLock<HashMap<String, StoreDef>>,
    network: SimNetwork,
    detector: FailureDetector,
    clock: Arc<dyn Clock>,
    metrics: Arc<MetricsRegistry>,
    /// Read-mostly handle to the shared fan-out pool: quorum ops take the
    /// read lock (never the write path once initialized), so concurrent
    /// clients don't serialize on a mutex just to clone the pool `Arc`.
    fan_out_pool: RwLock<Option<Arc<FanOutPool>>>,
    /// How many times `fan_out_pool()` fell through to the init (write)
    /// path. Stays at 1 after first use — the proof that the per-op read
    /// path acquires no exclusive lock.
    pool_init_acquisitions: std::sync::atomic::AtomicU64,
    /// The (at most one) in-flight partition migration. Client ack hooks
    /// take the read side per acked write; cutover takes the write side,
    /// so the final journal drain cannot race an in-flight append.
    /// Lock order: this lock before `router`, everywhere.
    migration: RwLock<Option<Arc<ActiveMigration>>>,
    /// Bumped on every routing change (cutover flip, rebalance). Clients
    /// capture it before routing a write and re-check after the ack: if it
    /// moved, the preference list may have flipped mid-flight and the
    /// committed version is pushed to any newly-gained replica.
    topology_epoch: AtomicU64,
}

impl std::fmt::Debug for VoldemortCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VoldemortCluster")
            .field("nodes", &self.nodes.read().len())
            .field("stores", &self.stores.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl VoldemortCluster {
    /// Builds a single-zone cluster of `node_count` nodes over
    /// `num_partitions` logical partitions, with a reliable network and the
    /// real clock.
    pub fn new(num_partitions: u32, node_count: u16) -> Result<Arc<Self>, VoldemortError> {
        let nodes: Vec<NodeId> = (0..node_count).map(NodeId).collect();
        let ring = HashRing::balanced(num_partitions, &nodes)?;
        Self::with_parts(ring, SimNetwork::reliable(), Arc::new(RealClock::new()))
    }

    /// Builds a two-zone cluster (the paper's two-datacenter deployments):
    /// even nodes in zone 0, odd nodes in zone 1.
    pub fn new_two_zone(
        num_partitions: u32,
        node_count: u16,
    ) -> Result<Arc<Self>, VoldemortError> {
        let layout: Vec<(NodeId, ZoneId)> = (0..node_count)
            .map(|i| (NodeId(i), ZoneId((i % 2) as u8)))
            .collect();
        let ring = HashRing::zoned(num_partitions, &layout)?;
        Self::with_parts(ring, SimNetwork::reliable(), Arc::new(RealClock::new()))
    }

    /// Fully-injected constructor for failure testing.
    pub fn with_parts(
        ring: HashRing,
        network: SimNetwork,
        clock: Arc<dyn Clock>,
    ) -> Result<Arc<Self>, VoldemortError> {
        Self::with_metrics(ring, network, clock, &MetricsRegistry::new())
    }

    /// Fully-injected constructor that reports into a shared metrics
    /// registry (names under `voldemort.`).
    pub fn with_metrics(
        ring: HashRing,
        network: SimNetwork,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Arc<Self>, VoldemortError> {
        let metrics = Arc::clone(registry);
        let nodes = ring
            .nodes()
            .into_iter()
            .map(|id| (id, Arc::new(VoldemortNode::with_metrics(id, &metrics))))
            .collect();
        Ok(Arc::new(VoldemortCluster {
            nodes: RwLock::new(nodes),
            router: RwLock::new(Router::new(ring)),
            stores: RwLock::new(HashMap::new()),
            network,
            detector: FailureDetector::new(FailureDetectorConfig::default(), clock.clone()),
            clock,
            metrics,
            fan_out_pool: RwLock::new(None),
            pool_init_acquisitions: std::sync::atomic::AtomicU64::new(0),
            migration: RwLock::new(None),
            topology_epoch: AtomicU64::new(0),
        }))
    }

    /// The metrics registry every node and client of this cluster reports
    /// into (names under `voldemort.`).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The injectable network (crash/partition/drop controls).
    pub fn network(&self) -> &SimNetwork {
        &self.network
    }

    /// The failure detector shared by all clients of this cluster.
    pub fn detector(&self) -> &FailureDetector {
        &self.detector
    }

    /// The cluster clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The shared worker pool behind every client's parallel quorum
    /// fan-out. Created lazily on first use, so clusters that only ever
    /// run the deterministic inline mode spawn no threads. After that
    /// first call, every acquisition is a shared read-lock clone — no
    /// exclusive lock on the per-operation path.
    pub fn fan_out_pool(&self) -> Arc<FanOutPool> {
        if let Some(pool) = self.fan_out_pool.read().as_ref() {
            return Arc::clone(pool);
        }
        self.pool_init_acquisitions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Arc::clone(
            self.fan_out_pool
                .write()
                .get_or_insert_with(|| Arc::new(FanOutPool::new(8))),
        )
    }

    /// Times the slow (exclusive-lock) path of [`Self::fan_out_pool`] ran.
    /// Settles at a small constant (1, absent a benign init race) no
    /// matter how many quorum operations execute.
    pub fn fan_out_pool_init_acquisitions(&self) -> u64 {
        self.pool_init_acquisitions
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A node handle.
    pub fn node(&self, id: NodeId) -> Result<Arc<VoldemortNode>, VoldemortError> {
        self.nodes
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| VoldemortError::Routing(format!("no node {id}")))
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Snapshot of the current topology.
    pub fn ring(&self) -> HashRing {
        self.router.read().ring().clone()
    }

    pub(crate) fn route(
        &self,
        store: &StoreDef,
        key: &[u8],
    ) -> Result<Vec<NodeId>, VoldemortError> {
        self.router.read().route(store, key)
    }

    /// Creates a store on every node (admin service "add store" — no
    /// downtime, existing stores unaffected). Read-write engines only; use
    /// [`VoldemortCluster::add_read_only_store`] for the pipeline-fed kind.
    pub fn add_store(&self, def: StoreDef) -> Result<(), VoldemortError> {
        def.validate().map_err(VoldemortError::Admin)?;
        if def.engine == EngineKind::ReadOnly {
            return Err(VoldemortError::Admin(
                "read-only stores need a directory; use add_read_only_store".into(),
            ));
        }
        let mut stores = self.stores.write();
        if stores.contains_key(&def.name) {
            return Err(VoldemortError::DuplicateStore(def.name));
        }
        for node in self.nodes.read().values() {
            let engine: Arc<dyn StorageEngine> = match def.engine {
                EngineKind::Memory => Arc::new(MemoryEngine::new()),
                EngineKind::BdbLike => Arc::new(BdbLikeEngine::new()),
                EngineKind::ReadOnly => unreachable!("rejected above"),
            };
            node.add_store(&def.name, engine)?;
        }
        stores.insert(def.name.clone(), def);
        Ok(())
    }

    /// Creates a read-only store across the cluster, rooted at
    /// `dir/node-<id>/<store>` on each node. Returns the per-node store
    /// handles for driving the pull/swap pipeline.
    pub fn add_read_only_store(
        &self,
        def: StoreDef,
        dir: &Path,
    ) -> Result<Vec<Arc<ReadOnlyStore>>, VoldemortError> {
        def.validate().map_err(VoldemortError::Admin)?;
        let mut stores = self.stores.write();
        if stores.contains_key(&def.name) {
            return Err(VoldemortError::DuplicateStore(def.name));
        }
        let ring = self.router.read().ring().clone();
        let mut handles = Vec::new();
        for id in self.node_ids() {
            let store = Arc::new(ReadOnlyStore::open(
                dir.join(format!("node-{}", id.0)).join(&def.name),
                id,
                ring.clone(),
                def.replication,
            )?);
            self.node(id)?
                .add_store(&def.name, Arc::new(ReadOnlyEngine::new(store.clone())))?;
            handles.push(store);
        }
        stores.insert(def.name.clone(), def);
        Ok(handles)
    }

    /// Deletes a store from every node (admin "delete store").
    pub fn delete_store(&self, name: &str) -> Result<(), VoldemortError> {
        let mut stores = self.stores.write();
        stores
            .remove(name)
            .ok_or_else(|| VoldemortError::UnknownStore(name.into()))?;
        for node in self.nodes.read().values() {
            node.remove_store(name)?;
        }
        Ok(())
    }

    /// The definition of `store`.
    pub fn store_def(&self, store: &str) -> Result<StoreDef, VoldemortError> {
        self.stores
            .read()
            .get(store)
            .cloned()
            .ok_or_else(|| VoldemortError::UnknownStore(store.into()))
    }

    /// Opens a client for `store`.
    pub fn client(self: &Arc<Self>, store: &str) -> Result<StoreClient, VoldemortError> {
        let def = self.store_def(store)?;
        Ok(StoreClient::new(self.clone(), def))
    }

    /// Runs one round of asynchronous recovery probes: banned nodes that
    /// are due get pinged over the network; reachable ones rejoin the
    /// available pool. "Once marked down the node is considered online only
    /// when an asynchronous thread is able to contact it again."
    pub fn run_failure_probes(&self) {
        for node in self.detector.nodes_due_for_probe() {
            let reachable = self.network.deliver(StoreClient::CLIENT_NODE, node).is_ok()
                && self.nodes.read().get(&node).is_some_and(|n| n.ping());
            self.detector.probe_result(node, reachable);
        }
    }

    /// Replays hinted-handoff hints whose targets are reachable again.
    /// Returns the number of replica force-puts performed.
    ///
    /// Hints are routed via the ring *as it is now*, not the ring at park
    /// time: a partition move can cut over while hints are pending, and
    /// replaying to the old preference-list owner would strand the write
    /// on a node no longer serving the key. The hint's original target is
    /// tried first when it is still a replica; every other current replica
    /// missing the version also gets it.
    ///
    /// A hint can race a concurrent client put: a replica may already hold
    /// a version that supersedes (or equals) the parked write. Such hints
    /// are dropped instead of replayed — force-putting them would
    /// resurrect an overwritten version as a spurious sibling. Dropped
    /// hints count under `voldemort.hints.dropped_obsolete`. A hint whose
    /// write could not be landed on (or confirmed at) any current replica
    /// is re-parked for a later round.
    pub fn deliver_hints(&self) -> usize {
        let dropped_obsolete = self
            .metrics
            .scope("voldemort.hints")
            .counter("dropped_obsolete");
        let mut delivered = 0;
        // Sorted so replay order (and any RNG the network consumes per
        // delivery) is deterministic run-to-run.
        let mut holders: Vec<Arc<VoldemortNode>> = self.nodes.read().values().cloned().collect();
        holders.sort_by_key(|n| n.id());
        for holder in &holders {
            for hint in holder.take_all_hints() {
                let Ok(def) = self.store_def(&hint.store) else {
                    holder.store_hint(hint);
                    continue;
                };
                let Ok(prefs) = self.route(&def, &hint.key) else {
                    holder.store_hint(hint);
                    continue;
                };
                let mut candidates: Vec<NodeId> = Vec::with_capacity(prefs.len());
                if prefs.contains(&hint.target) {
                    candidates.push(hint.target);
                }
                candidates.extend(prefs.iter().copied().filter(|n| *n != hint.target));
                let mut landed = false;
                let mut superseded = false;
                for &target in &candidates {
                    let Ok(target_node) = self.node(target) else {
                        continue;
                    };
                    if target != holder.id()
                        && self.network.deliver(holder.id(), target).is_err()
                    {
                        continue;
                    }
                    let obsolete = target_node
                        .get(&hint.store, &hint.key)
                        .map(|current| {
                            current.iter().any(|v| {
                                matches!(
                                    v.clock.compare(&hint.value.clock),
                                    Occurred::After | Occurred::Equal
                                )
                            })
                        })
                        .unwrap_or(false);
                    if obsolete {
                        superseded = true;
                        continue;
                    }
                    if target_node
                        .force_put(&hint.store, &hint.key, hint.value.clone())
                        .is_ok()
                    {
                        delivered += 1;
                        landed = true;
                    }
                }
                // `landed` means a current replica holds it now (read
                // repair converges the rest), so the hint is done.
                if !landed {
                    if superseded {
                        dropped_obsolete.inc();
                    } else {
                        holder.store_hint(hint);
                    }
                }
            }
        }
        delivered
    }

    /// Total pending hints across the cluster.
    pub fn pending_hints(&self) -> usize {
        self.nodes.read().values().map(|n| n.hint_count()).sum()
    }

    /// Monotonic routing-change counter: bumped on every cutover flip and
    /// topology change. Clients capture it before routing a write and
    /// re-check after the ack to detect a cutover that raced the quorum.
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch.load(Ordering::Acquire)
    }

    /// The read-write store definitions, sorted by name (deterministic
    /// iteration order for migration phases and fingerprints). Read-only
    /// stores are excluded everywhere data moves by entry copy: they move
    /// via a fresh pull from the build output instead.
    pub(crate) fn rw_store_defs(&self) -> Vec<StoreDef> {
        let mut defs: Vec<StoreDef> = self
            .stores
            .read()
            .values()
            .filter(|d| d.engine != EngineKind::ReadOnly)
            .cloned()
            .collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }

    /// Begins an online migration of `partition` to `to`, returning the
    /// step-driven [`PartitionMigration`] driver (or `None` when `to`
    /// already owns the partition). At most one migration is in flight at
    /// a time. Reads and writes are never blocked: routing keeps serving
    /// the source ring until [`li_commons::migrate::MigrationCoordinator`]
    /// walks the driver through snapshot → delta catch-up → dual-write →
    /// cutover.
    pub fn begin_partition_migration(
        self: &Arc<Self>,
        partition: PartitionId,
        to: NodeId,
    ) -> Result<Option<PartitionMigration>, VoldemortError> {
        self.node(to)?;
        let (donor, source_ring) = {
            let router = self.router.read();
            if partition.0 >= router.ring().num_partitions() {
                return Err(VoldemortError::Admin(format!(
                    "partition {partition} out of range"
                )));
            }
            (router.ring().owner_of(partition), router.ring().clone())
        };
        if donor == to {
            return Ok(None);
        }
        let mut target_ring = source_ring.clone();
        target_ring
            .reassign(partition, to)
            .map_err(|e| VoldemortError::Admin(e.to_string()))?;
        let state = Arc::new(ActiveMigration::new(
            partition,
            donor,
            to,
            source_ring,
            target_ring,
        ));
        {
            let mut slot = self.migration.write();
            if slot.is_some() {
                return Err(VoldemortError::Admin(
                    "a partition migration is already in flight".into(),
                ));
            }
            *slot = Some(Arc::clone(&state));
        }
        Ok(Some(PartitionMigration::new(Arc::clone(self), state)))
    }

    /// The in-flight migration's state, if any (client ack/shadow hooks).
    pub(crate) fn active_migration(&self) -> Option<Arc<ActiveMigration>> {
        self.migration.read().clone()
    }

    /// The partition currently being migrated, if any.
    pub fn migration_in_flight(&self) -> Option<PartitionId> {
        self.migration.read().as_ref().map(|m| m.partition)
    }

    /// Tears down the in-flight migration without flipping ownership. The
    /// source stays authoritative; the journal (and any data already
    /// copied to the target) is simply dropped — copied versions are
    /// duplicates of what the source replicas still serve.
    pub fn abort_migration(&self) {
        *self.migration.write() = None;
    }

    pub(crate) fn clear_migration(&self) {
        self.abort_migration();
    }

    /// Client ack hook: an acked put lands in the journal when the key's
    /// placement changes at cutover, and mirrors synchronously to the
    /// gaining nodes during dual-write. Called with no cluster locks held;
    /// routing decisions use the migration's ring snapshots, never the
    /// router lock.
    pub(crate) fn on_acked_put(
        &self,
        def: &StoreDef,
        key: &[u8],
        value: &Versioned<Bytes>,
        origin: NodeId,
    ) {
        let guard = self.migration.read();
        let Some(m) = guard.as_ref() else {
            return;
        };
        let gaining = m.moved_targets(key, def);
        if gaining.is_empty() {
            return;
        }
        m.journal.lock().push(JournaledWrite::Put {
            store: def.name.clone(),
            key: Bytes::copy_from_slice(key),
            value: value.clone(),
        });
        if m.dual_write_active() {
            // Best-effort synchronous mirror; the journal is the backstop
            // for any target the network refuses right now.
            for t in gaining {
                if self.network.deliver(origin, t).is_err() {
                    continue;
                }
                if let Ok(node) = self.node(t) {
                    let _ = node.force_put(&def.name, key, value.clone());
                }
            }
        }
    }

    /// Client ack hook for deletes (same contract as
    /// [`Self::on_acked_put`]).
    pub(crate) fn on_acked_delete(
        &self,
        def: &StoreDef,
        key: &[u8],
        clock: &VectorClock,
        origin: NodeId,
    ) {
        let guard = self.migration.read();
        let Some(m) = guard.as_ref() else {
            return;
        };
        let gaining = m.moved_targets(key, def);
        if gaining.is_empty() {
            return;
        }
        m.journal.lock().push(JournaledWrite::Delete {
            store: def.name.clone(),
            key: Bytes::copy_from_slice(key),
            clock: clock.clone(),
        });
        if m.dual_write_active() {
            for t in gaining {
                if self.network.deliver(origin, t).is_err() {
                    continue;
                }
                if let Ok(node) = self.node(t) {
                    let _ = node.delete(&def.name, key, clock);
                }
            }
        }
    }

    /// Drains the migration journal and replays every entry to the nodes
    /// gaining the key. Returns how many entries were replayed; on error
    /// the unreplayed tail is pushed back for retry (replay order across a
    /// retry may interleave with fresh appends, which is safe: force-put
    /// and clock-checked delete are order-insensitive).
    pub(crate) fn migration_drain_journal(
        &self,
        m: &ActiveMigration,
    ) -> Result<u64, VoldemortError> {
        let entries: Vec<JournaledWrite> = std::mem::take(&mut *m.journal.lock());
        let count = entries.len() as u64;
        for (i, entry) in entries.iter().enumerate() {
            if let Err(e) = self.migration_replay_entry(m, entry) {
                m.journal.lock().extend(entries[i..].iter().cloned());
                return Err(e);
            }
        }
        Ok(count)
    }

    fn migration_replay_entry(
        &self,
        m: &ActiveMigration,
        entry: &JournaledWrite,
    ) -> Result<(), VoldemortError> {
        match entry {
            JournaledWrite::Put { store, key, value } => {
                let def = self.store_def(store)?;
                for t in m.moved_targets(key, &def) {
                    self.node(t)?.force_put(store, key, value.clone())?;
                }
            }
            JournaledWrite::Delete { store, key, clock } => {
                let def = self.store_def(store)?;
                for t in m.moved_targets(key, &def) {
                    self.node(t)?.delete(store, key, clock)?;
                }
            }
        }
        Ok(())
    }

    /// The atomic cutover flip. Takes the migration write lock (waiting
    /// out any in-flight ack capture), drains the journal one final time,
    /// then flips ownership under the router write lock and bumps the
    /// topology epoch — an acked write either made it into the journal
    /// (drained here, before the flip) or acks after the flip and sees the
    /// epoch change. Lock order: migration before router, as everywhere.
    pub(crate) fn migration_cutover(&self, m: &ActiveMigration) -> Result<(), VoldemortError> {
        let mut migration = self.migration.write();
        self.migration_drain_journal(m)?;
        {
            let mut router = self.router.write();
            router.ring_mut().reassign(m.partition, m.to)?;
        }
        self.topology_epoch.fetch_add(1, Ordering::Release);
        *migration = None;
        Ok(())
    }

    /// A stable digest of the cluster's logical contents: for every
    /// read-write store (sorted) and key (sorted union across all nodes),
    /// the sibling-resolved *values* served by the key's current
    /// preference list. Clocks are deliberately excluded — the coordinator
    /// node that stamps a clock depends on routing history, so a migrated
    /// cluster and a never-migrated twin agree on values but not clocks.
    pub fn state_fingerprint(&self) -> u64 {
        let mut buf: Vec<u8> = Vec::new();
        let mut holders: Vec<Arc<VoldemortNode>> = self.nodes.read().values().cloned().collect();
        holders.sort_by_key(|n| n.id());
        for def in self.rw_store_defs() {
            buf.extend_from_slice(def.name.as_bytes());
            buf.push(0);
            let mut keys: BTreeSet<Bytes> = BTreeSet::new();
            for node in &holders {
                if let Ok(engine) = node.engine(&def.name) {
                    for (key, _) in engine.entries() {
                        keys.insert(key);
                    }
                }
            }
            for key in keys {
                let Ok(prefs) = self.route(&def, &key) else {
                    continue;
                };
                let mut merged: Vec<Versioned<Bytes>> = Vec::new();
                for id in prefs {
                    let Ok(node) = self.node(id) else { continue };
                    let Ok(engine) = node.engine(&def.name) else {
                        continue;
                    };
                    let Ok(versions) = engine.get(&key) else {
                        continue;
                    };
                    for v in versions {
                        resolve_siblings(&mut merged, v);
                    }
                }
                if merged.is_empty() {
                    // Absent from every serving replica (deleted, or donor
                    // residue a flip left behind on a non-replica).
                    continue;
                }
                let mut values: Vec<&Bytes> = merged.iter().map(|v| &v.value).collect();
                values.sort();
                buf.extend_from_slice(&(key.len() as u64).to_le_bytes());
                buf.extend_from_slice(&key);
                buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
                for value in values {
                    buf.extend_from_slice(&(value.len() as u64).to_le_bytes());
                    buf.extend_from_slice(value);
                }
            }
        }
        fnv1a(&buf)
    }

    /// Admin: migrates one logical partition to `to` for all read-write
    /// stores — the whole phased state machine (snapshot → delta catch-up
    /// → dual-write + shadow verification → atomic flip) run to
    /// completion. Requests during the move keep hitting the old owner;
    /// the flip under the migration + router write locks is the
    /// "redirecting requests of moving partitions to their new
    /// destination" moment. Step-driven callers (chaos, proptests) use
    /// [`Self::begin_partition_migration`] directly.
    pub fn migrate_partition(
        self: &Arc<Self>,
        partition: PartitionId,
        to: NodeId,
    ) -> Result<(), VoldemortError> {
        let Some(driver) = self.begin_partition_migration(partition, to)? else {
            return Ok(());
        };
        let coordinator = MigrationCoordinator::new(&self.metrics, MigrationConfig::default());
        let result = coordinator
            .run(&driver, 64)
            .map_err(|e| VoldemortError::Admin(e.to_string()));
        if result.is_err() {
            // Shadow-mismatch refusals already aborted via the driver;
            // clear any other failure too so the cluster isn't wedged.
            self.abort_migration();
        }
        result
    }

    /// Admin: adds a fresh node to the cluster (zone 0) without downtime —
    /// creates it, attaches engines for every read-write store, registers
    /// it in the topology, then migrates its fair share of partitions one
    /// at a time. Returns the moved partitions.
    ///
    /// Read-only stores are excluded: their data moves by re-running the
    /// pull phase against the next build, which already targets the new
    /// topology.
    pub fn rebalance_in_new_node(
        self: &Arc<Self>,
        id: NodeId,
    ) -> Result<Vec<PartitionId>, VoldemortError> {
        {
            let mut nodes = self.nodes.write();
            if nodes.contains_key(&id) {
                return Err(VoldemortError::Admin(format!("{id} already in cluster")));
            }
            let node = Arc::new(VoldemortNode::with_metrics(id, &self.metrics));
            for def in self.stores.read().values() {
                let engine: Arc<dyn StorageEngine> = match def.engine {
                    EngineKind::Memory => Arc::new(MemoryEngine::new()),
                    EngineKind::BdbLike => Arc::new(BdbLikeEngine::new()),
                    EngineKind::ReadOnly => {
                        return Err(VoldemortError::Admin(
                            "cannot dynamically add a node to a cluster with read-only \
                             stores; rebuild and re-pull instead"
                                .into(),
                        ))
                    }
                };
                node.add_store(&def.name, engine)?;
            }
            nodes.insert(id, node);
        }
        let moves = {
            let mut router = self.router.write();
            router.ring_mut().add_node(id, ZoneId(0));
            router.ring().plan_rebalance(id)
        };
        self.topology_epoch.fetch_add(1, Ordering::Release);
        let mut moved = Vec::with_capacity(moves.len());
        for (partition, _, to) in moves {
            // Each move runs the full phased machine (live traffic keeps
            // flowing between moves).
            self.migrate_partition(partition, to)?;
            moved.push(partition);
        }
        Ok(moved)
    }
}

/// Chaos-scheduler hooks. Voldemort's failure surface is entirely the
/// network: a crash makes the node unreachable (its storage survives —
/// the paper's nodes recover with their BDB intact), and a pause is
/// modeled the same way (a GC-paused node is indistinguishable from a
/// dead one to its peers).
impl li_commons::chaos::FaultHooks for VoldemortCluster {
    fn crash(&self, node: NodeId) {
        self.network.crash(node);
    }

    fn restart(&self, node: NodeId) {
        self.network.restart(node);
    }

    fn pause(&self, node: NodeId) {
        self.network.crash(node);
    }

    fn resume(&self, node: NodeId) {
        self.network.restart(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn add_and_delete_stores() {
        let cluster = VoldemortCluster::new(16, 3).unwrap();
        cluster.add_store(StoreDef::read_write("follows")).unwrap();
        assert!(matches!(
            cluster.add_store(StoreDef::read_write("follows")),
            Err(VoldemortError::DuplicateStore(_))
        ));
        cluster.delete_store("follows").unwrap();
        assert!(cluster.store_def("follows").is_err());
        assert!(matches!(
            cluster.delete_store("follows"),
            Err(VoldemortError::UnknownStore(_))
        ));
    }

    #[test]
    fn fan_out_pool_reads_take_no_exclusive_lock_after_init() {
        let cluster = VoldemortCluster::new(8, 2).unwrap();
        assert_eq!(cluster.fan_out_pool_init_acquisitions(), 0, "lazy");
        let first = cluster.fan_out_pool();
        assert_eq!(cluster.fan_out_pool_init_acquisitions(), 1);
        // 16 concurrent acquisitions all ride the read path.
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cluster = cluster.clone();
            handles.push(std::thread::spawn(move || cluster.fan_out_pool()));
        }
        for h in handles {
            assert!(Arc::ptr_eq(&h.join().unwrap(), &first), "one shared pool");
        }
        assert_eq!(
            cluster.fan_out_pool_init_acquisitions(),
            1,
            "zero exclusive acquisitions on the read path"
        );
    }

    #[test]
    fn invalid_store_def_rejected() {
        let cluster = VoldemortCluster::new(16, 2).unwrap();
        let bad = StoreDef::read_write("s").with_quorum(3, 1, 4);
        assert!(matches!(
            cluster.add_store(bad),
            Err(VoldemortError::Admin(_))
        ));
    }

    #[test]
    fn read_only_store_requires_dedicated_path() {
        let cluster = VoldemortCluster::new(8, 1).unwrap();
        assert!(matches!(
            cluster.add_store(StoreDef::read_only("ro")),
            Err(VoldemortError::Admin(_))
        ));
    }

    #[test]
    fn phased_migration_journals_and_dual_writes_under_traffic() {
        use li_commons::migrate::{MigrationConfig, MigrationCoordinator, MigrationPhase};

        let cluster = VoldemortCluster::new(8, 3).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(1, 1, 1))
            .unwrap();
        let client = cluster.client("s").unwrap();
        for i in 0..100 {
            client
                .put_initial(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
                .unwrap();
        }
        let partition = cluster.ring().partitions_of(NodeId(0))[0];
        let driver = cluster
            .begin_partition_migration(partition, NodeId(2))
            .unwrap()
            .unwrap();
        assert_eq!(cluster.migration_in_flight(), Some(partition));
        let coordinator =
            MigrationCoordinator::new(cluster.metrics(), MigrationConfig::default());
        assert_eq!(
            coordinator.step(&driver).unwrap(),
            MigrationPhase::DeltaCatchup
        );

        // A key in the placement diff, written after the snapshot: it must
        // be journaled for delta replay.
        let moving_key = (0..1000)
            .map(|i| format!("m{i}").into_bytes())
            .find(|k| cluster.ring().master_partition(k) == partition)
            .unwrap();
        client
            .put_initial(&moving_key, Bytes::from_static(b"after-snapshot"))
            .unwrap();
        assert_eq!(driver.journal_len(), 1, "acked write captured");

        // Delta rounds drain the journal, then dual-write begins.
        let mut phase = coordinator.step(&driver).unwrap();
        while phase == MigrationPhase::DeltaCatchup {
            phase = coordinator.step(&driver).unwrap();
        }
        assert_eq!(phase, MigrationPhase::DualWrite);

        // Dual-write: an acked write mirrors to the target synchronously.
        let clock = client.get(&moving_key).unwrap()[0].clock.clone();
        client
            .put(&moving_key, &clock, Bytes::from_static(b"dual-written"))
            .unwrap();
        let target_engine = cluster.node(NodeId(2)).unwrap().engine("s").unwrap();
        assert!(
            target_engine
                .get(&moving_key)
                .unwrap()
                .iter()
                .any(|v| v.value.as_ref() == b"dual-written"),
            "dual-write mirrors synchronously"
        );

        // Verification is clean; the flip lands and routing serves node 2.
        while coordinator.phase() != MigrationPhase::Done {
            coordinator.step(&driver).unwrap();
        }
        assert_eq!(cluster.ring().owner_of(partition), NodeId(2));
        assert!(cluster.migration_in_flight().is_none());
        let got = client.get(&moving_key).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"dual-written");
        for i in 0..100 {
            assert_eq!(client.get(format!("k{i}").as_bytes()).unwrap().len(), 1);
        }
        let snap = cluster.metrics().snapshot();
        assert_eq!(snap.counter("migration.cutover_flips"), Some(1));
        assert_eq!(snap.counter("migration.cutover_refusals"), Some(0));
    }

    #[test]
    fn hints_replay_to_new_owner_after_cutover() {
        // Regression: hints parked before a partition move used to replay
        // to the *old* preference-list owner after cutover, stranding the
        // write on a node no longer serving the key.
        let cluster = VoldemortCluster::new(8, 4).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(2, 1, 2))
            .unwrap();
        let client = cluster.client("s").unwrap();
        let key = b"hinted-key";
        let prefs = cluster.route(&cluster.store_def("s").unwrap(), key).unwrap();

        // Both replicas down: the put acks purely via hints on the two
        // fallback nodes.
        cluster.network().crash(prefs[0]);
        cluster.network().crash(prefs[1]);
        client
            .put_initial(key, Bytes::from_static(b"hinted-value"))
            .unwrap();
        assert_eq!(cluster.pending_hints(), 2);
        cluster.network().restart(prefs[0]);
        cluster.network().restart(prefs[1]);

        // Move the key's master partition to a node outside the old
        // preference list while the hints are still pending.
        let partition = cluster.ring().master_partition(key);
        let new_owner = *cluster
            .node_ids()
            .iter()
            .find(|n| !prefs.contains(n))
            .unwrap();
        cluster.migrate_partition(partition, new_owner).unwrap();
        let now_prefs = cluster.route(&cluster.store_def("s").unwrap(), key).unwrap();
        assert_eq!(now_prefs[0], new_owner);

        // Delivery must follow the *current* ring: the value lands on the
        // new owner, and a quorum read (which contacts the new prefs)
        // serves it.
        assert!(cluster.deliver_hints() >= 1);
        assert_eq!(cluster.pending_hints(), 0);
        let new_owner_versions = cluster
            .node(new_owner)
            .unwrap()
            .engine("s")
            .unwrap()
            .get(key)
            .unwrap();
        assert!(
            new_owner_versions
                .iter()
                .any(|v| v.value.as_ref() == b"hinted-value"),
            "hint routed to the post-cutover owner"
        );
        let got = client.get(key).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"hinted-value");
    }

    #[test]
    fn planted_divergence_refuses_cutover() {
        use li_commons::clock::VectorClock;
        use li_commons::migrate::{
            MigrationConfig, MigrationCoordinator, MigrationError, MigrationPhase,
        };

        let cluster = VoldemortCluster::new(8, 3).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(1, 1, 1))
            .unwrap();
        let client = cluster.client("s").unwrap();
        for i in 0..50 {
            client
                .put_initial(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
                .unwrap();
        }
        let partition = cluster.ring().partitions_of(NodeId(0))[0];
        let donor = cluster.ring().owner_of(partition);
        let driver = cluster
            .begin_partition_migration(partition, NodeId(2))
            .unwrap()
            .unwrap();
        let coordinator = MigrationCoordinator::new(
            cluster.metrics(),
            MigrationConfig {
                verify_retries: 2,
                ..MigrationConfig::default()
            },
        );
        let mut phase = coordinator.step(&driver).unwrap();
        while phase != MigrationPhase::DualWrite {
            phase = coordinator.step(&driver).unwrap();
        }

        // Deliberately corrupt the target: a version (concurrent clock,
        // bogus value) the source can never explain, on a key the move
        // covers.
        let moving_key = (0..50)
            .map(|i| format!("k{i}").into_bytes())
            .find(|k| cluster.ring().master_partition(k) == partition)
            .expect("some key lands in the moving partition");
        cluster
            .node(NodeId(2))
            .unwrap()
            .engine("s")
            .unwrap()
            .force_put(
                &moving_key,
                Versioned::new(VectorClock::with(999, 1), Bytes::from_static(b"corrupt")),
            )
            .unwrap();

        // Every verification round now sees the divergence; after the
        // retry budget the flip is refused and the source stays
        // authoritative.
        let err = loop {
            match coordinator.step(&driver) {
                Ok(p) => assert_eq!(p, MigrationPhase::DualWrite, "must never cut over"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, MigrationError::ShadowMismatch { .. }));
        assert_eq!(coordinator.phase(), MigrationPhase::Refused);
        assert_eq!(cluster.ring().owner_of(partition), donor, "flip refused");
        assert!(cluster.migration_in_flight().is_none(), "aborted");
        let snap = cluster.metrics().snapshot();
        assert!(snap.counter("migration.shadow_mismatch").unwrap() > 0);
        assert_eq!(snap.counter("migration.cutover_refusals"), Some(1));
        assert_eq!(snap.counter("migration.cutover_flips"), Some(0));
        // The cluster is usable again: the same partition can be migrated
        // to a clean target.
        cluster.migrate_partition(partition, NodeId(1)).unwrap();
        assert_eq!(cluster.ring().owner_of(partition), NodeId(1));
    }

    #[test]
    fn migrate_partition_moves_data_and_ownership() {
        let cluster = VoldemortCluster::new(8, 2).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(1, 1, 1))
            .unwrap();
        let client = cluster.client("s").unwrap();
        for i in 0..200 {
            client
                .put_initial(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
                .unwrap();
        }
        let ring = cluster.ring();
        // Move every partition owned by node 0 to node 1.
        let moving = ring.partitions_of(NodeId(0));
        for p in &moving {
            cluster.migrate_partition(*p, NodeId(1)).unwrap();
        }
        // All keys still readable (now served entirely by node 1).
        for i in 0..200 {
            let got = client.get(format!("k{i}").as_bytes()).unwrap();
            assert_eq!(got.len(), 1, "k{i} lost in migration");
        }
        assert!(cluster.ring().partitions_of(NodeId(0)).is_empty());
    }
}
