//! Routing strategies: O(1) full-topology consistent hashing (Voldemort's
//! design) and a Chord-style O(log N) finger-table baseline.
//!
//! "Unlike previous DHT work (like Chord), \[Voldemort\] has been designed to
//! have relatively low node membership churn ... This lets us store the
//! complete topology metadata on every node instead of partial 'finger
//! tables' as in Chord, thereby decreasing lookups from O(log N) to O(1)"
//! (§II.A). The benchmark `routing_chord_vs_o1` regenerates that
//! comparison; [`ChordBaseline`] counts the hops a finger-table lookup
//! would take.

use li_commons::fnv::fnv1a;
use li_commons::ring::{HashRing, NodeId};

use crate::error::VoldemortError;
use crate::store::StoreDef;

/// The production router: a full [`HashRing`] replica of the topology.
/// Lookup is a hash plus a bounded ring walk — no network hops.
#[derive(Debug, Clone)]
pub struct Router {
    ring: HashRing,
}

impl Router {
    /// Wraps a topology.
    pub fn new(ring: HashRing) -> Self {
        Router { ring }
    }

    /// The topology.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Mutable topology access (admin/rebalance only).
    pub fn ring_mut(&mut self) -> &mut HashRing {
        &mut self.ring
    }

    /// Preference list for `key` under `store`'s replication and zone
    /// configuration: the nodes that should hold its replicas, master
    /// first.
    pub fn route(&self, store: &StoreDef, key: &[u8]) -> Result<Vec<NodeId>, VoldemortError> {
        Ok(self.ring.preference_list_zoned(
            key,
            store.replication,
            store.zones_required,
        )?)
    }
}

/// A Chord node's routing state: its id and finger table.
#[derive(Debug, Clone)]
struct ChordNode {
    id: u64,
    /// finger\[i\] = index (into the sorted node list) of successor(id + 2^i).
    fingers: Vec<usize>,
}

/// Simulated Chord overlay for the routing baseline. Nodes sit on a 2^64
/// identifier circle; each knows only O(log N) fingers, so a lookup hops
/// from node to node. [`ChordBaseline::lookup`] returns the owning node and
/// the number of routing hops taken — each hop would be a network RPC in a
/// real deployment.
#[derive(Debug, Clone)]
pub struct ChordBaseline {
    /// Sorted by id.
    nodes: Vec<ChordNode>,
}

impl ChordBaseline {
    /// Builds an overlay of `node_ids` hashed onto the identifier circle.
    pub fn new(node_ids: &[NodeId]) -> Self {
        assert!(!node_ids.is_empty(), "chord ring needs nodes");
        let mut ids: Vec<u64> = node_ids
            .iter()
            .map(|n| fnv1a(format!("chord-node-{}", n.0).as_bytes()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let nodes: Vec<ChordNode> = ids
            .iter()
            .map(|&id| ChordNode {
                id,
                fingers: Vec::new(),
            })
            .collect();
        let mut ring = ChordBaseline { nodes };
        let fingers: Vec<Vec<usize>> = ring
            .nodes
            .iter()
            .map(|node| {
                (0..64)
                    .map(|i| ring.successor_index(node.id.wrapping_add(1u64 << i)))
                    .collect()
            })
            .collect();
        for (node, f) in ring.nodes.iter_mut().zip(fingers) {
            node.fingers = f;
        }
        ring
    }

    /// Number of nodes in the overlay.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the overlay is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the first node with id >= `target` (wrapping).
    fn successor_index(&self, target: u64) -> usize {
        match self.nodes.binary_search_by(|n| n.id.cmp(&target)) {
            Ok(idx) => idx,
            Err(idx) => idx % self.nodes.len(),
        }
    }

    /// True when `x` lies in the half-open arc (a, b] on the circle.
    fn in_arc(a: u64, x: u64, b: u64) -> bool {
        if a < b {
            x > a && x <= b
        } else {
            // wrapped arc
            x > a || x <= b
        }
    }

    /// Routes a lookup for `key` starting at node index `start`, returning
    /// `(owner_index, hops)`. Each hop models one RPC to a remote node's
    /// routing table.
    pub fn lookup_from(&self, start: usize, key: &[u8]) -> (usize, u32) {
        let target = fnv1a(key);
        let n = self.nodes.len();
        if n == 1 {
            return (0, 0);
        }
        let mut current = start % n;
        let mut hops = 0u32;
        loop {
            let node = &self.nodes[current];
            let successor = (current + 1) % n;
            if Self::in_arc(node.id, target, self.nodes[successor].id) {
                // One final hop to the owner.
                return (successor, hops + 1);
            }
            // Closest preceding finger of target.
            let mut next = current;
            for &finger in node.fingers.iter().rev() {
                if finger != current && Self::in_arc(node.id, self.nodes[finger].id, target.wrapping_sub(1)) {
                    next = finger;
                    break;
                }
            }
            if next == current {
                next = successor;
            }
            current = next;
            hops += 1;
            debug_assert!(hops as usize <= 2 * n, "lookup must terminate");
        }
    }

    /// Convenience: lookup starting from a deterministic node derived from
    /// the key (models a random entry point).
    pub fn lookup(&self, key: &[u8]) -> (usize, u32) {
        let start = (fnv1a(key) >> 32) as usize % self.nodes.len();
        self.lookup_from(start, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreDef;

    fn node_ids(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn router_respects_store_replication() {
        let ring = HashRing::balanced(32, &node_ids(4)).unwrap();
        let router = Router::new(ring);
        let store = StoreDef::read_write("s").with_quorum(3, 2, 2);
        let prefs = router.route(&store, b"member:1").unwrap();
        assert_eq!(prefs.len(), 3);
    }

    #[test]
    fn chord_lookup_agrees_with_successor_definition() {
        let chord = ChordBaseline::new(&node_ids(32));
        for i in 0..200 {
            let key = format!("key-{i}");
            let (owner, hops) = chord.lookup(key.as_bytes());
            let expected = chord.successor_index(fnv1a(key.as_bytes()));
            assert_eq!(owner, expected, "key {i}");
            assert!(hops >= 1);
        }
    }

    #[test]
    fn chord_hops_scale_logarithmically() {
        let mut avg_hops = Vec::new();
        for &n in &[8u16, 64, 512] {
            let chord = ChordBaseline::new(&node_ids(n));
            let total: u32 = (0..500)
                .map(|i| chord.lookup(format!("k{i}").as_bytes()).1)
                .sum();
            avg_hops.push(total as f64 / 500.0);
        }
        // More nodes -> more hops, but sublinearly (log-ish).
        assert!(avg_hops[1] > avg_hops[0]);
        assert!(avg_hops[2] > avg_hops[1]);
        assert!(
            avg_hops[2] < avg_hops[0] * 8.0,
            "512 nodes should not cost 64x the hops of 8 nodes: {avg_hops:?}"
        );
        // O(log N): ~log2(512)=9ish upper ballpark.
        assert!(avg_hops[2] <= 16.0, "avg hops {avg_hops:?}");
    }

    #[test]
    fn chord_single_node_zero_hops() {
        let chord = ChordBaseline::new(&node_ids(1));
        assert_eq!(chord.lookup(b"k"), (0, 0));
    }

    #[test]
    fn chord_lookup_deterministic_for_key() {
        let chord = ChordBaseline::new(&node_ids(16));
        let a = chord.lookup(b"stable-key");
        let b = chord.lookup(b"stable-key");
        assert_eq!(a, b);
    }
}
