//! # li-zk — ZooKeeper analog
//!
//! The paper leans on ZooKeeper \[Zoo\] in two places: Kafka "employ\[s\] a
//! highly available consensus service Zookeeper" for broker/consumer
//! membership, rebalance triggering, and offset tracking (§V.C), and Helix
//! "uses Zookeeper as a distributed store to maintain the state of the
//! cluster and a notification system" (§IV.B). This crate reproduces the
//! client-visible ZooKeeper contract those systems program against:
//!
//! * a hierarchical namespace of **znodes** carrying small byte payloads;
//! * **persistent**, **ephemeral**, and **sequential** creation modes —
//!   ephemerals vanish when their owning session expires, sequentials get a
//!   monotonic zero-padded suffix;
//! * **versioned writes**: every znode has a data version; `set`/`delete`
//!   accept an expected version for compare-and-swap;
//! * **one-shot watches** on data, existence, and children, delivered over
//!   channels exactly once and re-armed by the caller (ZooKeeper's model);
//! * **sessions** whose expiry atomically removes their ephemerals and
//!   fires the corresponding watches — this is how a crashed Kafka consumer
//!   triggers a group rebalance.
//!
//! The server is a single in-process replicated-state-machine stand-in: the
//! paper's systems treat ZooKeeper as an always-available black box, so the
//! consensus internals are out of reproduction scope (see DESIGN.md).
//!
//! ```
//! use li_zk::{CreateMode, ZooKeeper};
//!
//! let zk = ZooKeeper::new();
//! let session = zk.connect();
//! session.create("/consumers", b"".as_slice(), CreateMode::Persistent)?;
//! // Ephemeral membership + watch: the consumer-group recipe.
//! let watch = session.watch_children("/consumers")?;
//! let member = zk.connect();
//! member.create("/consumers/c1", b"".as_slice(), CreateMode::Ephemeral)?;
//! assert!(watch.try_recv().is_ok(), "membership change observed");
//! // Crash: the session expires, the ephemeral vanishes.
//! let watch = session.watch_children("/consumers")?;
//! zk.expire(member.id());
//! assert!(watch.try_recv().is_ok());
//! assert!(!session.exists("/consumers/c1")?);
//! # Ok::<(), li_zk::ZkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tree;

pub use tree::{
    CreateMode, Session, SessionId, Stat, WatchEvent, WatchEventKind, ZkError, ZooKeeper,
};
