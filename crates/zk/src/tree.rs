//! The znode tree, sessions, and watch plumbing.

use crossbeam::channel::{unbounded, Receiver, Sender};
use li_commons::metrics::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Identifier of a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// How a znode is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// Survives session expiry.
    Persistent,
    /// Deleted when the creating session expires.
    Ephemeral,
    /// Persistent with a monotonic suffix appended to the name.
    PersistentSequential,
    /// Ephemeral with a monotonic suffix appended to the name.
    EphemeralSequential,
}

impl CreateMode {
    fn is_ephemeral(self) -> bool {
        matches!(self, CreateMode::Ephemeral | CreateMode::EphemeralSequential)
    }

    fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// Metadata returned with reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Data version, incremented on every `set`.
    pub version: u64,
    /// Transaction id of the last modification (global order).
    pub mzxid: u64,
    /// Owning session for ephemerals.
    pub ephemeral_owner: Option<SessionId>,
    /// Number of children.
    pub num_children: usize,
}

/// What happened to a watched znode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// The node was created.
    NodeCreated,
    /// The node's data changed.
    NodeDataChanged,
    /// The node was deleted.
    NodeDeleted,
    /// The node's child set changed.
    NodeChildrenChanged,
}

/// A fired watch notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Path the watch was registered on.
    pub path: String,
    /// The kind of change.
    pub kind: WatchEventKind,
}

/// Errors from znode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkError {
    /// The node does not exist.
    NoNode(String),
    /// A node already exists at the path.
    NodeExists(String),
    /// The parent of the path does not exist.
    NoParent(String),
    /// The node still has children (delete refused).
    NotEmpty(String),
    /// Compare-and-swap version mismatch.
    BadVersion {
        /// Path of the znode.
        path: String,
        /// Version the caller expected.
        expected: u64,
        /// Actual current version.
        actual: u64,
    },
    /// The path is syntactically invalid.
    BadPath(String),
    /// The session has expired.
    SessionExpired,
}

impl fmt::Display for ZkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZkError::NoNode(p) => write!(f, "no node at {p}"),
            ZkError::NodeExists(p) => write!(f, "node exists at {p}"),
            ZkError::NoParent(p) => write!(f, "no parent for {p}"),
            ZkError::NotEmpty(p) => write!(f, "node {p} has children"),
            ZkError::BadVersion { path, expected, actual } => {
                write!(f, "bad version on {path}: expected {expected}, actual {actual}")
            }
            ZkError::BadPath(p) => write!(f, "bad path {p}"),
            ZkError::SessionExpired => write!(f, "session expired"),
        }
    }
}

impl std::error::Error for ZkError {}

#[derive(Debug)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    mzxid: u64,
    ephemeral_owner: Option<SessionId>,
    children: BTreeSet<String>,
    /// Counter for sequential child names.
    cseq: u64,
}

#[derive(Default)]
struct Watches {
    data: HashMap<String, Vec<Sender<WatchEvent>>>,
    exists: HashMap<String, Vec<Sender<WatchEvent>>>,
    children: HashMap<String, Vec<Sender<WatchEvent>>>,
}

/// Coordination-service observability under `zk.`: live znode count
/// (including the root), live session count, and watch events delivered.
struct ZkMetrics {
    znodes: Gauge,
    sessions: Gauge,
    watch_events_fired: Counter,
}

impl ZkMetrics {
    fn new(registry: &Arc<MetricsRegistry>) -> Self {
        let scope = registry.scope("zk");
        ZkMetrics {
            znodes: scope.gauge("znodes"),
            sessions: scope.gauge("sessions"),
            watch_events_fired: scope.counter("watch_events_fired"),
        }
    }
}

struct State {
    nodes: BTreeMap<String, Znode>,
    watches: Watches,
    sessions: BTreeSet<SessionId>,
    next_session: u64,
    zxid: u64,
    metrics: ZkMetrics,
}

impl State {
    fn fire(
        watchers: &mut HashMap<String, Vec<Sender<WatchEvent>>>,
        path: &str,
        kind: WatchEventKind,
    ) -> u64 {
        let mut fired = 0;
        if let Some(list) = watchers.remove(path) {
            for sender in list {
                // Receiver may be gone; one-shot send, ignore disconnects.
                let _ = sender.send(WatchEvent {
                    path: path.to_string(),
                    kind,
                });
                fired += 1;
            }
        }
        fired
    }

    fn fire_node_event(&mut self, path: &str, kind: WatchEventKind) {
        let fired = Self::fire(&mut self.watches.data, path, kind)
            + Self::fire(&mut self.watches.exists, path, kind);
        self.metrics.watch_events_fired.add(fired);
    }

    fn fire_children_event(&mut self, parent: &str) {
        let fired = Self::fire(
            &mut self.watches.children,
            parent,
            WatchEventKind::NodeChildrenChanged,
        );
        self.metrics.watch_events_fired.add(fired);
    }

    fn delete_node(&mut self, path: &str) {
        self.zxid += 1;
        self.nodes.remove(path);
        self.metrics.znodes.set(self.nodes.len() as i64);
        if let Some(parent) = parent_of(path) {
            let name = path.rsplit('/').next().unwrap_or_default().to_string();
            if let Some(parent_node) = self.nodes.get_mut(&parent) {
                parent_node.children.remove(&name);
            }
            self.fire_node_event(path, WatchEventKind::NodeDeleted);
            self.fire_children_event(&parent);
        } else {
            self.fire_node_event(path, WatchEventKind::NodeDeleted);
        }
    }
}

fn parent_of(path: &str) -> Option<String> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(idx) => Some(path[..idx].to_string()),
        None => None,
    }
}

fn validate_path(path: &str) -> Result<(), ZkError> {
    if !path.starts_with('/') {
        return Err(ZkError::BadPath(format!("{path}: must start with /")));
    }
    if path.len() > 1 && path.ends_with('/') {
        return Err(ZkError::BadPath(format!("{path}: trailing slash")));
    }
    if path.contains("//") {
        return Err(ZkError::BadPath(format!("{path}: empty segment")));
    }
    Ok(())
}

/// The coordination service. Cloning shares the same tree.
#[derive(Clone)]
pub struct ZooKeeper {
    state: Arc<Mutex<State>>,
    registry: Arc<MetricsRegistry>,
}

impl Default for ZooKeeper {
    fn default() -> Self {
        Self::new()
    }
}

impl ZooKeeper {
    /// Creates a service with an empty tree (just the root `/`).
    pub fn new() -> Self {
        Self::with_metrics(&MetricsRegistry::new())
    }

    /// Creates a service that reports into a shared metrics registry
    /// (under `zk.`).
    pub fn with_metrics(registry: &Arc<MetricsRegistry>) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            "/".to_string(),
            Znode {
                data: Vec::new(),
                version: 0,
                mzxid: 0,
                ephemeral_owner: None,
                children: BTreeSet::new(),
                cseq: 0,
            },
        );
        let metrics = ZkMetrics::new(registry);
        metrics.znodes.set(nodes.len() as i64);
        ZooKeeper {
            state: Arc::new(Mutex::new(State {
                nodes,
                watches: Watches::default(),
                sessions: BTreeSet::new(),
                next_session: 1,
                zxid: 0,
                metrics,
            })),
            registry: Arc::clone(registry),
        }
    }

    /// The metrics registry this service reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Opens a new session.
    pub fn connect(&self) -> Session {
        let mut state = self.state.lock();
        let id = SessionId(state.next_session);
        state.next_session += 1;
        state.sessions.insert(id);
        state.metrics.sessions.set(state.sessions.len() as i64);
        Session {
            zk: self.clone(),
            id,
        }
    }

    /// Expires a session: its ephemeral nodes are deleted and the
    /// corresponding watches fire — the crash-detection signal the paper's
    /// consumers rely on.
    pub fn expire(&self, session: SessionId) {
        let mut state = self.state.lock();
        state.sessions.remove(&session);
        state.metrics.sessions.set(state.sessions.len() as i64);
        let doomed: Vec<String> = state
            .nodes
            .iter()
            .filter(|(_, n)| n.ephemeral_owner == Some(session))
            .map(|(p, _)| p.clone())
            .collect();
        for path in doomed {
            state.delete_node(&path);
        }
    }

    /// True when the session is still live.
    pub fn session_alive(&self, session: SessionId) -> bool {
        self.state.lock().sessions.contains(&session)
    }
}

/// A client handle; all operations are performed in the context of a
/// session (ephemeral ownership, expiry checks).
#[derive(Clone)]
pub struct Session {
    zk: ZooKeeper,
    id: SessionId,
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    fn check_alive(&self, state: &State) -> Result<(), ZkError> {
        if state.sessions.contains(&self.id) {
            Ok(())
        } else {
            Err(ZkError::SessionExpired)
        }
    }

    /// Creates a znode; returns the actual path (which differs from the
    /// requested one for sequential modes).
    pub fn create(
        &self,
        path: &str,
        data: impl Into<Vec<u8>>,
        mode: CreateMode,
    ) -> Result<String, ZkError> {
        validate_path(path)?;
        if path == "/" {
            return Err(ZkError::NodeExists("/".into()));
        }
        let mut state = self.zk.state.lock();
        self.check_alive(&state)?;
        let parent = parent_of(path).ok_or_else(|| ZkError::BadPath(path.into()))?;
        if !state.nodes.contains_key(&parent) {
            return Err(ZkError::NoParent(path.into()));
        }
        if let Some(parent_node) = state.nodes.get(&parent) {
            if parent_node.ephemeral_owner.is_some() {
                // ZooKeeper semantics: ephemerals cannot have children.
                return Err(ZkError::BadPath(format!(
                    "{path}: parent is ephemeral"
                )));
            }
        }

        let actual = if mode.is_sequential() {
            let parent_node = state.nodes.get_mut(&parent).expect("checked");
            let seq = parent_node.cseq;
            parent_node.cseq += 1;
            format!("{path}{seq:010}")
        } else {
            path.to_string()
        };
        if state.nodes.contains_key(&actual) {
            return Err(ZkError::NodeExists(actual));
        }

        state.zxid += 1;
        let mzxid = state.zxid;
        state.nodes.insert(
            actual.clone(),
            Znode {
                data: data.into(),
                version: 0,
                mzxid,
                ephemeral_owner: mode.is_ephemeral().then_some(self.id),
                children: BTreeSet::new(),
                cseq: 0,
            },
        );
        let name = actual.rsplit('/').next().unwrap_or_default().to_string();
        state
            .nodes
            .get_mut(&parent)
            .expect("checked")
            .children
            .insert(name);
        let live_znodes = state.nodes.len() as i64;
        state.metrics.znodes.set(live_znodes);
        state.fire_node_event(&actual, WatchEventKind::NodeCreated);
        state.fire_children_event(&parent);
        Ok(actual)
    }

    /// Creates all missing persistent ancestors, then the node itself.
    pub fn create_recursive(
        &self,
        path: &str,
        data: impl Into<Vec<u8>>,
        mode: CreateMode,
    ) -> Result<String, ZkError> {
        validate_path(path)?;
        let mut ancestors = Vec::new();
        let mut cursor = parent_of(path);
        while let Some(p) = cursor {
            if p == "/" {
                break;
            }
            cursor = parent_of(&p);
            ancestors.push(p);
        }
        for ancestor in ancestors.into_iter().rev() {
            match self.create(&ancestor, Vec::new(), CreateMode::Persistent) {
                Ok(_) | Err(ZkError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.create(path, data, mode)
    }

    /// Reads a znode's data and stat.
    pub fn get(&self, path: &str) -> Result<(Vec<u8>, Stat), ZkError> {
        let state = self.zk.state.lock();
        self.check_alive(&state)?;
        let node = state
            .nodes
            .get(path)
            .ok_or_else(|| ZkError::NoNode(path.into()))?;
        Ok((
            node.data.clone(),
            Stat {
                version: node.version,
                mzxid: node.mzxid,
                ephemeral_owner: node.ephemeral_owner,
                num_children: node.children.len(),
            },
        ))
    }

    /// Writes a znode's data. With `Some(v)`, fails unless the current data
    /// version is exactly `v` (compare-and-swap).
    pub fn set(
        &self,
        path: &str,
        data: impl Into<Vec<u8>>,
        expected_version: Option<u64>,
    ) -> Result<Stat, ZkError> {
        let mut state = self.zk.state.lock();
        self.check_alive(&state)?;
        state.zxid += 1;
        let zxid = state.zxid;
        let node = state
            .nodes
            .get_mut(path)
            .ok_or_else(|| ZkError::NoNode(path.into()))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(ZkError::BadVersion {
                    path: path.into(),
                    expected,
                    actual: node.version,
                });
            }
        }
        node.data = data.into();
        node.version += 1;
        node.mzxid = zxid;
        let stat = Stat {
            version: node.version,
            mzxid: node.mzxid,
            ephemeral_owner: node.ephemeral_owner,
            num_children: node.children.len(),
        };
        state.fire_node_event(path, WatchEventKind::NodeDataChanged);
        Ok(stat)
    }

    /// Deletes a childless znode, optionally guarded by version.
    pub fn delete(&self, path: &str, expected_version: Option<u64>) -> Result<(), ZkError> {
        let mut state = self.zk.state.lock();
        self.check_alive(&state)?;
        let node = state
            .nodes
            .get(path)
            .ok_or_else(|| ZkError::NoNode(path.into()))?;
        if !node.children.is_empty() {
            return Err(ZkError::NotEmpty(path.into()));
        }
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(ZkError::BadVersion {
                    path: path.into(),
                    expected,
                    actual: node.version,
                });
            }
        }
        state.delete_node(path);
        Ok(())
    }

    /// True when a node exists at `path`.
    pub fn exists(&self, path: &str) -> Result<bool, ZkError> {
        let state = self.zk.state.lock();
        self.check_alive(&state)?;
        Ok(state.nodes.contains_key(path))
    }

    /// Child names (not full paths) of `path`, sorted.
    pub fn children(&self, path: &str) -> Result<Vec<String>, ZkError> {
        let state = self.zk.state.lock();
        self.check_alive(&state)?;
        let node = state
            .nodes
            .get(path)
            .ok_or_else(|| ZkError::NoNode(path.into()))?;
        Ok(node.children.iter().cloned().collect())
    }

    /// Registers a one-shot watch fired on the next data change or deletion
    /// of `path`. The node must exist.
    pub fn watch_data(&self, path: &str) -> Result<Receiver<WatchEvent>, ZkError> {
        let mut state = self.zk.state.lock();
        self.check_alive(&state)?;
        if !state.nodes.contains_key(path) {
            return Err(ZkError::NoNode(path.into()));
        }
        let (tx, rx) = unbounded();
        state.watches.data.entry(path.into()).or_default().push(tx);
        Ok(rx)
    }

    /// Registers a one-shot watch fired when `path` is created, changed, or
    /// deleted. The node need not exist (ZooKeeper's `exists` watch).
    pub fn watch_exists(&self, path: &str) -> Result<Receiver<WatchEvent>, ZkError> {
        validate_path(path)?;
        let mut state = self.zk.state.lock();
        self.check_alive(&state)?;
        let (tx, rx) = unbounded();
        state.watches.exists.entry(path.into()).or_default().push(tx);
        Ok(rx)
    }

    /// Registers a one-shot watch fired on the next change to the child set
    /// of `path`.
    pub fn watch_children(&self, path: &str) -> Result<Receiver<WatchEvent>, ZkError> {
        let mut state = self.zk.state.lock();
        self.check_alive(&state)?;
        if !state.nodes.contains_key(path) {
            return Err(ZkError::NoNode(path.into()));
        }
        let (tx, rx) = unbounded();
        state
            .watches
            .children
            .entry(path.into())
            .or_default()
            .push(tx);
        Ok(rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zk_and_session() -> (ZooKeeper, Session) {
        let zk = ZooKeeper::new();
        let session = zk.connect();
        (zk, session)
    }

    #[test]
    fn create_get_set_delete_cycle() {
        let (_zk, s) = zk_and_session();
        s.create("/brokers", b"".as_slice(), CreateMode::Persistent).unwrap();
        let (data, stat) = s.get("/brokers").unwrap();
        assert!(data.is_empty());
        assert_eq!(stat.version, 0);
        let stat = s.set("/brokers", b"meta".as_slice(), None).unwrap();
        assert_eq!(stat.version, 1);
        let (data, _) = s.get("/brokers").unwrap();
        assert_eq!(data, b"meta");
        s.delete("/brokers", None).unwrap();
        assert!(!s.exists("/brokers").unwrap());
    }

    #[test]
    fn create_requires_parent() {
        let (_zk, s) = zk_and_session();
        assert!(matches!(
            s.create("/a/b", b"".as_slice(), CreateMode::Persistent),
            Err(ZkError::NoParent(_))
        ));
        s.create_recursive("/a/b/c", b"x".as_slice(), CreateMode::Persistent).unwrap();
        assert!(s.exists("/a/b").unwrap());
        assert_eq!(s.get("/a/b/c").unwrap().0, b"x");
    }

    #[test]
    fn duplicate_create_rejected() {
        let (_zk, s) = zk_and_session();
        s.create("/x", b"".as_slice(), CreateMode::Persistent).unwrap();
        assert!(matches!(
            s.create("/x", b"".as_slice(), CreateMode::Persistent),
            Err(ZkError::NodeExists(_))
        ));
    }

    #[test]
    fn bad_paths_rejected() {
        let (_zk, s) = zk_and_session();
        for bad in ["x", "/x/", "//x", ""] {
            assert!(matches!(
                s.create(bad, b"".as_slice(), CreateMode::Persistent),
                Err(ZkError::BadPath(_)) | Err(ZkError::NodeExists(_))
            ), "{bad}");
        }
    }

    #[test]
    fn sequential_names_are_monotonic_and_padded() {
        let (_zk, s) = zk_and_session();
        s.create("/queue", b"".as_slice(), CreateMode::Persistent).unwrap();
        let a = s.create("/queue/item-", b"".as_slice(), CreateMode::PersistentSequential).unwrap();
        let b = s.create("/queue/item-", b"".as_slice(), CreateMode::PersistentSequential).unwrap();
        assert_eq!(a, "/queue/item-0000000000");
        assert_eq!(b, "/queue/item-0000000001");
        assert!(a < b);
    }

    #[test]
    fn cas_set_and_delete() {
        let (_zk, s) = zk_and_session();
        s.create("/offsets", b"0".as_slice(), CreateMode::Persistent).unwrap();
        s.set("/offsets", b"10".as_slice(), Some(0)).unwrap();
        // Stale CAS fails.
        let err = s.set("/offsets", b"20".as_slice(), Some(0)).unwrap_err();
        assert!(matches!(err, ZkError::BadVersion { actual: 1, .. }));
        assert!(matches!(
            s.delete("/offsets", Some(0)),
            Err(ZkError::BadVersion { .. })
        ));
        s.delete("/offsets", Some(1)).unwrap();
    }

    #[test]
    fn delete_with_children_refused() {
        let (_zk, s) = zk_and_session();
        s.create_recursive("/a/b", b"".as_slice(), CreateMode::Persistent).unwrap();
        assert!(matches!(s.delete("/a", None), Err(ZkError::NotEmpty(_))));
    }

    #[test]
    fn children_listing_sorted() {
        let (_zk, s) = zk_and_session();
        s.create("/topics", b"".as_slice(), CreateMode::Persistent).unwrap();
        for name in ["news", "ads", "metrics"] {
            s.create(&format!("/topics/{name}"), b"".as_slice(), CreateMode::Persistent).unwrap();
        }
        assert_eq!(s.children("/topics").unwrap(), vec!["ads", "metrics", "news"]);
    }

    #[test]
    fn data_watch_fires_once() {
        let (_zk, s) = zk_and_session();
        s.create("/n", b"".as_slice(), CreateMode::Persistent).unwrap();
        let rx = s.watch_data("/n").unwrap();
        s.set("/n", b"1".as_slice(), None).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchEventKind::NodeDataChanged);
        // One-shot: second change doesn't fire.
        s.set("/n", b"2".as_slice(), None).unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn exists_watch_sees_creation() {
        let (_zk, s) = zk_and_session();
        let rx = s.watch_exists("/future").unwrap();
        s.create("/future", b"".as_slice(), CreateMode::Persistent).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchEventKind::NodeCreated);
    }

    #[test]
    fn children_watch_fires_on_membership_change() {
        let (_zk, s) = zk_and_session();
        s.create("/group", b"".as_slice(), CreateMode::Persistent).unwrap();
        let rx = s.watch_children("/group").unwrap();
        s.create("/group/consumer-1", b"".as_slice(), CreateMode::Ephemeral).unwrap();
        assert_eq!(
            rx.try_recv().unwrap().kind,
            WatchEventKind::NodeChildrenChanged
        );
        let rx = s.watch_children("/group").unwrap();
        s.delete("/group/consumer-1", None).unwrap();
        assert_eq!(
            rx.try_recv().unwrap().kind,
            WatchEventKind::NodeChildrenChanged
        );
    }

    #[test]
    fn session_expiry_removes_ephemerals_and_fires_watches() {
        let (zk, s1) = zk_and_session();
        let s2 = zk.connect();
        s1.create("/consumers", b"".as_slice(), CreateMode::Persistent).unwrap();
        s1.create("/consumers/c1", b"".as_slice(), CreateMode::Ephemeral).unwrap();
        s1.create("/persistent-data", b"keep".as_slice(), CreateMode::Persistent).unwrap();
        let rx = s2.watch_children("/consumers").unwrap();
        zk.expire(s1.id());
        assert!(!s2.exists("/consumers/c1").unwrap());
        assert!(s2.exists("/persistent-data").unwrap(), "persistents survive");
        assert_eq!(
            rx.try_recv().unwrap().kind,
            WatchEventKind::NodeChildrenChanged
        );
        // The expired session can no longer operate.
        assert!(matches!(s1.exists("/"), Err(ZkError::SessionExpired)));
    }

    #[test]
    fn ephemeral_cannot_have_children() {
        let (_zk, s) = zk_and_session();
        s.create("/e", b"".as_slice(), CreateMode::Ephemeral).unwrap();
        assert!(matches!(
            s.create("/e/child", b"".as_slice(), CreateMode::Persistent),
            Err(ZkError::BadPath(_))
        ));
    }

    #[test]
    fn ephemeral_owner_visible_in_stat() {
        let (_zk, s) = zk_and_session();
        s.create("/e", b"".as_slice(), CreateMode::Ephemeral).unwrap();
        let (_, stat) = s.get("/e").unwrap();
        assert_eq!(stat.ephemeral_owner, Some(s.id()));
    }

    #[test]
    fn sessions_are_independent() {
        let (zk, s1) = zk_and_session();
        let s2 = zk.connect();
        s1.create("/a", b"".as_slice(), CreateMode::Ephemeral).unwrap();
        s2.create("/b", b"".as_slice(), CreateMode::Ephemeral).unwrap();
        zk.expire(s1.id());
        assert!(s2.exists("/b").unwrap());
        assert!(!s2.exists("/a").unwrap());
    }

    #[test]
    fn ephemeral_sequential_cleared_on_expiry_and_counter_monotonic() {
        let (zk, s1) = zk_and_session();
        let s2 = zk.connect();
        s1.create("/locks", b"".as_slice(), CreateMode::Persistent).unwrap();
        let a = s1
            .create("/locks/lock-", b"".as_slice(), CreateMode::EphemeralSequential)
            .unwrap();
        let b = s2
            .create("/locks/lock-", b"".as_slice(), CreateMode::EphemeralSequential)
            .unwrap();
        assert!(a < b, "sequence orders contenders: {a} vs {b}");
        // The classic lock recipe: lowest sequence holds the lock. Expire
        // the holder; the successor observes the release.
        let watch = s2.watch_exists(&a).unwrap();
        zk.expire(s1.id());
        assert_eq!(watch.try_recv().unwrap().kind, WatchEventKind::NodeDeleted);
        // Counter never reuses suffixes, even after deletions.
        let c = s2
            .create("/locks/lock-", b"".as_slice(), CreateMode::EphemeralSequential)
            .unwrap();
        assert!(c > b);
    }

    #[test]
    fn exists_watch_fires_on_delete_too() {
        let (_zk, s) = zk_and_session();
        s.create("/x", b"".as_slice(), CreateMode::Persistent).unwrap();
        let rx = s.watch_exists("/x").unwrap();
        s.delete("/x", None).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, WatchEventKind::NodeDeleted);
    }

    #[test]
    fn mzxid_strictly_increases() {
        let (_zk, s) = zk_and_session();
        s.create("/a", b"".as_slice(), CreateMode::Persistent).unwrap();
        let (_, stat_a) = s.get("/a").unwrap();
        s.create("/b", b"".as_slice(), CreateMode::Persistent).unwrap();
        let (_, stat_b) = s.get("/b").unwrap();
        assert!(stat_b.mzxid > stat_a.mzxid);
        let stat_a2 = s.set("/a", b"x".as_slice(), None).unwrap();
        assert!(stat_a2.mzxid > stat_b.mzxid);
    }
}
