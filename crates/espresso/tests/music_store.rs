//! End-to-end Espresso tests built around the paper's Music database
//! example (Figures IV.2/IV.3): Artist, Album, and Song tables sharing the
//! artist name as `resource_id`.

use li_commons::ring::{NodeId, PartitionId};
use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_espresso::{DatabaseSchema, EspressoCluster, EspressoError, TableSchema};
use li_sqlstore::RowKey;
use std::sync::Arc;

fn artist_schema() -> RecordSchema {
    RecordSchema::new(
        "Artist",
        1,
        vec![Field::new("genre", FieldType::Str).indexed()],
    )
    .unwrap()
}

fn album_schema() -> RecordSchema {
    RecordSchema::new(
        "Album",
        1,
        vec![
            Field::new("year", FieldType::Long).indexed(),
            Field::new("label", FieldType::Optional(Box::new(FieldType::Str))),
        ],
    )
    .unwrap()
}

fn song_schema() -> RecordSchema {
    RecordSchema::new(
        "Song",
        1,
        vec![Field::new("lyrics", FieldType::Str).indexed()],
    )
    .unwrap()
}

fn music_db(partitions: u32, replication: usize) -> DatabaseSchema {
    DatabaseSchema::new("Music", partitions, replication)
        .with_table(TableSchema::new("Artist", ["artist"]), artist_schema())
        .unwrap()
        .with_table(TableSchema::new("Album", ["artist", "album"]), album_schema())
        .unwrap()
        .with_table(
            TableSchema::new("Song", ["artist", "album", "song"]),
            song_schema(),
        )
        .unwrap()
}

fn album(year: i64) -> Record {
    Record::new()
        .with("year", Value::Long(year))
        .with("label", Value::Null)
}

fn song(lyrics: &str) -> Record {
    Record::new().with("lyrics", Value::Str(lyrics.into()))
}

fn cluster(nodes: u16, partitions: u32, replication: usize) -> Arc<EspressoCluster> {
    let cluster = EspressoCluster::new(nodes).unwrap();
    cluster.create_database(music_db(partitions, replication)).unwrap();
    cluster
}

/// Seeds the paper's Album table (Figure IV.2).
fn seed_albums(cluster: &EspressoCluster) {
    for (artist, title, year) in [
        ("Akon", "Trouble", 2004),
        ("Akon", "Stadium", 2011),
        ("Babyface", "Lovers", 1986),
        ("Babyface", "A_Closer_Look", 1991),
        ("Babyface", "Face2Face", 2001),
        ("Coolio", "Steal_Hear", 2008),
    ] {
        cluster
            .put("Music", "Album", RowKey::new([artist, title]), &album(year))
            .unwrap();
    }
}

#[test]
fn document_crud_via_uris() {
    let cluster = cluster(3, 8, 2);
    seed_albums(&cluster);

    // Singleton GET.
    let hits = cluster.get_uri("/Music/Album/Akon/Trouble").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].1.get("year"), Some(&Value::Long(2004)));

    // Collection GET: all albums by Babyface, in key order.
    let hits = cluster.get_uri("/Music/Album/Babyface").unwrap();
    assert_eq!(hits.len(), 3);
    assert_eq!(hits[0].0, RowKey::new(["Babyface", "A_Closer_Look"]));

    // Overwrite and delete.
    cluster
        .put("Music", "Album", RowKey::new(["Coolio", "Steal_Hear"]), &album(2009))
        .unwrap();
    let hits = cluster.get_uri("/Music/Album/Coolio/Steal_Hear").unwrap();
    assert_eq!(hits[0].1.get("year"), Some(&Value::Long(2009)));
    cluster
        .delete("Music", "Album", RowKey::new(["Coolio", "Steal_Hear"]))
        .unwrap();
    assert!(cluster.get_uri("/Music/Album/Coolio/Steal_Hear").unwrap().is_empty());
}

#[test]
fn secondary_index_free_text_query() {
    let cluster = cluster(3, 8, 2);
    cluster
        .put(
            "Music",
            "Song",
            RowKey::new(["The_Beatles", "Sgt._Pepper", "Lucy_in_the_Sky_with_Diamonds"]),
            &song("Picture yourself in a boat on a river... Lucy in the sky with diamonds"),
        )
        .unwrap();
    cluster
        .put(
            "Music",
            "Song",
            RowKey::new(["The_Beatles", "Magical_Mystery_Tour", "I_am_the_Walrus"]),
            &song("I am he as you are he... goo goo g'joob"),
        )
        .unwrap();

    // The paper's example query.
    let hits = cluster
        .get_uri("/Music/Song/The_Beatles?query=lyrics:\"Lucy in the sky\"")
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(
        hits[0].0,
        RowKey::new(["The_Beatles", "Sgt._Pepper", "Lucy_in_the_Sky_with_Diamonds"])
    );
}

#[test]
fn index_reflects_updates_and_deletes() {
    let cluster = cluster(2, 4, 1);
    let key = RowKey::new(["Akon", "Trouble", "Locked_Up"]);
    cluster
        .put("Music", "Song", key.clone(), &song("im locked up they wont let me out"))
        .unwrap();
    assert_eq!(
        cluster.get_uri("/Music/Song/Akon?query=lyrics:locked").unwrap().len(),
        1
    );
    cluster
        .put("Music", "Song", key.clone(), &song("different words now"))
        .unwrap();
    assert!(cluster.get_uri("/Music/Song/Akon?query=lyrics:locked").unwrap().is_empty());
    assert_eq!(
        cluster.get_uri("/Music/Song/Akon?query=lyrics:different").unwrap().len(),
        1
    );
    cluster.delete("Music", "Song", key).unwrap();
    assert!(cluster.get_uri("/Music/Song/Akon?query=lyrics:different").unwrap().is_empty());
}

#[test]
fn transactional_multi_table_post() {
    let cluster = cluster(3, 8, 2);
    // Post a new album and its songs in one transaction (the paper's
    // example for the wildcard-table POST).
    let docs = vec![
        (
            "Album".to_string(),
            RowKey::new(["Etta_James", "Gold"]),
            album(2007),
        ),
        (
            "Song".to_string(),
            RowKey::new(["Etta_James", "Gold", "At_Last"]),
            song("At last my love has come along"),
        ),
        (
            "Song".to_string(),
            RowKey::new(["Etta_James", "Gold", "Sunday_Kind_Of_Love"]),
            song("I want a Sunday kind of love"),
        ),
    ];
    cluster.post_transactional("Music", docs).unwrap();
    assert_eq!(cluster.get_uri("/Music/Song/Etta_James/Gold").unwrap().len(), 2);
    assert_eq!(cluster.get_uri("/Music/Album/Etta_James").unwrap().len(), 1);

    // Mixed resource ids are rejected: they may hash to different
    // partitions, so no transactional guarantee is possible.
    let err = cluster
        .post_transactional(
            "Music",
            vec![
                ("Album".to_string(), RowKey::new(["A", "x"]), album(2000)),
                ("Album".to_string(), RowKey::new(["B", "y"]), album(2001)),
            ],
        )
        .unwrap_err();
    assert!(matches!(err, EspressoError::BadRequest(_)));
}

#[test]
fn conditional_requests_use_etags() {
    let cluster = cluster(2, 4, 1);
    let key = RowKey::new(["Akon", "Trouble"]);
    // If-None-Match (etag 0): create.
    let etag = cluster
        .put_if_match("Music", "Album", key.clone(), 0, &album(2004))
        .unwrap();
    // If-Match with the right etag: update.
    let etag2 = cluster
        .put_if_match("Music", "Album", key.clone(), etag, &album(2005))
        .unwrap();
    assert!(etag2 > etag);
    // Stale etag: precondition failed.
    let err = cluster
        .put_if_match("Music", "Album", key.clone(), etag, &album(2006))
        .unwrap_err();
    assert!(matches!(err, EspressoError::PreconditionFailed { .. }));
}

#[test]
fn partitioning_matches_application_view() {
    // Figure IV.2 vs IV.3: the client sees one logical table; rows are
    // hash-distributed by artist across partition masters.
    let cluster = cluster(4, 16, 2);
    seed_albums(&cluster);
    let schema = cluster.schema("Music").unwrap();
    let view = cluster.controller().external_view("Music").unwrap();
    for artist in ["Akon", "Babyface", "Coolio"] {
        let p = schema.read().partition_of(artist);
        let (partition, master) = cluster.route("Music", artist).unwrap();
        assert_eq!(partition, p);
        assert_eq!(view.master_of(PartitionId(p)), Some(master));
        // All documents of one artist live wholly on that master.
        let node = cluster.node(master).unwrap();
        let docs = node
            .get_collection("Music", "Album", &RowKey::single(artist))
            .unwrap();
        assert!(!docs.is_empty());
    }
}

#[test]
fn replication_is_timeline_consistent_and_failover_preserves_data() {
    let cluster = cluster(3, 6, 2);
    seed_albums(&cluster);
    cluster.pump_replication().unwrap();

    // Pick the master of Akon's partition and kill it.
    let (_partition, master) = cluster.route("Music", "Akon").unwrap();
    // More writes after the pump — these must survive via the relay drain.
    cluster
        .put("Music", "Album", RowKey::new(["Akon", "Konvicted"]), &album(2006))
        .unwrap();
    cluster.crash_node(master).unwrap();

    // A new master answers, with ALL committed data.
    let (_, new_master) = cluster.route("Music", "Akon").unwrap();
    assert_ne!(new_master, master);
    let albums = cluster.get_uri("/Music/Album/Akon").unwrap();
    let titles: Vec<&str> = albums.iter().map(|(k, _)| k.0[1].as_str()).collect();
    assert!(titles.contains(&"Trouble"));
    assert!(titles.contains(&"Stadium"));
    assert!(
        titles.contains(&"Konvicted"),
        "post-pump write lost in failover: {titles:?}"
    );

    // Writes keep flowing on the new master.
    cluster
        .put("Music", "Album", RowKey::new(["Akon", "Freedom"]), &album(2008))
        .unwrap();
    assert_eq!(cluster.get_uri("/Music/Album/Akon").unwrap().len(), 4);
}

#[test]
fn restart_rejoins_and_recovers_replication() {
    let cluster = cluster(3, 6, 2);
    seed_albums(&cluster);
    cluster.pump_replication().unwrap();
    let (_, master) = cluster.route("Music", "Babyface").unwrap();
    cluster.crash_node(master).unwrap();
    cluster
        .put("Music", "Album", RowKey::new(["Babyface", "The_Day"]), &album(1996))
        .unwrap();
    cluster.restart_node(master).unwrap();
    cluster.pump_replication().unwrap();
    // Cluster fully serves everything.
    assert_eq!(cluster.get_uri("/Music/Album/Babyface").unwrap().len(), 4);
}

#[test]
fn cluster_expansion_moves_partitions_without_data_loss() {
    let cluster = cluster(2, 8, 2);
    seed_albums(&cluster);
    cluster.pump_replication().unwrap();

    cluster.add_node(NodeId(2)).unwrap();
    // The newcomer hosts replicas now.
    let view = cluster.controller().external_view("Music").unwrap();
    assert!(
        !view.partitions_on(NodeId(2)).is_empty(),
        "new node hosts nothing"
    );
    // Every document still retrievable.
    for (artist, count) in [("Akon", 2), ("Babyface", 3), ("Coolio", 1)] {
        assert_eq!(
            cluster.get_uri(&format!("/Music/Album/{artist}")).unwrap().len(),
            count,
            "{artist}"
        );
    }
    // And writes route correctly post-expansion.
    cluster
        .put("Music", "Album", RowKey::new(["Akon", "Freedom"]), &album(2008))
        .unwrap();
    assert_eq!(cluster.get_uri("/Music/Album/Akon").unwrap().len(), 3);
}

#[test]
fn schema_evolution_reads_old_documents() {
    let cluster = cluster(2, 4, 1);
    let key = RowKey::new(["Akon", "Trouble"]);
    cluster.put("Music", "Album", key.clone(), &album(2004)).unwrap();

    // Evolve: add a rating field with a default.
    {
        let schema = cluster.schema("Music").unwrap();
        let mut schema = schema.write();
        let mut fields = album_schema().fields;
        fields.push(Field::new("rating", FieldType::Long).with_default(Value::Long(0)));
        let v2 = RecordSchema::new("Album", 2, fields).unwrap();
        schema.evolve_document_schema(v2).unwrap();
    }

    // Old document resolves under the new schema with the default.
    let hits = cluster.get_uri("/Music/Album/Akon/Trouble").unwrap();
    assert_eq!(hits[0].1.get("rating"), Some(&Value::Long(0)));

    // New writes carry the new version and can set the field.
    let v2_doc = album(2004).with("rating", Value::Long(5));
    cluster.put("Music", "Album", key, &v2_doc).unwrap();
    let hits = cluster.get_uri("/Music/Album/Akon/Trouble").unwrap();
    assert_eq!(hits[0].1.get("rating"), Some(&Value::Long(5)));
}

#[test]
fn document_schema_definable_in_json() {
    // "Schemas are represented in JSON in the format specified by Avro" —
    // define the Album document schema exactly as it would be POSTed to
    // the schema URI.
    let json = r#"{
        "name": "Album",
        "version": 1,
        "fields": [
            { "name": "year", "type": "long", "indexed": true },
            { "name": "label", "type": { "optional": "str" } }
        ]
    }"#;
    let parsed = RecordSchema::from_json(json).unwrap();
    let db = DatabaseSchema::new("Music", 4, 1)
        .with_table(TableSchema::new("Album", ["artist", "album"]), parsed)
        .unwrap();
    let cluster = EspressoCluster::new(2).unwrap();
    cluster.create_database(db).unwrap();
    cluster
        .put("Music", "Album", RowKey::new(["Akon", "Trouble"]), &album(2004))
        .unwrap();
    // The indexed annotation from JSON drives secondary-index queries.
    let hits = cluster.get_uri("/Music/Album/Akon?query=year:2004").unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn writes_to_non_master_rejected() {
    let cluster = cluster(3, 6, 2);
    seed_albums(&cluster);
    let (partition, master) = cluster.route("Music", "Akon").unwrap();
    // Find a node that is NOT the master for Akon's partition.
    let other = (0..3)
        .map(NodeId)
        .find(|&id| id != master)
        .unwrap();
    let node = cluster.node(other).unwrap();
    let err = node
        .put_document("Music", "Album", RowKey::new(["Akon", "X"]), &album(2000))
        .unwrap_err();
    match err {
        EspressoError::NotMaster { partition: p } => assert_eq!(p, partition),
        other => panic!("expected NotMaster, got {other}"),
    }
}

#[test]
fn unpartitioned_database_serves_from_single_partition() {
    // "the only supported partitioning strategies are hash-based
    // partitioning or un-partitioned" — the un-partitioned variant routes
    // every resource to partition 0.
    let mut schema = music_db(4, 2);
    schema.strategy = li_espresso::PartitionStrategy::Unpartitioned;
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(schema).unwrap();
    seed_albums(&cluster);
    let (p_akon, master_akon) = cluster.route("Music", "Akon").unwrap();
    let (p_cool, master_cool) = cluster.route("Music", "Coolio").unwrap();
    assert_eq!(p_akon, 0);
    assert_eq!(p_cool, 0);
    assert_eq!(master_akon, master_cool, "one master serves everything");
    assert_eq!(cluster.get_uri("/Music/Album/Babyface").unwrap().len(), 3);
}

#[test]
fn downstream_cdc_consumers_see_all_changes() {
    // Espresso "provides a Change Data Capture pipeline to downstream
    // consumers": anything written is observable on the nodes' relays.
    let cluster = cluster(2, 4, 1);
    seed_albums(&cluster);
    let mut total_changes = 0;
    for id in [NodeId(0), NodeId(1)] {
        let relay = cluster.relay(id).unwrap();
        let windows = relay
            .events_after(0, usize::MAX, &li_databus::ServerFilter::all())
            .unwrap();
        total_changes += windows.iter().map(|w| w.changes.len()).sum::<usize>();
    }
    assert_eq!(total_changes, 6, "every document write visible via CDC");
}
