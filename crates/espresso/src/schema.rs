//! Database, table, and document schemas.
//!
//! "In Espresso, a database is a container of tables. A table is a
//! container of documents. Each database, table, and document has an
//! associated schema. Schemas are represented in JSON in the format
//! specified by Avro. A database schema defines how the database is
//! partitioned. ... A table schema defines how documents within the table
//! are referenced. ... The document schema defines the structure of the
//! documents stored within a table. Document schemas are freely evolvable."
//! (§IV.A)

use li_commons::schema::{RecordSchema, SchemaError, SchemaRegistry, SchemaVersion};
use serde::{get_field, object, DeError, Deserialize, JsonValue, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How a database's documents spread over partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// `hash(resource_id) % num_partitions` — "at present, the only
    /// supported partitioning strategies are hash-based partitioning or
    /// un-partitioned".
    Hash,
    /// Every document on every node.
    Unpartitioned,
}

/// JSON form (serde's externally-tagged unit variants): a bare string
/// with the variant name.
impl Serialize for PartitionStrategy {
    fn to_json_value(&self) -> JsonValue {
        let tag = match self {
            PartitionStrategy::Hash => "Hash",
            PartitionStrategy::Unpartitioned => "Unpartitioned",
        };
        JsonValue::Str(tag.into())
    }
}

impl Deserialize for PartitionStrategy {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        match value.as_str() {
            Some("Hash") => Ok(PartitionStrategy::Hash),
            Some("Unpartitioned") => Ok(PartitionStrategy::Unpartitioned),
            _ => Err(DeError::expected("partition strategy", value)),
        }
    }
}

/// Schema of one table: how documents are keyed beneath the resource id.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name (`Artist`, `Album`, `Song`).
    pub name: String,
    /// Names of the URI path elements that key a document, starting with
    /// the resource id: `["artist"]` for a singleton-resource table,
    /// `["artist", "album", "song"]` for nested collections.
    pub key_elements: Vec<String>,
}

impl Serialize for TableSchema {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("name", self.name.to_json_value()),
            ("key_elements", self.key_elements.to_json_value()),
        ])
    }
}

impl Deserialize for TableSchema {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(TableSchema {
            name: get_field(value, "name")?,
            key_elements: get_field(value, "key_elements")?,
        })
    }
}

impl TableSchema {
    /// Creates a table schema.
    pub fn new<I, S>(name: impl Into<String>, key_elements: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableSchema {
            name: name.into(),
            key_elements: key_elements.into_iter().map(Into::into).collect(),
        }
    }

    /// Depth of a full document key.
    pub fn key_depth(&self) -> usize {
        self.key_elements.len()
    }
}

/// Schema of a database: partitioning + tables + per-table document schema
/// histories.
#[derive(Debug, Clone)]
pub struct DatabaseSchema {
    /// Database name (`Music`).
    pub name: String,
    /// Partitioning strategy.
    pub strategy: PartitionStrategy,
    /// Number of partitions (ignored for unpartitioned databases).
    pub num_partitions: u32,
    /// Replicas per partition ("each partition is replicated n ways within
    /// the cluster. The replication factor is specified in the schema for
    /// the database").
    pub replication: usize,
    /// Tables by name.
    pub tables: BTreeMap<String, TableSchema>,
    /// Document schema version history per table.
    pub documents: SchemaRegistry,
}

impl DatabaseSchema {
    /// Creates a hash-partitioned database schema.
    pub fn new(name: impl Into<String>, num_partitions: u32, replication: usize) -> Self {
        DatabaseSchema {
            name: name.into(),
            strategy: PartitionStrategy::Hash,
            num_partitions: num_partitions.max(1),
            replication: replication.max(1),
            tables: BTreeMap::new(),
            documents: SchemaRegistry::new(),
        }
    }

    /// Adds a table with its initial (version 1) document schema. The
    /// document schema is registered under the table name.
    pub fn with_table(
        mut self,
        table: TableSchema,
        document_schema: RecordSchema,
    ) -> Result<Self, EspressoError> {
        if document_schema.name != table.name {
            return Err(EspressoError::Schema(SchemaError::Invalid(format!(
                "document schema `{}` must be named after table `{}`",
                document_schema.name, table.name
            ))));
        }
        if table.key_elements.is_empty() {
            return Err(EspressoError::Schema(SchemaError::Invalid(format!(
                "table `{}` needs at least one key element",
                table.name
            ))));
        }
        self.documents.register(document_schema)?;
        self.tables.insert(table.name.clone(), table);
        Ok(self)
    }

    /// Evolves a table's document schema to a new version ("to evolve a
    /// document schema, one simply posts a new version to the schema URI.
    /// New document schemas must be compatible").
    pub fn evolve_document_schema(
        &mut self,
        schema: RecordSchema,
    ) -> Result<SchemaVersion, EspressoError> {
        if !self.tables.contains_key(&schema.name) {
            return Err(EspressoError::UnknownTable(schema.name));
        }
        Ok(self.documents.register(schema)?)
    }

    /// The table schema for `table`.
    pub fn table(&self, table: &str) -> Result<&TableSchema, EspressoError> {
        self.tables
            .get(table)
            .ok_or_else(|| EspressoError::UnknownTable(table.into()))
    }

    /// Partition of a resource id.
    pub fn partition_of(&self, resource_id: &str) -> u32 {
        match self.strategy {
            PartitionStrategy::Hash => {
                (li_commons::fnv::fnv1a(resource_id.as_bytes()) % u64::from(self.num_partitions))
                    as u32
            }
            PartitionStrategy::Unpartitioned => 0,
        }
    }
}

/// Errors from the Espresso layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EspressoError {
    /// Schema definition / evolution / codec failure.
    Schema(SchemaError),
    /// Unknown database.
    UnknownDatabase(String),
    /// Unknown table within a database.
    UnknownTable(String),
    /// A URI could not be parsed or doesn't match the table schema.
    BadRequest(String),
    /// The document does not exist.
    NotFound(String),
    /// Conditional request failed (etag mismatch).
    PreconditionFailed {
        /// Expected etag.
        expected: u64,
        /// Actual etag.
        actual: u64,
    },
    /// The routed-to node is not master for the partition (stale routing
    /// table or mid-failover).
    NotMaster {
        /// The partition involved.
        partition: u32,
    },
    /// No master is currently assigned (mid-failover).
    NoMaster {
        /// The partition involved.
        partition: u32,
    },
    /// Storage-layer failure.
    Storage(String),
    /// Replication/relay failure.
    Replication(String),
    /// Cluster-manager failure.
    Cluster(String),
}

impl fmt::Display for EspressoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EspressoError::Schema(e) => write!(f, "schema error: {e}"),
            EspressoError::UnknownDatabase(name) => write!(f, "unknown database `{name}`"),
            EspressoError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            EspressoError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EspressoError::NotFound(uri) => write!(f, "not found: {uri}"),
            EspressoError::PreconditionFailed { expected, actual } => {
                write!(f, "precondition failed: etag expected {expected}, actual {actual}")
            }
            EspressoError::NotMaster { partition } => {
                write!(f, "not master for partition {partition}")
            }
            EspressoError::NoMaster { partition } => {
                write!(f, "no master for partition {partition}")
            }
            EspressoError::Storage(msg) => write!(f, "storage error: {msg}"),
            EspressoError::Replication(msg) => write!(f, "replication error: {msg}"),
            EspressoError::Cluster(msg) => write!(f, "cluster error: {msg}"),
        }
    }
}

impl std::error::Error for EspressoError {}

impl From<SchemaError> for EspressoError {
    fn from(e: SchemaError) -> Self {
        EspressoError::Schema(e)
    }
}

impl From<li_sqlstore::DbError> for EspressoError {
    fn from(e: li_sqlstore::DbError) -> Self {
        match e {
            li_sqlstore::DbError::EtagMismatch { expected, actual } => {
                EspressoError::PreconditionFailed { expected, actual }
            }
            other => EspressoError::Storage(other.to_string()),
        }
    }
}

impl From<li_helix::HelixError> for EspressoError {
    fn from(e: li_helix::HelixError) -> Self {
        EspressoError::Cluster(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::schema::{Field, FieldType, Value};

    fn album_doc_schema(version: u16) -> RecordSchema {
        RecordSchema::new(
            "Album",
            version,
            vec![
                Field::new("year", FieldType::Long),
                Field::new("genre", FieldType::Str).indexed(),
            ],
        )
        .unwrap()
    }

    fn music() -> DatabaseSchema {
        DatabaseSchema::new("Music", 8, 2)
            .with_table(
                TableSchema::new("Album", ["artist", "album"]),
                album_doc_schema(1),
            )
            .unwrap()
    }

    #[test]
    fn table_registration_and_lookup() {
        let db = music();
        assert_eq!(db.table("Album").unwrap().key_depth(), 2);
        assert!(matches!(
            db.table("Song"),
            Err(EspressoError::UnknownTable(_))
        ));
    }

    #[test]
    fn document_schema_must_match_table_name() {
        let err = DatabaseSchema::new("Music", 8, 2)
            .with_table(
                TableSchema::new("Album", ["artist", "album"]),
                RecordSchema::new("Wrong", 1, vec![]).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, EspressoError::Schema(_)));
    }

    #[test]
    fn hash_partitioning_spreads_and_is_stable() {
        let db = music();
        let p = db.partition_of("Akon");
        assert_eq!(p, db.partition_of("Akon"));
        let distinct: std::collections::HashSet<u32> =
            (0..100).map(|i| db.partition_of(&format!("artist-{i}"))).collect();
        assert!(distinct.len() > 4, "uses many partitions");
        assert!(distinct.iter().all(|&p| p < 8));
    }

    #[test]
    fn unpartitioned_maps_everything_to_zero() {
        let mut db = music();
        db.strategy = PartitionStrategy::Unpartitioned;
        assert_eq!(db.partition_of("anything"), 0);
    }

    #[test]
    fn schema_evolution_via_registry() {
        let mut db = music();
        let mut fields = album_doc_schema(1).fields;
        fields.push(Field::new("label", FieldType::Str).with_default(Value::Str("".into())));
        let v2 = RecordSchema::new("Album", 2, fields).unwrap();
        assert_eq!(db.evolve_document_schema(v2).unwrap(), 2);
        assert_eq!(db.documents.latest("Album").unwrap().version, 2);
        // Unknown table rejected.
        let stray = RecordSchema::new("Nope", 1, vec![]).unwrap();
        assert!(matches!(
            db.evolve_document_schema(stray),
            Err(EspressoError::UnknownTable(_))
        ));
    }
}
