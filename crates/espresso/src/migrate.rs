//! Online partition migration for Espresso.
//!
//! The paper's expansion recipe — "we first bootstrap the new partition
//! from a snapshot taken from the original master partition, and then
//! apply any changes since the snapshot from the Databus Relay" — run as
//! a phased, never-blocking migration of a *single* partition to a node
//! that does not currently host it:
//!
//! 1. **Snapshot** — copy the partition's rows from the current master to
//!    the target ([`StorageNode::bootstrap_partition`]), recording the
//!    relay checkpoint taken *before* the copy.
//! 2. **Delta catch-up** — replay binlog windows from the master's relay
//!    ([`StorageNode::sync_partition`]) until a round applies nothing.
//! 3. **Dual-write** — a no-op switch here: every master commit already
//!    ships semi-synchronously to the relay the target is subscribed to,
//!    so the replication stream *is* the dual write.
//! 4. **Verify + cutover** — drain once more, shadow-compare the full
//!    partition image on both sides, and only then let Helix install the
//!    target partition map ([`Controller::retarget_partition`]). The flip
//!    runs through the normal safety phases, and the target's final
//!    `Slave → Master` promotion drains the relay one last time *after*
//!    the donor has been demoted — no acked write can be left behind.
//!
//! [`Controller::retarget_partition`]: li_helix::Controller::retarget_partition

use std::collections::BTreeMap;
use std::sync::Arc;

use li_commons::migrate::{MigrationConfig, MigrationCoordinator, MigrationDriver, VerifyReport};
use li_commons::ring::{NodeId, PartitionId};
use li_helix::ReplicaState;
use li_sqlstore::{Row, RowKey};

use crate::cluster::EspressoCluster;
use crate::node::StorageNode;
use crate::schema::EspressoError;

/// A live partition migration: the [`MigrationDriver`] that a
/// [`MigrationCoordinator`] steps through the phases above. Create one
/// with [`EspressoCluster::begin_partition_migration`] (or run the whole
/// machine with [`EspressoCluster::migrate_partition`]).
pub struct EspressoPartitionMigration {
    cluster: Arc<EspressoCluster>,
    db: String,
    partition: u32,
    /// The master at begin time — the snapshot + relay source.
    source: NodeId,
    to: NodeId,
}

impl std::fmt::Debug for EspressoPartitionMigration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EspressoPartitionMigration")
            .field("db", &self.db)
            .field("partition", &self.partition)
            .field("source", &self.source)
            .field("to", &self.to)
            .finish()
    }
}

impl EspressoPartitionMigration {
    /// Database being migrated.
    pub fn db(&self) -> &str {
        &self.db
    }

    /// Partition being migrated.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// The donor (master at begin time).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The node gaining the partition.
    pub fn target(&self) -> NodeId {
        self.to
    }

    fn endpoints(&self) -> Result<(Arc<StorageNode>, Arc<StorageNode>), EspressoError> {
        Ok((self.cluster.node(self.source)?, self.cluster.node(self.to)?))
    }

    /// The partition's full image on `node`, keyed for order-insensitive
    /// comparison.
    fn partition_image(
        &self,
        node: &StorageNode,
    ) -> Result<BTreeMap<(String, RowKey), Row>, EspressoError> {
        let (rows, _) = node.snapshot_partition(&self.db, self.partition)?;
        Ok(rows
            .into_iter()
            .map(|(table, key, row)| ((table, key), row))
            .collect())
    }
}

impl MigrationDriver for EspressoPartitionMigration {
    fn snapshot(&self) -> Result<u64, String> {
        let (src, dst) = self.endpoints().map_err(|e| e.to_string())?;
        // Idempotent: a retried step after a partial earlier attempt that
        // did record the checkpoint just resumes from the relay.
        if dst.has_stream(self.source, &self.db, self.partition) {
            return Ok(0);
        }
        let (rows, checkpoint) = src
            .snapshot_partition(&self.db, self.partition)
            .map_err(|e| e.to_string())?;
        let copied = rows.len() as u64;
        dst.bootstrap_partition(&self.db, self.partition, self.source, rows, checkpoint)
            .map_err(|e| e.to_string())?;
        Ok(copied)
    }

    fn delta_round(&self) -> Result<u64, String> {
        let (_, dst) = self.endpoints().map_err(|e| e.to_string())?;
        let relay = self.cluster.relay(self.source).map_err(|e| e.to_string())?;
        dst.sync_partition(&self.db, self.partition, self.source, &relay)
            .map(|applied| applied as u64)
            .map_err(|e| e.to_string())
    }

    fn begin_dual_write(&self) -> Result<(), String> {
        // Every commit the master acks is already in its relay ("each
        // change is written to two places before being committed") and the
        // target holds a checkpointed subscription — the stream is the
        // dual write, so there is nothing to switch on.
        Ok(())
    }

    fn verify_round(&self) -> Result<VerifyReport, String> {
        let (src, dst) = self.endpoints().map_err(|e| e.to_string())?;
        let relay = self.cluster.relay(self.source).map_err(|e| e.to_string())?;
        dst.sync_partition(&self.db, self.partition, self.source, &relay)
            .map_err(|e| e.to_string())?;
        let source_rows = self.partition_image(&src).map_err(|e| e.to_string())?;
        let target_rows = self.partition_image(&dst).map_err(|e| e.to_string())?;
        let mut compared = 0;
        let mut mismatches = 0;
        for (key, row) in &source_rows {
            compared += 1;
            if target_rows.get(key) != Some(row) {
                mismatches += 1;
            }
        }
        for key in target_rows.keys() {
            if !source_rows.contains_key(key) {
                compared += 1;
                mismatches += 1;
            }
        }
        Ok(VerifyReport {
            compared,
            mismatches,
        })
    }

    fn cutover(&self) -> Result<(), String> {
        // Helix installs the target partition map and drives the flip
        // through the safety phases; the target's Slave→Master handler
        // drains the relay after the donor demoted, so the handoff is the
        // final delta round.
        self.cluster
            .controller()
            .retarget_partition(
                &self.db,
                PartitionId(self.partition),
                self.source,
                self.to,
            )
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn abort(&self) {
        // Nothing to unwind: the donor stayed authoritative throughout,
        // and the target's slave copy is simply overwritten by any later
        // re-bootstrap.
    }
}

impl EspressoCluster {
    /// Validates and opens a partition migration of `(db, partition)` to
    /// `to`, returning the driver to step with a [`MigrationCoordinator`].
    /// The donor is the current master; `to` must be a live node that does
    /// not already host the partition.
    pub fn begin_partition_migration(
        self: &Arc<Self>,
        db: &str,
        partition: u32,
        to: NodeId,
    ) -> Result<EspressoPartitionMigration, EspressoError> {
        let schema = self.schema(db)?;
        let num_partitions = schema.read().num_partitions;
        if partition >= num_partitions {
            return Err(EspressoError::Cluster(format!(
                "partition {partition} out of range ({db} has {num_partitions})"
            )));
        }
        self.node(to)?;
        let pid = PartitionId(partition);
        let view = self.controller().external_view(db)?;
        let source = view
            .master_of(pid)
            .ok_or(EspressoError::NoMaster { partition })?;
        if source == to {
            return Err(EspressoError::Cluster(format!(
                "{to} already masters {db}/p{partition}"
            )));
        }
        if view.state_of(pid, to) != ReplicaState::Offline {
            return Err(EspressoError::Cluster(format!(
                "{to} already hosts {db}/p{partition}"
            )));
        }
        if !self.controller().live_nodes()?.contains(&to) {
            return Err(EspressoError::Cluster(format!(
                "{to} is not live; cannot gain {db}/p{partition}"
            )));
        }
        Ok(EspressoPartitionMigration {
            cluster: Arc::clone(self),
            db: db.to_string(),
            partition,
            source,
            to,
        })
    }

    /// Runs a whole partition migration to completion under default
    /// [`MigrationConfig`], reporting phases and counters under the
    /// cluster registry's `migration.` scope.
    pub fn migrate_partition(
        self: &Arc<Self>,
        db: &str,
        partition: u32,
        to: NodeId,
    ) -> Result<(), EspressoError> {
        let driver = self.begin_partition_migration(db, partition, to)?;
        MigrationCoordinator::new(self.metrics(), MigrationConfig::default())
            .run(&driver, 64)
            .map_err(|e| EspressoError::Cluster(format!("migration: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::migrate::MigrationPhase;
    use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
    use crate::schema::{DatabaseSchema, TableSchema};

    const DB: &str = "Music";

    fn cluster_with_db() -> Arc<EspressoCluster> {
        let schema = DatabaseSchema::new(DB, 8, 2)
            .with_table(
                TableSchema::new("Album", ["artist", "album"]),
                RecordSchema::new(
                    "Album",
                    1,
                    vec![Field::new("year", FieldType::Long)],
                )
                .unwrap(),
            )
            .unwrap();
        let cluster = EspressoCluster::new(3).unwrap();
        cluster.create_database(schema).unwrap();
        cluster
    }

    fn album(year: i64) -> Record {
        Record::new().with("year", Value::Long(year))
    }

    /// Resource ids `artist<i>` that land in the same partition as
    /// `artist0`, plus that partition.
    fn same_partition_artists(cluster: &EspressoCluster, want: usize) -> (u32, Vec<String>) {
        let schema = cluster.schema(DB).unwrap();
        let partition = schema.read().partition_of("artist0");
        let mut artists = vec!["artist0".to_string()];
        let mut i = 1;
        while artists.len() < want {
            let candidate = format!("artist{i}");
            if schema.read().partition_of(&candidate) == partition {
                artists.push(candidate);
            }
            i += 1;
        }
        (partition, artists)
    }

    #[test]
    fn phased_migration_moves_mastership_without_losing_writes() {
        let cluster = cluster_with_db();
        let (partition, artists) = same_partition_artists(&cluster, 3);
        let pid = PartitionId(partition);
        let view = cluster.controller().external_view(DB).unwrap();
        let source = view.master_of(pid).unwrap();
        let target = (0..3)
            .map(NodeId)
            .find(|&n| view.state_of(pid, n) == ReplicaState::Offline)
            .unwrap();

        // A row that exists before the snapshot.
        cluster
            .put(DB, "Album", RowKey::new([artists[0].as_str(), "a"]), &album(2000))
            .unwrap();

        let driver = cluster
            .begin_partition_migration(DB, partition, target)
            .unwrap();
        assert_eq!(driver.source(), source);
        let coordinator =
            MigrationCoordinator::new(cluster.metrics(), MigrationConfig::default());

        // Snapshot copies the pre-existing row.
        assert_eq!(
            coordinator.step(&driver).unwrap(),
            MigrationPhase::DeltaCatchup
        );

        // A write landing after the snapshot must arrive via the binlog
        // delta, not the copy.
        cluster
            .put(DB, "Album", RowKey::new([artists[1].as_str(), "b"]), &album(2010))
            .unwrap();

        let mut writes_during_dual = false;
        for _ in 0..64 {
            let phase = coordinator.step(&driver).unwrap();
            if phase == MigrationPhase::DualWrite && !writes_during_dual {
                // Keep traffic flowing while shadow verification runs.
                cluster
                    .put(DB, "Album", RowKey::new([artists[2].as_str(), "c"]), &album(2020))
                    .unwrap();
                writes_during_dual = true;
            }
            if phase == MigrationPhase::Done {
                break;
            }
        }
        assert_eq!(coordinator.phase(), MigrationPhase::Done);

        // Mastership flipped to the target; the donor no longer hosts.
        let after = cluster.controller().external_view(DB).unwrap();
        assert_eq!(after.master_of(pid), Some(target));
        assert_eq!(after.state_of(pid, source), ReplicaState::Offline);
        assert!(cluster.node(target).unwrap().is_master(DB, partition));
        assert!(!cluster.node(source).unwrap().is_master(DB, partition));

        // Every acked write — pre-snapshot, mid-delta, and during
        // dual-write — is served by the new master through the router.
        for (artist, sub, year) in [
            (artists[0].as_str(), "a", 2000i64),
            (artists[1].as_str(), "b", 2010),
            (artists[2].as_str(), "c", 2020),
        ] {
            let (record, _) = cluster
                .get(DB, "Album", &RowKey::new([artist, sub]))
                .unwrap()
                .unwrap_or_else(|| panic!("{artist}/{sub} lost in migration"));
            assert_eq!(record.get("year"), Some(&Value::Long(year)));
        }

        // And the partition keeps taking writes, now mastered by the
        // target.
        cluster
            .put(DB, "Album", RowKey::new([artists[0].as_str(), "d"]), &album(2030))
            .unwrap();
        assert!(cluster
            .node(target)
            .unwrap()
            .get_document(DB, "Album", &RowKey::new([artists[0].as_str(), "d"]))
            .unwrap()
            .is_some());
    }

    #[test]
    fn begin_rejects_bad_targets() {
        let cluster = cluster_with_db();
        let (partition, _) = same_partition_artists(&cluster, 1);
        let pid = PartitionId(partition);
        let view = cluster.controller().external_view(DB).unwrap();
        let master = view.master_of(pid).unwrap();
        let slave = view.slaves_of(pid)[0];
        assert!(cluster.begin_partition_migration(DB, partition, master).is_err());
        assert!(cluster.begin_partition_migration(DB, partition, slave).is_err());
        assert!(cluster.begin_partition_migration(DB, 999, NodeId(0)).is_err());
        assert!(cluster
            .begin_partition_migration(DB, partition, NodeId(42))
            .is_err());
    }

    #[test]
    fn whole_machine_runs_via_migrate_partition() {
        let cluster = cluster_with_db();
        let (partition, artists) = same_partition_artists(&cluster, 1);
        let pid = PartitionId(partition);
        cluster
            .put(DB, "Album", RowKey::new([artists[0].as_str(), "x"]), &album(1999))
            .unwrap();
        let view = cluster.controller().external_view(DB).unwrap();
        let target = (0..3)
            .map(NodeId)
            .find(|&n| view.state_of(pid, n) == ReplicaState::Offline)
            .unwrap();
        cluster.migrate_partition(DB, partition, target).unwrap();
        assert_eq!(
            cluster.controller().external_view(DB).unwrap().master_of(pid),
            Some(target)
        );
        assert!(cluster
            .get(DB, "Album", &RowKey::new([artists[0].as_str(), "x"]))
            .unwrap()
            .is_some());
        let snapshot = cluster.metrics().snapshot();
        assert_eq!(snapshot.counter("migration.cutover_flips"), Some(1));
        assert_eq!(snapshot.counter("migration.cutover_refusals"), Some(0));
    }
}
