//! Local secondary index — the Lucene analog.
//!
//! "Fields within the document schema may be annotated with indexing
//! constraints, indicating that documents should be indexed for retrieval
//! via the field's value. HTTP query parameters allow retrieval of
//! documents via these secondary indexes. ... Queries first consult a local
//! secondary index then return the matching documents from the local data
//! store" (§IV.A/B). The index is *local*: it only answers within one
//! partition's documents, which is why "indexed access is limited to
//! collection resources accessed via a common resource_id".

use li_commons::schema::Value;
use li_sqlstore::RowKey;
use std::collections::{BTreeMap, BTreeSet};

/// An inverted index over one table's documents (per storage node).
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// (field, token) -> document keys.
    postings: BTreeMap<(String, String), BTreeSet<RowKey>>,
    /// Reverse map for unindexing on update/delete.
    by_doc: BTreeMap<RowKey, Vec<(String, String)>>,
}

/// Lowercases and splits on non-alphanumerics — free-text tokenization for
/// the paper's `lyrics:"Lucy in the sky"` example.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

fn tokens_for(value: &Value) -> Vec<String> {
    match value {
        Value::Str(s) => tokenize(s),
        Value::Long(v) => vec![v.to_string()],
        Value::Double(v) => vec![v.to_string()],
        Value::Bool(b) => vec![b.to_string()],
        Value::Array(items) => items.iter().flat_map(tokens_for).collect(),
        Value::Bytes(_) | Value::Null => Vec::new(),
    }
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes (or re-indexes) a document's indexed fields.
    pub fn index_document<'a>(
        &mut self,
        key: &RowKey,
        fields: impl IntoIterator<Item = (&'a str, &'a Value)>,
    ) {
        self.remove_document(key);
        let mut entries = Vec::new();
        for (field, value) in fields {
            for token in tokens_for(value) {
                let posting = (field.to_string(), token);
                self.postings
                    .entry(posting.clone())
                    .or_default()
                    .insert(key.clone());
                entries.push(posting);
            }
        }
        if !entries.is_empty() {
            self.by_doc.insert(key.clone(), entries);
        }
    }

    /// Removes a document from the index.
    pub fn remove_document(&mut self, key: &RowKey) {
        if let Some(entries) = self.by_doc.remove(key) {
            for posting in entries {
                if let Some(set) = self.postings.get_mut(&posting) {
                    set.remove(key);
                    if set.is_empty() {
                        self.postings.remove(&posting);
                    }
                }
            }
        }
    }

    /// Documents whose `field` contains every token of `term` (free-text
    /// AND query), optionally restricted to keys under `collection`.
    pub fn query(&self, field: &str, term: &str, collection: Option<&RowKey>) -> Vec<RowKey> {
        let tokens = tokenize(term);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut result: Option<BTreeSet<RowKey>> = None;
        for token in tokens {
            let posting = self
                .postings
                .get(&(field.to_string(), token))
                .cloned()
                .unwrap_or_default();
            result = Some(match result {
                None => posting,
                Some(acc) => acc.intersection(&posting).cloned().collect(),
            });
            if result.as_ref().is_some_and(BTreeSet::is_empty) {
                return Vec::new();
            }
        }
        result
            .unwrap_or_default()
            .into_iter()
            .filter(|key| collection.is_none_or(|prefix| key.starts_with(prefix)))
            .collect()
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.by_doc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn song(artist: &str, album: &str, title: &str) -> RowKey {
        RowKey::new([artist, album, title])
    }

    #[test]
    fn free_text_query_matches_all_tokens() {
        let mut index = InvertedIndex::new();
        let lucy = song("The_Beatles", "Sgt_Pepper", "Lucy_in_the_Sky");
        let walrus = song("The_Beatles", "Magical_Mystery_Tour", "I_am_the_Walrus");
        index.index_document(
            &lucy,
            [("lyrics", &Value::Str("Lucy in the sky with diamonds".into()))],
        );
        index.index_document(
            &walrus,
            [("lyrics", &Value::Str("I am the walrus, in the sky goo goo".into()))],
        );
        // The paper's query: all tokens must match.
        let hits = index.query("lyrics", "Lucy in the sky", None);
        assert_eq!(hits, vec![lucy.clone()]);
        // Single shared token matches both.
        let hits = index.query("lyrics", "sky", None);
        assert_eq!(hits.len(), 2);
        // Case-insensitive.
        assert_eq!(index.query("lyrics", "LUCY", None), vec![lucy]);
    }

    #[test]
    fn collection_restriction() {
        let mut index = InvertedIndex::new();
        let beatles = song("The_Beatles", "A", "X");
        let stones = song("Rolling_Stones", "B", "Y");
        index.index_document(&beatles, [("genre", &Value::Str("rock".into()))]);
        index.index_document(&stones, [("genre", &Value::Str("rock".into()))]);
        let all = index.query("genre", "rock", None);
        assert_eq!(all.len(), 2);
        let collection = RowKey::single("The_Beatles");
        let scoped = index.query("genre", "rock", Some(&collection));
        assert_eq!(scoped, vec![beatles]);
    }

    #[test]
    fn reindex_replaces_old_postings() {
        let mut index = InvertedIndex::new();
        let key = song("A", "B", "C");
        index.index_document(&key, [("genre", &Value::Str("jazz".into()))]);
        assert_eq!(index.query("genre", "jazz", None).len(), 1);
        index.index_document(&key, [("genre", &Value::Str("blues".into()))]);
        assert!(index.query("genre", "jazz", None).is_empty());
        assert_eq!(index.query("genre", "blues", None).len(), 1);
        assert_eq!(index.doc_count(), 1);
    }

    #[test]
    fn remove_unindexes() {
        let mut index = InvertedIndex::new();
        let key = song("A", "B", "C");
        index.index_document(&key, [("genre", &Value::Str("soul".into()))]);
        index.remove_document(&key);
        assert!(index.query("genre", "soul", None).is_empty());
        assert_eq!(index.doc_count(), 0);
        // Idempotent.
        index.remove_document(&key);
    }

    #[test]
    fn numeric_and_array_fields_indexed() {
        let mut index = InvertedIndex::new();
        let key = song("A", "B", "C");
        index.index_document(
            &key,
            [
                ("year", &Value::Long(2004)),
                (
                    "tags",
                    &Value::Array(vec![Value::Str("live".into()), Value::Str("remaster".into())]),
                ),
            ],
        );
        assert_eq!(index.query("year", "2004", None).len(), 1);
        assert_eq!(index.query("tags", "remaster", None).len(), 1);
        assert!(index.query("tags", "studio", None).is_empty());
    }

    #[test]
    fn unknown_field_or_empty_term() {
        let index = InvertedIndex::new();
        assert!(index.query("nope", "x", None).is_empty());
        assert!(index.query("nope", "  ", None).is_empty());
    }
}
