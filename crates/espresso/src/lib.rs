//! # li-espresso — distributed document store (Espresso reproduction)
//!
//! Paper §IV: "Espresso is a distributed, timeline consistent, scalable,
//! document store that supports local secondary indexing and local
//! transactions. Espresso relies on Databus for internal replication and
//! therefore provides a Change Data Capture pipeline to downstream
//! consumers." It "bridges the semantic gap between a simple Key Value
//! store like Voldemort and a full RDBMS."
//!
//! The four components of Figure IV.1 map onto the modules here:
//!
//! * **Router** ([`cluster::EspressoCluster`] routing paths) — parses the
//!   hierarchical URI (`/<database>/<table>/<resource_id>[/<sub>…]`,
//!   [`uri`]), hashes the `resource_id` to a partition, consults the
//!   cluster manager's external view for the master, and dispatches.
//! * **Storage node** ([`node`]) — an `li-sqlstore` instance (the MySQL
//!   analog, one binlog per node for sequential I/O) plus a Lucene-analog
//!   inverted index ([`index`]) per table, maintained transactionally with
//!   document writes. Documents are schema-versioned binary records
//!   ([`schema`], Avro-analog) supporting free evolution.
//! * **Relay** — each node's binlog ships semi-synchronously to an
//!   `li-databus` relay ("each change is written to two places before
//!   being committed"), from which slave partitions replicate in commit
//!   order (timeline consistency) and downstream consumers get CDC.
//! * **Cluster manager** — `li-helix` drives the MasterSlave state machine:
//!   failover promotes a slave *after* it drains the relay; expansion
//!   bootstraps new replicas from a snapshot, catches up from the relay,
//!   then hands off mastership.
//!
//! ```
//! use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
//! use li_espresso::{DatabaseSchema, EspressoCluster, TableSchema};
//! use li_sqlstore::RowKey;
//!
//! let schema = DatabaseSchema::new("Music", 8, 2).with_table(
//!     TableSchema::new("Album", ["artist", "album"]),
//!     RecordSchema::new("Album", 1, vec![Field::new("year", FieldType::Long)])?,
//! )?;
//! let cluster = EspressoCluster::new(3)?;
//! cluster.create_database(schema)?;
//!
//! cluster.put(
//!     "Music", "Album",
//!     RowKey::new(["Akon", "Trouble"]),
//!     &Record::new().with("year", Value::Long(2004)),
//! )?;
//! let hits = cluster.get_uri("/Music/Album/Akon/Trouble")?;
//! assert_eq!(hits[0].1.get("year"), Some(&Value::Long(2004)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod globalindex;
pub mod index;
pub mod migrate;
pub mod node;
pub mod schema;
pub mod uri;

pub use cluster::EspressoCluster;
pub use globalindex::GlobalIndex;
pub use index::InvertedIndex;
pub use migrate::EspressoPartitionMigration;
pub use node::StorageNode;
pub use schema::{DatabaseSchema, EspressoError, PartitionStrategy, TableSchema};
pub use uri::ResourcePath;
