//! Global secondary indexes — the paper's stated future enhancement.
//!
//! §IV.A: "At present, indexed access is limited to collection resources
//! accessed via a common resource_id in the URI path. Future enhancements
//! will implement global secondary indexes maintained via a listener to
//! the update stream." This module builds that enhancement on the
//! machinery that already exists: every storage node's commits flow
//! through its Databus relay, so a listener consuming all relays sees
//! every committed write exactly once (slave applies and bootstrap copies
//! never re-ship) and can maintain a cluster-wide index.
//!
//! Unlike the local index (updated transactionally with the write), the
//! global index is **eventually consistent**: it trails the update stream
//! by the pump interval — the standard trade-off for cross-partition
//! queries.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use li_commons::ring::NodeId;
use li_databus::ServerFilter;
use li_sqlstore::{Op, RowKey, Scn};

use crate::cluster::EspressoCluster;
use crate::index::InvertedIndex;
use crate::schema::EspressoError;

/// A cluster-wide secondary index over one database, fed by the update
/// stream of every storage node.
pub struct GlobalIndex {
    cluster: Arc<EspressoCluster>,
    db: String,
    /// table -> inverted index over *all* partitions.
    indexes: Mutex<HashMap<String, InvertedIndex>>,
    /// Consumption progress per storage-node relay.
    checkpoints: Mutex<HashMap<NodeId, Scn>>,
    /// Nodes whose streams this listener follows.
    sources: Vec<NodeId>,
}

impl GlobalIndex {
    /// Creates a listener over `db`'s update stream. It starts at the
    /// current head of history (SCN 0 on every relay), so index it before
    /// writing, or call [`GlobalIndex::pump`] to catch up.
    pub fn new(cluster: Arc<EspressoCluster>, db: &str, sources: Vec<NodeId>) -> Self {
        GlobalIndex {
            cluster,
            db: db.to_string(),
            indexes: Mutex::new(HashMap::new()),
            checkpoints: Mutex::new(HashMap::new()),
            sources,
        }
    }

    /// Consumes new update-stream windows from every node's relay and
    /// folds them into the global index. Returns windows applied.
    pub fn pump(&self) -> Result<usize, EspressoError> {
        let schema = self.cluster.schema(&self.db)?;
        let tables: Vec<String> = schema.read().tables.keys().cloned().collect();
        let filter = ServerFilter::for_tables(
            tables.iter().map(|t| format!("{}.{t}", self.db)),
        );
        let mut applied = 0;
        for &node in &self.sources {
            let relay = self.cluster.relay(node)?;
            let checkpoint = *self.checkpoints.lock().get(&node).unwrap_or(&0);
            let windows = relay
                .events_after_shared(checkpoint, usize::MAX, &filter)
                .map_err(|e| EspressoError::Replication(e.to_string()))?;
            for window in &windows {
                for change in &window.changes {
                    let Some((_, table)) = change.table.split_once('.') else {
                        continue;
                    };
                    match &change.op {
                        Op::Put(row) => {
                            // Decode under the writer schema, resolve to
                            // latest, index the annotated fields.
                            let schema = schema.read();
                            let Ok(writer) = schema.documents.get(table, row.schema_version)
                            else {
                                continue;
                            };
                            let Ok(reader) = schema.documents.latest(table) else {
                                continue;
                            };
                            let Ok(record) =
                                li_commons::schema::resolve(&writer, &reader, &row.value)
                            else {
                                continue;
                            };
                            let fields: Vec<(&str, &li_commons::schema::Value)> = reader
                                .indexed_fields()
                                .filter_map(|f| record.get(&f.name).map(|v| (f.name.as_str(), v)))
                                .collect();
                            self.indexes
                                .lock()
                                .entry(table.to_string())
                                .or_default()
                                .index_document(&change.key, fields);
                        }
                        Op::Delete => {
                            if let Some(index) = self.indexes.lock().get_mut(table) {
                                index.remove_document(&change.key);
                            }
                        }
                    }
                }
                self.checkpoints.lock().insert(node, window.scn);
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Global query: matching documents across *all* resources — the
    /// access pattern local indexes cannot serve. Returns the keys; fetch
    /// the documents through the router as usual.
    pub fn query(&self, table: &str, field: &str, term: &str) -> Vec<RowKey> {
        self.indexes
            .lock()
            .get(table)
            .map(|index| index.query(field, term, None))
            .unwrap_or_default()
    }

    /// Number of documents currently indexed for `table`.
    pub fn doc_count(&self, table: &str) -> usize {
        self.indexes
            .lock()
            .get(table)
            .map(InvertedIndex::doc_count)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, PartitionStrategy, TableSchema};
    use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};

    fn cluster_with_songs() -> Arc<EspressoCluster> {
        let schema = DatabaseSchema::new("Music", 8, 2)
            .with_table(
                TableSchema::new("Song", ["artist", "album", "song"]),
                RecordSchema::new(
                    "Song",
                    1,
                    vec![Field::new("lyrics", FieldType::Str).indexed()],
                )
                .unwrap(),
            )
            .unwrap();
        let cluster = EspressoCluster::new(3).unwrap();
        cluster.create_database(schema).unwrap();
        cluster
    }

    fn song(lyrics: &str) -> Record {
        Record::new().with("lyrics", Value::Str(lyrics.into()))
    }

    #[test]
    fn global_query_spans_resources() {
        let cluster = cluster_with_songs();
        // Songs by *different artists* mentioning the same word — a local
        // (per-resource) index can never answer this in one query.
        cluster
            .put("Music", "Song", RowKey::new(["Beatles", "Abbey", "Sun"]),
                 &song("here comes the sun"))
            .unwrap();
        cluster
            .put("Music", "Song", RowKey::new(["Nina", "Feeling", "Sunshine"]),
                 &song("sun in the sky you know how I feel"))
            .unwrap();
        cluster
            .put("Music", "Song", RowKey::new(["Adele", "25", "Hello"]),
                 &song("hello from the other side"))
            .unwrap();

        let global = GlobalIndex::new(
            cluster.clone(),
            "Music",
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        assert!(global.pump().unwrap() > 0);
        let mut hits = global.query("Song", "lyrics", "sun");
        hits.sort();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].resource_id(), Some("Beatles"));
        assert_eq!(hits[1].resource_id(), Some("Nina"));
        assert_eq!(global.doc_count("Song"), 3);
    }

    #[test]
    fn listener_is_eventually_consistent() {
        let cluster = cluster_with_songs();
        let global = GlobalIndex::new(
            cluster.clone(),
            "Music",
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        cluster
            .put("Music", "Song", RowKey::new(["A", "B", "C"]), &song("eventual"))
            .unwrap();
        // Not yet pumped: the write is invisible globally.
        assert!(global.query("Song", "lyrics", "eventual").is_empty());
        global.pump().unwrap();
        assert_eq!(global.query("Song", "lyrics", "eventual").len(), 1);
        // Incremental pumps only process new windows.
        assert_eq!(global.pump().unwrap(), 0);
    }

    #[test]
    fn deletes_and_updates_propagate() {
        let cluster = cluster_with_songs();
        let global = GlobalIndex::new(
            cluster.clone(),
            "Music",
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        let key = RowKey::new(["A", "B", "C"]);
        cluster.put("Music", "Song", key.clone(), &song("first words")).unwrap();
        global.pump().unwrap();
        cluster.put("Music", "Song", key.clone(), &song("second words")).unwrap();
        global.pump().unwrap();
        assert!(global.query("Song", "lyrics", "first").is_empty());
        assert_eq!(global.query("Song", "lyrics", "second").len(), 1);
        cluster.delete("Music", "Song", key).unwrap();
        global.pump().unwrap();
        assert!(global.query("Song", "lyrics", "second").is_empty());
        assert_eq!(global.doc_count("Song"), 0);
    }

    #[test]
    fn unpartitioned_strategy_also_flows() {
        // Sanity: strategy only affects placement, not the update stream.
        let mut schema = DatabaseSchema::new("Tiny", 1, 1)
            .with_table(
                TableSchema::new("Doc", ["id"]),
                RecordSchema::new(
                    "Doc",
                    1,
                    vec![Field::new("body", FieldType::Str).indexed()],
                )
                .unwrap(),
            )
            .unwrap();
        schema.strategy = PartitionStrategy::Unpartitioned;
        let cluster = EspressoCluster::new(2).unwrap();
        cluster.create_database(schema).unwrap();
        cluster
            .put("Tiny", "Doc", RowKey::single("1"),
                 &Record::new().with("body", Value::Str("needle".into())))
            .unwrap();
        let global = GlobalIndex::new(cluster.clone(), "Tiny", vec![NodeId(0), NodeId(1)]);
        global.pump().unwrap();
        assert_eq!(global.query("Doc", "body", "needle").len(), 1);
    }
}
