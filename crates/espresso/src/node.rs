//! The Espresso storage node.
//!
//! "The storage node maintains a consistent view of each document in a
//! local data store and optionally indexes each document in a local
//! secondary index based on the index constraints specified in the
//! document schema. The initial implementation stores documents in MySQL
//! as the local data store and Lucene for the local secondary index"
//! (§IV.B). Here the local data store is an `li-sqlstore` [`Database`]
//! (one instance, one binlog per node — the paper's sequential-I/O
//! argument) and the index is [`InvertedIndex`].
//!
//! Writes are accepted only for partitions this node currently *masters*
//! (normally one writer per partition exists cluster-wide); every commit
//! ships semi-synchronously to the node's Databus relay before it is
//! acknowledged. Slave partitions are fed by [`StorageNode::bootstrap_partition`]
//! (snapshot copy) plus [`StorageNode::sync_partition`] (relay catch-up),
//! applied in commit order — timeline consistency.

use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use li_commons::ring::NodeId;
use li_commons::schema::{Record, SchemaVersion};
use li_databus::{Relay, ServerFilter};
use li_sqlstore::{Database, Op, Row, RowKey, Scn};

use crate::index::InvertedIndex;
use crate::schema::{DatabaseSchema, EspressoError};

/// Shared, evolvable database schema handle.
pub type SchemaHandle = Arc<RwLock<DatabaseSchema>>;

/// Rows of one partition: `(table, key, row)` triples.
pub type PartitionSnapshot = Vec<(String, RowKey, Row)>;

fn qualified(db: &str, table: &str) -> String {
    format!("{db}.{table}")
}

/// One storage node.
pub struct StorageNode {
    id: NodeId,
    store: Arc<Database>,
    relay: Arc<Relay>,
    schemas: RwLock<HashMap<String, SchemaHandle>>,
    indexes: Mutex<HashMap<String, InvertedIndex>>,
    /// (database, partition) pairs this node currently masters.
    mastered: RwLock<HashSet<(String, u32)>>,
    /// Replication progress per (source node, database, partition).
    checkpoints: Mutex<HashMap<(NodeId, String, u32), Scn>>,
}

impl std::fmt::Debug for StorageNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageNode")
            .field("id", &self.id)
            .field("mastered", &self.mastered.read().len())
            .field("last_scn", &self.store.last_scn())
            .finish()
    }
}

impl StorageNode {
    /// Creates a node whose commits ship semi-synchronously to `relay`.
    pub fn new(id: NodeId, relay: Arc<Relay>) -> Self {
        let store = Arc::new(Database::new(format!("espresso-node-{}", id.0)));
        store.set_shipper(relay.clone());
        StorageNode {
            id,
            store,
            relay,
            schemas: RwLock::new(HashMap::new()),
            indexes: Mutex::new(HashMap::new()),
            mastered: RwLock::new(HashSet::new()),
            checkpoints: Mutex::new(HashMap::new()),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The relay this node publishes its binlog to.
    pub fn relay(&self) -> &Arc<Relay> {
        &self.relay
    }

    /// Commit SCN of the local store.
    pub fn last_scn(&self) -> Scn {
        self.store.last_scn()
    }

    /// Provisions the local tables and index structures for a database.
    pub fn create_database(&self, schema: SchemaHandle) -> Result<(), EspressoError> {
        let (name, tables) = {
            let s = schema.read();
            (s.name.clone(), s.tables.keys().cloned().collect::<Vec<_>>())
        };
        for table in &tables {
            self.store.create_table(qualified(&name, table))?;
            self.indexes
                .lock()
                .insert(qualified(&name, table), InvertedIndex::new());
        }
        self.schemas.write().insert(name, schema);
        Ok(())
    }

    fn schema(&self, db: &str) -> Result<SchemaHandle, EspressoError> {
        self.schemas
            .read()
            .get(db)
            .cloned()
            .ok_or_else(|| EspressoError::UnknownDatabase(db.into()))
    }

    /// Marks this node master for `(db, partition)` — called by the Helix
    /// transition handler on Slave→Master.
    pub fn set_master(&self, db: &str, partition: u32, master: bool) {
        let mut mastered = self.mastered.write();
        if master {
            mastered.insert((db.to_string(), partition));
        } else {
            mastered.remove(&(db.to_string(), partition));
        }
    }

    /// True when this node masters `(db, partition)`.
    pub fn is_master(&self, db: &str, partition: u32) -> bool {
        self.mastered.read().contains(&(db.to_string(), partition))
    }

    fn check_master(&self, db: &str, resource_id: &str) -> Result<u32, EspressoError> {
        let schema = self.schema(db)?;
        let partition = schema.read().partition_of(resource_id);
        if !self.is_master(db, partition) {
            return Err(EspressoError::NotMaster { partition });
        }
        Ok(partition)
    }

    fn validate_key(
        schema: &DatabaseSchema,
        table: &str,
        key: &RowKey,
    ) -> Result<(), EspressoError> {
        let table_schema = schema.table(table)?;
        if key.0.len() != table_schema.key_depth() {
            return Err(EspressoError::BadRequest(format!(
                "table `{table}` keys have {} elements, got {}",
                table_schema.key_depth(),
                key.0.len()
            )));
        }
        Ok(())
    }

    fn index_record(&self, db: &str, table: &str, key: &RowKey, record: &Record) {
        let schema = match self.schema(db) {
            Ok(s) => s,
            Err(_) => return,
        };
        let schema = schema.read();
        let Ok(doc_schema) = schema.documents.latest(table) else {
            return;
        };
        let mut indexes = self.indexes.lock();
        let Some(index) = indexes.get_mut(&qualified(db, table)) else {
            return;
        };
        let fields: Vec<(&str, &li_commons::schema::Value)> = doc_schema
            .indexed_fields()
            .filter_map(|f| record.get(&f.name).map(|v| (f.name.as_str(), v)))
            .collect();
        index.index_document(key, fields);
    }

    fn unindex(&self, db: &str, table: &str, key: &RowKey) {
        if let Some(index) = self.indexes.lock().get_mut(&qualified(db, table)) {
            index.remove_document(key);
        }
    }

    /// Encodes + validates a record under the table's latest document
    /// schema. Returns `(bytes, version)`.
    fn encode_document(
        &self,
        db: &str,
        table: &str,
        record: &Record,
    ) -> Result<(Vec<u8>, SchemaVersion), EspressoError> {
        let schema = self.schema(db)?;
        let schema = schema.read();
        let doc_schema = schema.documents.latest(table)?;
        let bytes = li_commons::schema::encode(&doc_schema, record)?;
        Ok((bytes, doc_schema.version))
    }

    /// Decodes stored bytes, resolving from the writer schema version to
    /// the latest (schema evolution on read).
    fn decode_document(
        &self,
        db: &str,
        table: &str,
        row: &Row,
    ) -> Result<Record, EspressoError> {
        let schema = self.schema(db)?;
        let schema = schema.read();
        let writer = schema.documents.get(table, row.schema_version)?;
        let reader = schema.documents.latest(table)?;
        Ok(li_commons::schema::resolve(&writer, &reader, &row.value)?)
    }

    /// Writes one document (master path). Returns the new etag.
    pub fn put_document(
        &self,
        db: &str,
        table: &str,
        key: RowKey,
        record: &Record,
    ) -> Result<u64, EspressoError> {
        // The returned commit SCN doubles as the document's etag.
        self.put_transactional(db, vec![(table.to_string(), key, record.clone())])
    }

    /// Conditional write: fails unless the stored etag matches
    /// `expected_etag` (0 = must not exist).
    pub fn put_document_if_match(
        &self,
        db: &str,
        table: &str,
        key: RowKey,
        expected_etag: u64,
        record: &Record,
    ) -> Result<u64, EspressoError> {
        let resource = key
            .resource_id()
            .ok_or_else(|| EspressoError::BadRequest("empty key".into()))?
            .to_string();
        self.check_master(db, &resource)?;
        {
            let schema = self.schema(db)?;
            Self::validate_key(&schema.read(), table, &key)?;
        }
        let (bytes, version) = self.encode_document(db, table, record)?;
        let scn = self
            .store
            .put_if_etag(&qualified(db, table), key.clone(), expected_etag, bytes, version)?;
        self.index_record(db, table, &key, record);
        Ok(scn)
    }

    /// Transactional multi-document write: "tables with a common
    /// resource_id schema may be updated transactionally. ... Espresso
    /// guarantees either all updates commit successfully or none commit."
    /// All keys must share the same resource id (hence partition).
    pub fn put_transactional(
        &self,
        db: &str,
        documents: Vec<(String, RowKey, Record)>,
    ) -> Result<Scn, EspressoError> {
        if documents.is_empty() {
            return Err(EspressoError::BadRequest("empty transaction".into()));
        }
        let resource = documents[0]
            .1
            .resource_id()
            .ok_or_else(|| EspressoError::BadRequest("empty key".into()))?
            .to_string();
        for (_, key, _) in &documents {
            if key.resource_id() != Some(resource.as_str()) {
                return Err(EspressoError::BadRequest(
                    "transactional updates must share a resource_id".into(),
                ));
            }
        }
        self.check_master(db, &resource)?;

        let schema = self.schema(db)?;
        let mut txn = self.store.begin();
        let mut encoded = Vec::with_capacity(documents.len());
        {
            let schema = schema.read();
            for (table, key, record) in &documents {
                Self::validate_key(&schema, table, key)?;
                let doc_schema = schema.documents.latest(table)?;
                let bytes = li_commons::schema::encode(&doc_schema, record)?;
                txn.put(qualified(db, table), key.clone(), bytes, doc_schema.version);
                encoded.push((table.clone(), key.clone(), record.clone()));
            }
        }
        let scn = self.store.commit(txn)?;
        for (table, key, record) in &encoded {
            self.index_record(db, table, key, record);
        }
        Ok(scn)
    }

    /// Deletes a document (master path).
    pub fn delete_document(
        &self,
        db: &str,
        table: &str,
        key: RowKey,
    ) -> Result<(), EspressoError> {
        let resource = key
            .resource_id()
            .ok_or_else(|| EspressoError::BadRequest("empty key".into()))?
            .to_string();
        self.check_master(db, &resource)?;
        self.store.delete_one(&qualified(db, table), key.clone())?;
        self.unindex(db, table, &key);
        Ok(())
    }

    /// Reads one document plus its metadata row.
    pub fn get_document(
        &self,
        db: &str,
        table: &str,
        key: &RowKey,
    ) -> Result<Option<(Record, Row)>, EspressoError> {
        match self.store.get(&qualified(db, table), key)? {
            None => Ok(None),
            Some(row) => {
                let record = self.decode_document(db, table, &row)?;
                Ok(Some((record, row)))
            }
        }
    }

    /// Reads a collection: every document under `prefix`, in key order.
    pub fn get_collection(
        &self,
        db: &str,
        table: &str,
        prefix: &RowKey,
    ) -> Result<Vec<(RowKey, Record)>, EspressoError> {
        let rows = self.store.scan_prefix(&qualified(db, table), prefix)?;
        rows.into_iter()
            .map(|(key, row)| Ok((key.clone(), self.decode_document(db, table, &row)?)))
            .collect()
    }

    /// Secondary-index query within a collection: consult the local index,
    /// then fetch matching documents from the local store.
    pub fn query(
        &self,
        db: &str,
        table: &str,
        collection: Option<&RowKey>,
        field: &str,
        term: &str,
    ) -> Result<Vec<(RowKey, Record)>, EspressoError> {
        let keys = {
            let indexes = self.indexes.lock();
            let index = indexes
                .get(&qualified(db, table))
                .ok_or_else(|| EspressoError::UnknownTable(table.into()))?;
            index.query(field, term, collection)
        };
        keys.into_iter()
            .filter_map(|key| match self.store.get(&qualified(db, table), &key) {
                Ok(Some(row)) => Some(
                    self.decode_document(db, table, &row)
                        .map(|record| (key, record)),
                ),
                _ => None,
            })
            .collect()
    }

    /// Snapshot of every row of `(db, partition)` across all tables —
    /// the bootstrap source for a new slave. Returns the rows plus the
    /// SCN to start relay consumption from.
    pub fn snapshot_partition(
        &self,
        db: &str,
        partition: u32,
    ) -> Result<(PartitionSnapshot, Scn), EspressoError> {
        let schema = self.schema(db)?;
        let schema = schema.read();
        // Read the SCN *before* copying: replaying (checkpoint, now] over
        // the copy is idempotent, so at-least-once is safe; reading it
        // after could miss commits that landed mid-copy.
        let checkpoint = self.store.last_scn();
        let mut rows = Vec::new();
        for table in schema.tables.keys() {
            for (key, row) in self.store.scan_prefix(&qualified(db, table), &RowKey::default())? {
                let Some(resource) = key.resource_id() else {
                    continue;
                };
                if schema.partition_of(resource) == partition {
                    rows.push((table.clone(), key, row));
                }
            }
        }
        Ok((rows, checkpoint))
    }

    /// Installs a bootstrap snapshot for `(db, partition)` from `source`
    /// and records the relay checkpoint — phase 1 of "we first bootstrap
    /// the new partition from a snapshot taken from the original master
    /// partition, and then apply any changes since the snapshot from the
    /// Databus Relay".
    pub fn bootstrap_partition(
        &self,
        db: &str,
        partition: u32,
        source: NodeId,
        rows: PartitionSnapshot,
        checkpoint: Scn,
    ) -> Result<(), EspressoError> {
        let changes: Vec<li_sqlstore::RowChange> = rows
            .iter()
            .map(|(table, key, row)| li_sqlstore::RowChange {
                table: qualified(db, table),
                key: key.clone(),
                op: Op::Put(row.clone()),
            })
            .collect();
        self.store.apply_changes(&changes)?;
        for (table, key, row) in &rows {
            if let Ok(record) = self.decode_document(db, table, row) {
                self.index_record(db, table, key, &record);
            }
        }
        self.checkpoints
            .lock()
            .insert((source, db.to_string(), partition), checkpoint);
        Ok(())
    }

    /// True when this node has a replication checkpoint for
    /// `(source, db, partition)` — i.e. it has bootstrapped that stream.
    pub fn has_stream(&self, source: NodeId, db: &str, partition: u32) -> bool {
        self.checkpoints
            .lock()
            .contains_key(&(source, db.to_string(), partition))
    }

    /// Pulls and applies new windows for `(db, partition)` from the
    /// master's relay, in commit order. Returns windows applied. Passing
    /// the same call again is safe (at-least-once, idempotent puts).
    pub fn sync_partition(
        &self,
        db: &str,
        partition: u32,
        source: NodeId,
        source_relay: &Relay,
    ) -> Result<usize, EspressoError> {
        let key = (source, db.to_string(), partition);
        let checkpoint = *self
            .checkpoints
            .lock()
            .get(&key)
            .ok_or_else(|| EspressoError::Replication(format!(
                "no bootstrap for {db}/p{partition} from {source}"
            )))?;
        let schema = self.schema(db)?;
        let (num_partitions, tables) = {
            let s = schema.read();
            (
                s.num_partitions,
                s.tables
                    .keys()
                    .map(|t| qualified(db, t))
                    .collect::<Vec<_>>(),
            )
        };
        let filter = ServerFilter {
            tables: Some(tables),
            partitions: Some((num_partitions, vec![partition])),
        };
        // Shared views: matching windows are read in place from the relay
        // buffer; only partially-matching windows are trimmed into copies.
        let windows = source_relay
            .events_after_shared(checkpoint, usize::MAX, &filter)
            .map_err(|e| EspressoError::Replication(e.to_string()))?;
        let mut applied = 0;
        for window in &windows {
            self.store.apply_changes(&window.changes)?;
            for change in &window.changes {
                // Maintain the local index from the replicated stream.
                let Some((db_name, table)) = change.table.split_once('.') else {
                    continue;
                };
                match &change.op {
                    Op::Put(row) => {
                        if let Ok(record) = self.decode_document(db_name, table, row) {
                            self.index_record(db_name, table, &change.key, &record);
                        }
                    }
                    Op::Delete => self.unindex(db_name, table, &change.key),
                }
            }
            self.checkpoints.lock().insert(key.clone(), window.scn);
            applied += 1;
        }
        Ok(applied)
    }

    /// Number of documents stored for `(db, table)` (diagnostics).
    pub fn doc_count(&self, db: &str, table: &str) -> Result<usize, EspressoError> {
        Ok(self.store.row_count(&qualified(db, table))?)
    }
}
