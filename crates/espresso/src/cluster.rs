//! The full Espresso deployment: router + storage nodes + relays + Helix.
//!
//! Figure IV.1 wiring. The router "accepts HTTP requests, inspects the URI
//! ... applies the routing function to the resource_id ... consults the
//! routing table maintained by the cluster manager to determine which
//! storage node is the master for the partition" — here the routing table
//! is the Helix external view. Relays live in their own fault-tolerant
//! tier: a storage-node crash does not take its relay's buffered changes
//! down with it, which is exactly what makes the paper's failover safe
//! ("if a storage node fails, the committed changes can still be found in
//! the Databus relay and propagated to other storage nodes").

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Weak};

use li_commons::exec::{fan_out, FanOutMode, FanOutOptions, FanOutPool, FanOutTask};
use li_commons::metrics::{Counter, Histo, MetricsRegistry};
use li_commons::ring::{NodeId, PartitionId};
use li_commons::schema::Record;
use li_databus::Relay;
use li_helix::{Controller, Participant, ReplicaState, ResourceConfig, Transition};
use li_sqlstore::{Row, RowKey};
use li_zk::ZooKeeper;

use crate::node::{SchemaHandle, StorageNode};
use crate::schema::{DatabaseSchema, EspressoError};
use crate::uri::ResourcePath;

/// One master node's slice of a multi-key request: `(original index,
/// key, payload)` per document, input order preserved.
type MasterBatch<T> = Vec<(usize, RowKey, T)>;

/// Relay buffer budget per storage node (bytes).
const RELAY_BUFFER_BYTES: usize = 8 << 20;

/// Router/cluster observability under `espresso.router.`: end-to-end
/// request latency and count through the routed API, plus failovers
/// triggered by node crashes.
#[derive(Debug, Clone)]
struct EspressoMetrics {
    request_latency: Histo,
    requests: Counter,
    failovers: Counter,
}

impl EspressoMetrics {
    fn new(registry: &Arc<MetricsRegistry>) -> Self {
        let scope = registry.scope("espresso.router");
        EspressoMetrics {
            request_latency: scope.histogram("request.latency_ns"),
            requests: scope.counter("requests"),
            failovers: scope.counter("failovers"),
        }
    }
}

/// A complete in-process Espresso cluster.
pub struct EspressoCluster {
    zk: ZooKeeper,
    controller: Controller,
    nodes: RwLock<HashMap<NodeId, Arc<StorageNode>>>,
    relays: RwLock<HashMap<NodeId, Arc<Relay>>>,
    participants: Mutex<HashMap<NodeId, Participant>>,
    schemas: RwLock<HashMap<String, SchemaHandle>>,
    /// Cached external views, one watch receiver per database. The hot
    /// routing path reads the latest published assignment from here (one
    /// short lock + an `Arc` clone) instead of a coordination-service get
    /// plus JSON parse per request; the Helix controller pushes every
    /// rebalanced view into the watch.
    views: RwLock<HashMap<String, li_commons::watch::Receiver<Arc<li_helix::Assignment>>>>,
    /// How multi-key requests execute their per-master-node sub-batches.
    /// Deterministic (the default) runs them inline in node order —
    /// replayable; Parallel fans them out over [`Self::fan_out_pool`].
    fan_out_mode: RwLock<FanOutMode>,
    /// Read-mostly handle to the router's shared fan-out pool, created
    /// lazily on first Parallel multi-key request (Deterministic clusters
    /// spawn no threads). Same idiom as the Voldemort quorum pool.
    fan_out_pool: RwLock<Option<Arc<FanOutPool>>>,
    registry: Arc<MetricsRegistry>,
    metrics: EspressoMetrics,
}

impl std::fmt::Debug for EspressoCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EspressoCluster")
            .field("nodes", &self.nodes.read().len())
            .field("databases", &self.schemas.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl EspressoCluster {
    /// Builds a cluster of `node_count` storage nodes (ids 0..n), each with
    /// its own relay, all joined to a fresh coordination service.
    pub fn new(node_count: u16) -> Result<Arc<Self>, EspressoError> {
        Self::with_metrics(node_count, &MetricsRegistry::new())
    }

    /// [`Self::new`], but publishing into a caller-supplied registry — so
    /// a site-wide deployment can watch Espresso in the same snapshot as
    /// every other tier (`espresso.router.*` plus one
    /// `databus.relay.espresso-node-N.*` family per storage node).
    pub fn with_metrics(
        node_count: u16,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Arc<Self>, EspressoError> {
        let zk = ZooKeeper::new();
        let controller = Controller::new(&zk, "espresso")?;
        let registry = Arc::clone(registry);
        let cluster = Arc::new(EspressoCluster {
            zk,
            controller,
            nodes: RwLock::new(HashMap::new()),
            relays: RwLock::new(HashMap::new()),
            participants: Mutex::new(HashMap::new()),
            schemas: RwLock::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            fan_out_mode: RwLock::new(FanOutMode::Deterministic),
            fan_out_pool: RwLock::new(None),
            metrics: EspressoMetrics::new(&registry),
            registry,
        });
        for i in 0..node_count {
            cluster.attach_node(NodeId(i))?;
        }
        Ok(cluster)
    }

    /// Creates a storage node + relay and joins it to the cluster.
    fn attach_node(self: &Arc<Self>, id: NodeId) -> Result<(), EspressoError> {
        let relay = Arc::new(Relay::with_metrics(
            format!("espresso-node-{}", id.0),
            RELAY_BUFFER_BYTES,
            &self.registry,
        ));
        let node = Arc::new(StorageNode::new(id, relay.clone()));
        // Existing databases get provisioned on the newcomer.
        for schema in self.schemas.read().values() {
            node.create_database(schema.clone())?;
        }
        self.nodes.write().insert(id, node.clone());
        self.relays.write().insert(id, relay);
        let participant = Participant::join(&self.zk, "espresso", id)?;
        self.participants.lock().insert(id, participant);
        let weak: Weak<EspressoCluster> = Arc::downgrade(self);
        self.controller.register_handler(
            id,
            Arc::new(move |transition: &Transition| {
                let Some(cluster) = weak.upgrade() else {
                    return Err("cluster gone".to_string());
                };
                cluster
                    .handle_transition(&node, transition)
                    .map_err(|e| e.to_string())
            }),
        );
        Ok(())
    }

    /// Executes one Helix transition task on `node`.
    fn handle_transition(
        &self,
        node: &Arc<StorageNode>,
        t: &Transition,
    ) -> Result<(), EspressoError> {
        let db = &t.resource;
        let partition = t.partition.0;
        match (t.from, t.to) {
            (ReplicaState::Slave, ReplicaState::Master) => {
                // "The slave partition first consumes all outstanding
                // changes to the partition from the Databus relay, and then
                // becomes a master partition."
                let prev_master = self.controller.external_view(db)?.master_of(t.partition);
                if let Some(prev) = prev_master {
                    if prev != node.id() {
                        // A returning node (e.g. restarted after a crash)
                        // may never have followed the interim master: seed
                        // a stream with a snapshot first, if the previous
                        // master is still alive to serve one.
                        if !node.has_stream(prev, db, partition)
                            && self.controller.live_nodes()?.contains(&prev)
                        {
                            let prev_node = self.node(prev)?;
                            let (rows, checkpoint) =
                                prev_node.snapshot_partition(db, partition)?;
                            node.bootstrap_partition(db, partition, prev, rows, checkpoint)?;
                        }
                        if node.has_stream(prev, db, partition) {
                            let relay = self
                                .relays
                                .read()
                                .get(&prev)
                                .cloned()
                                .ok_or_else(|| EspressoError::Replication(format!(
                                    "no relay for {prev}"
                                )))?;
                            node.sync_partition(db, partition, prev, &relay)?;
                        }
                    }
                }
                node.set_master(db, partition, true);
                Ok(())
            }
            (ReplicaState::Master, ReplicaState::Slave) => {
                node.set_master(db, partition, false);
                Ok(())
            }
            // Offline→Slave bootstrapping happens lazily in
            // `pump_replication` (the stream source is only knowable once a
            // master is published); Slave→Offline keeps local data, which a
            // later re-bootstrap simply overwrites.
            _ => Ok(()),
        }
    }

    /// Creates a database across the cluster and lets Helix assign its
    /// partitions.
    pub fn create_database(&self, schema: DatabaseSchema) -> Result<(), EspressoError> {
        let name = schema.name.clone();
        let config = ResourceConfig::new(&name, schema.num_partitions, schema.replication);
        let handle: SchemaHandle = Arc::new(RwLock::new(schema));
        for node in self.nodes.read().values() {
            node.create_database(handle.clone())?;
        }
        self.schemas.write().insert(name.clone(), handle);
        let node_ids: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = self.nodes.read().keys().copied().collect();
            ids.sort();
            ids
        };
        self.controller.add_resource(config, &node_ids)?;
        Ok(())
    }

    /// The schema handle for `db`.
    pub fn schema(&self, db: &str) -> Result<SchemaHandle, EspressoError> {
        self.schemas
            .read()
            .get(db)
            .cloned()
            .ok_or_else(|| EspressoError::UnknownDatabase(db.into()))
    }

    /// A storage node handle.
    pub fn node(&self, id: NodeId) -> Result<Arc<StorageNode>, EspressoError> {
        self.nodes
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| EspressoError::Cluster(format!("no node {id}")))
    }

    /// The relay of a storage node (alive even when the node is down).
    pub fn relay(&self, id: NodeId) -> Result<Arc<Relay>, EspressoError> {
        self.relays
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| EspressoError::Cluster(format!("no relay {id}")))
    }

    /// The Helix controller (diagnostics / advanced operations).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The metrics registry this cluster reports into (names under
    /// `espresso.` plus the per-node relays under `databus.relay.`).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Times and counts one routed request.
    fn observe<T>(
        &self,
        op: impl FnOnce() -> Result<T, EspressoError>,
    ) -> Result<T, EspressoError> {
        self.metrics.requests.inc();
        let _timer = self.metrics.request_latency.start_timer();
        op()
    }

    /// The latest external view for `db`, from the local watch cache —
    /// no coordination-service round trip on the request path. The first
    /// call per database subscribes to the controller's view watch.
    fn cached_view(&self, db: &str) -> Result<Arc<li_helix::Assignment>, EspressoError> {
        if let Some(rx) = self.views.read().get(db) {
            return Ok(rx.get());
        }
        let rx = self.controller.watch_external_view(db)?;
        let view = rx.get();
        self.views.write().entry(db.to_string()).or_insert(rx);
        Ok(view)
    }

    /// Routes a resource id to `(partition, master node)`.
    pub fn route(&self, db: &str, resource_id: &str) -> Result<(u32, NodeId), EspressoError> {
        let schema = self.schema(db)?;
        let partition = schema.read().partition_of(resource_id);
        let view = self.cached_view(db)?;
        let master = view
            .master_of(PartitionId(partition))
            .ok_or(EspressoError::NoMaster { partition })?;
        Ok((partition, master))
    }

    fn master_node(&self, db: &str, resource_id: &str) -> Result<Arc<StorageNode>, EspressoError> {
        let (_, master) = self.route(db, resource_id)?;
        self.node(master)
    }

    fn resource_of(key: &RowKey) -> Result<&str, EspressoError> {
        key.resource_id()
            .ok_or_else(|| EspressoError::BadRequest("empty key".into()))
    }

    /// PUT a document (routed).
    pub fn put(
        &self,
        db: &str,
        table: &str,
        key: RowKey,
        record: &Record,
    ) -> Result<u64, EspressoError> {
        self.observe(|| {
            let node = self.master_node(db, Self::resource_of(&key)?)?;
            node.put_document(db, table, key, record)
        })
    }

    /// Conditional PUT (If-Match etag; 0 = If-None-Match).
    pub fn put_if_match(
        &self,
        db: &str,
        table: &str,
        key: RowKey,
        expected_etag: u64,
        record: &Record,
    ) -> Result<u64, EspressoError> {
        self.observe(|| {
            let node = self.master_node(db, Self::resource_of(&key)?)?;
            node.put_document_if_match(db, table, key, expected_etag, record)
        })
    }

    /// Transactional multi-table POST (wildcard-table URI in the paper).
    pub fn post_transactional(
        &self,
        db: &str,
        documents: Vec<(String, RowKey, Record)>,
    ) -> Result<u64, EspressoError> {
        self.observe(|| {
            let first = documents
                .first()
                .ok_or_else(|| EspressoError::BadRequest("empty transaction".into()))?;
            let node = self.master_node(db, Self::resource_of(&first.1)?)?;
            node.put_transactional(db, documents)
        })
    }

    /// GET a document (routed to the master — timeline-consistent reads).
    pub fn get(
        &self,
        db: &str,
        table: &str,
        key: &RowKey,
    ) -> Result<Option<(Record, Row)>, EspressoError> {
        self.observe(|| {
            let node = self.master_node(db, Self::resource_of(key)?)?;
            node.get_document(db, table, key)
        })
    }

    /// Sets how multi-key requests execute (Deterministic by default;
    /// the site platform switches to Parallel alongside `ShardMode`).
    pub fn set_fan_out_mode(&self, mode: FanOutMode) {
        *self.fan_out_mode.write() = mode;
    }

    /// The current multi-key execution mode.
    pub fn fan_out_mode(&self) -> FanOutMode {
        *self.fan_out_mode.read()
    }

    /// The shared pool behind Parallel multi-key fan-out, created lazily
    /// so Deterministic clusters spawn no threads. Read-mostly after the
    /// first acquisition.
    fn fan_out_pool(&self) -> Arc<FanOutPool> {
        if let Some(pool) = self.fan_out_pool.read().as_ref() {
            return Arc::clone(pool);
        }
        Arc::clone(
            self.fan_out_pool
                .write()
                .get_or_insert_with(|| Arc::new(FanOutPool::new(8))),
        )
    }

    /// Groups `keys` by their master node (input order preserved within
    /// each group; groups in node order, so Deterministic replays are
    /// stable) against the watch-cached assignment.
    fn group_by_master<T>(
        &self,
        db: &str,
        items: Vec<(RowKey, T)>,
    ) -> Result<BTreeMap<NodeId, MasterBatch<T>>, EspressoError> {
        let mut groups: BTreeMap<NodeId, MasterBatch<T>> = BTreeMap::new();
        for (index, (key, payload)) in items.into_iter().enumerate() {
            let (_, master) = self.route(db, Self::resource_of(&key)?)?;
            groups.entry(master).or_default().push((index, key, payload));
        }
        Ok(groups)
    }

    /// Runs one already-built fan-out: one task per master node, each
    /// returning its sub-batch results tagged with original indices.
    /// Requires every task to succeed (a multi-key request has no quorum
    /// semantics — a failed sub-batch fails the request).
    fn run_grouped<T: Send + 'static>(
        &self,
        tasks: Vec<FanOutTask<Vec<(usize, T)>, EspressoError>>,
        total: usize,
    ) -> Result<Vec<T>, EspressoError> {
        let mode = self.fan_out_mode();
        let required = tasks.len();
        let pool = matches!(mode, FanOutMode::Parallel).then(|| self.fan_out_pool());
        let opts = FanOutOptions {
            mode,
            required,
            ..Default::default()
        };
        let mut report = fan_out(pool.as_deref(), &opts, tasks, Vec::new(), None, None);
        if let Some((_, err)) = report.fatal.take() {
            return Err(err);
        }
        if let Some((_, err)) = report.failures.into_iter().next() {
            return Err(err);
        }
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(total).collect();
        for (_, group) in report.quorum.into_iter().chain(report.extras) {
            for (index, value) in group {
                slots[index] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| {
                    EspressoError::Cluster("multi-key fan-out dropped a sub-batch".into())
                })
            })
            .collect()
    }

    /// GET many documents in one routed request: keys are grouped by
    /// master node against the watch-cached assignment and each node's
    /// sub-batch runs as one fan-out task (parallel across nodes when the
    /// cluster is in Parallel mode). Results come back in input order.
    /// Requests are counted per document, so router accounting is
    /// invariant to how callers batch.
    pub fn multi_get(
        &self,
        db: &str,
        table: &str,
        keys: Vec<RowKey>,
    ) -> Result<Vec<Option<(Record, Row)>>, EspressoError> {
        let total = keys.len();
        self.metrics.requests.add(total as u64);
        let _timer = self.metrics.request_latency.start_timer();
        let groups = self.group_by_master(db, keys.into_iter().map(|k| (k, ())).collect())?;
        let mut tasks = Vec::with_capacity(groups.len());
        for (node_id, group) in groups {
            let node = self.node(node_id)?;
            let db = db.to_string();
            let table = table.to_string();
            tasks.push(FanOutTask::new(u64::from(node_id.0), move || {
                group
                    .into_iter()
                    .map(|(index, key, ())| {
                        node.get_document(&db, &table, &key).map(|doc| (index, doc))
                    })
                    .collect()
            }));
        }
        self.run_grouped(tasks, total)
    }

    /// PUT many documents in one routed request — the streaming
    /// population loader's batched write path. Same grouping and
    /// execution as [`Self::multi_get`]; returns the new etags in input
    /// order. Documents for *different* master nodes land independently
    /// (no cross-node transaction — a failed sub-batch fails the call,
    /// but sub-batches that already applied stay applied, exactly like
    /// issuing the PUTs singly).
    pub fn multi_put(
        &self,
        db: &str,
        table: &str,
        documents: Vec<(RowKey, Record)>,
    ) -> Result<Vec<u64>, EspressoError> {
        let total = documents.len();
        self.metrics.requests.add(total as u64);
        let _timer = self.metrics.request_latency.start_timer();
        let groups = self.group_by_master(db, documents)?;
        let mut tasks = Vec::with_capacity(groups.len());
        for (node_id, group) in groups {
            let node = self.node(node_id)?;
            let db = db.to_string();
            let table = table.to_string();
            tasks.push(FanOutTask::new(u64::from(node_id.0), move || {
                group
                    .into_iter()
                    .map(|(index, key, record)| {
                        node.put_document(&db, &table, key, &record)
                            .map(|etag| (index, etag))
                    })
                    .collect()
            }));
        }
        self.run_grouped(tasks, total)
    }

    /// GET a collection resource.
    pub fn get_collection(
        &self,
        db: &str,
        table: &str,
        prefix: &RowKey,
    ) -> Result<Vec<(RowKey, Record)>, EspressoError> {
        self.observe(|| {
            let node = self.master_node(db, Self::resource_of(prefix)?)?;
            node.get_collection(db, table, prefix)
        })
    }

    /// DELETE a document.
    pub fn delete(&self, db: &str, table: &str, key: RowKey) -> Result<(), EspressoError> {
        self.observe(|| {
            let node = self.master_node(db, Self::resource_of(&key)?)?;
            node.delete_document(db, table, key)
        })
    }

    /// Secondary-index query over a collection resource (URI
    /// `/db/table/resource?query=field:term`).
    pub fn query_uri(&self, uri: &str) -> Result<Vec<(RowKey, Record)>, EspressoError> {
        let path = ResourcePath::parse(uri)?;
        let (field, term) = path
            .query
            .clone()
            .ok_or_else(|| EspressoError::BadRequest("missing ?query=".into()))?;
        let collection = path.row_key();
        let node = self.master_node(&path.database, Self::resource_of(&collection)?)?;
        node.query(
            &path.database,
            &path.table,
            Some(&collection),
            &field,
            &term,
        )
    }

    /// GET by URI string (document or collection, with optional query).
    pub fn get_uri(&self, uri: &str) -> Result<Vec<(RowKey, Record)>, EspressoError> {
        let path = ResourcePath::parse(uri)?;
        if path.query.is_some() {
            return self.query_uri(uri);
        }
        let schema = self.schema(&path.database)?;
        let depth = schema.read().table(&path.table)?.key_depth();
        if path.key.len() == depth {
            let key = path.row_key();
            Ok(self
                .get(&path.database, &path.table, &key)?
                .map(|(record, _)| vec![(key, record)])
                .unwrap_or_default())
        } else {
            self.get_collection(&path.database, &path.table, &path.row_key())
        }
    }

    /// One replication pump: for every database and partition, slaves
    /// bootstrap (if needed) and catch up from the current master's relay.
    /// In production this runs continuously; tests and examples call it at
    /// interesting moments. Returns windows applied.
    pub fn pump_replication(&self) -> Result<usize, EspressoError> {
        let mut applied = 0;
        let databases: Vec<(String, u32)> = self
            .schemas
            .read()
            .iter()
            .map(|(name, handle)| (name.clone(), handle.read().num_partitions))
            .collect();
        for (db, num_partitions) in databases {
            let view = self.controller.external_view(&db)?;
            for partition in 0..num_partitions {
                let pid = PartitionId(partition);
                let Some(master) = view.master_of(pid) else {
                    continue;
                };
                let master_node = self.node(master)?;
                let master_relay = self.relay(master)?;
                for slave in view.slaves_of(pid) {
                    let slave_node = self.node(slave)?;
                    if !slave_node.has_stream(master, &db, partition) {
                        let (rows, checkpoint) = master_node.snapshot_partition(&db, partition)?;
                        slave_node.bootstrap_partition(
                            &db, partition, master, rows, checkpoint,
                        )?;
                    }
                    applied += slave_node.sync_partition(&db, partition, master, &master_relay)?;
                }
            }
        }
        Ok(applied)
    }

    /// Simulates a storage-node crash: its Helix session expires (ephemeral
    /// liveness gone) and the controller fails over. The node's relay
    /// stays up — the fault-tolerance property the paper relies on.
    pub fn crash_node(&self, id: NodeId) -> Result<(), EspressoError> {
        let session = {
            let participants = self.participants.lock();
            participants
                .get(&id)
                .map(Participant::session_id)
                .ok_or_else(|| EspressoError::Cluster(format!("{id} not joined")))?
        };
        self.zk.expire(session);
        self.participants.lock().remove(&id);
        self.controller.rebalance_all()?;
        self.metrics.failovers.inc();
        Ok(())
    }

    /// Brings a crashed node back: rejoins the cluster and rebalances. Its
    /// stale partitions re-bootstrap on the next replication pump.
    pub fn restart_node(&self, id: NodeId) -> Result<(), EspressoError> {
        if !self.nodes.read().contains_key(&id) {
            return Err(EspressoError::Cluster(format!("unknown node {id}")));
        }
        let participant = Participant::join(&self.zk, "espresso", id)?;
        self.participants.lock().insert(id, participant);
        self.controller.rebalance_all()?;
        Ok(())
    }

    /// Cluster expansion: adds a brand-new node and re-spreads every
    /// database over the enlarged node set (bootstrap → catch-up →
    /// mastership handoff, driven by Helix).
    pub fn add_node(self: &Arc<Self>, id: NodeId) -> Result<(), EspressoError> {
        if self.nodes.read().contains_key(&id) {
            return Err(EspressoError::Cluster(format!("{id} already exists")));
        }
        self.attach_node(id)?;
        let node_ids: Vec<NodeId> = {
            let mut ids: Vec<NodeId> = self.nodes.read().keys().copied().collect();
            ids.sort();
            ids
        };
        // Seed replicas before mastership can move: pump so the newcomer
        // can bootstrap once the controller assigns it slave roles.
        let databases: Vec<String> = self.schemas.read().keys().cloned().collect();
        for db in &databases {
            self.controller.expand_resource(db, &node_ids)?;
            self.pump_replication()?;
            // A second rebalance lets any mastership handoffs planned
            // against now-bootstrapped slaves settle.
            self.controller.rebalance(db)?;
            self.pump_replication()?;
        }
        Ok(())
    }
}

/// Chaos-scheduler hooks: a crash expires the node's Helix session and
/// fails over its masterships ([`EspressoCluster::crash_node`]); a restart
/// rejoins and rebalances ([`EspressoCluster::restart_node`]). Errors are
/// swallowed — the scheduler may race a node that is already gone, and a
/// chaos run must not abort mid-schedule.
impl li_commons::chaos::FaultHooks for EspressoCluster {
    fn crash(&self, node: NodeId) {
        let _ = self.crash_node(node);
    }

    fn restart(&self, node: NodeId) {
        let _ = self.restart_node(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, TableSchema};
    use li_commons::schema::{Field, FieldType, RecordSchema, Value};

    const DB: &str = "Profiles";

    fn cluster_with_db(nodes: u16) -> Arc<EspressoCluster> {
        let schema = DatabaseSchema::new(DB, 8, 2)
            .with_table(
                TableSchema::new("Profile", ["member"]),
                RecordSchema::new(
                    "Profile",
                    1,
                    vec![Field::new("text", FieldType::Str)],
                )
                .unwrap(),
            )
            .unwrap();
        let cluster = EspressoCluster::new(nodes).unwrap();
        cluster.create_database(schema).unwrap();
        cluster
    }

    fn profile(text: &str) -> Record {
        Record::new().with("text", Value::Str(text.into()))
    }

    fn seed_members(cluster: &EspressoCluster, count: u64) -> Vec<RowKey> {
        (0..count)
            .map(|m| {
                let key = RowKey::new([format!("member-{m}").as_str()]);
                cluster
                    .put(DB, "Profile", key.clone(), &profile(&format!("text {m}")))
                    .unwrap();
                key
            })
            .collect()
    }

    #[test]
    fn multi_get_matches_singleton_gets_in_input_order() {
        for mode in [FanOutMode::Deterministic, FanOutMode::Parallel] {
            let cluster = cluster_with_db(3);
            cluster.set_fan_out_mode(mode);
            let keys = seed_members(&cluster, 40);
            // Shuffle-ish order plus a miss in the middle.
            let mut request: Vec<RowKey> = keys.iter().rev().cloned().collect();
            request.insert(7, RowKey::new(["member-nope"]));
            let batched = cluster.multi_get(DB, "Profile", request.clone()).unwrap();
            assert_eq!(batched.len(), request.len());
            for (key, got) in request.iter().zip(&batched) {
                let single = cluster.get(DB, "Profile", key).unwrap();
                assert_eq!(
                    single.as_ref().map(|(r, _)| r),
                    got.as_ref().map(|(r, _)| r),
                    "mode {mode:?}, key {key:?}"
                );
            }
            assert!(batched[7].is_none());
        }
    }

    #[test]
    fn multi_put_lands_documents_and_returns_etags_in_input_order() {
        for mode in [FanOutMode::Deterministic, FanOutMode::Parallel] {
            let cluster = cluster_with_db(3);
            cluster.set_fan_out_mode(mode);
            let documents: Vec<(RowKey, Record)> = (0..30)
                .map(|m| {
                    (
                        RowKey::new([format!("member-{m}").as_str()]),
                        profile(&format!("bulk {m}")),
                    )
                })
                .collect();
            let etags = cluster.multi_put(DB, "Profile", documents.clone()).unwrap();
            assert_eq!(etags.len(), documents.len());
            for ((key, record), etag) in documents.iter().zip(&etags) {
                let (got, row) = cluster.get(DB, "Profile", key).unwrap().unwrap();
                assert_eq!(&got, record);
                assert_eq!(row.etag, *etag, "etag mismatch for {key:?} in {mode:?}");
            }
        }
    }

    #[test]
    fn multi_key_request_accounting_is_batch_size_invariant() {
        let singly = cluster_with_db(3);
        seed_members(&singly, 24);
        let batched = cluster_with_db(3);
        batched
            .multi_put(
                DB,
                "Profile",
                (0..24)
                    .map(|m| {
                        (
                            RowKey::new([format!("member-{m}").as_str()]),
                            profile(&format!("text {m}")),
                        )
                    })
                    .collect(),
            )
            .unwrap();
        let requests = |cluster: &EspressoCluster| {
            cluster
                .metrics()
                .snapshot()
                .counter("espresso.router.requests")
                .unwrap()
        };
        assert_eq!(requests(&singly), requests(&batched));
    }

    #[test]
    fn deterministic_multi_key_requests_spawn_no_pool() {
        let cluster = cluster_with_db(2);
        seed_members(&cluster, 10);
        let keys: Vec<RowKey> = (0..10)
            .map(|m| RowKey::new([format!("member-{m}").as_str()]))
            .collect();
        cluster.multi_get(DB, "Profile", keys).unwrap();
        assert!(
            cluster.fan_out_pool.read().is_none(),
            "Deterministic mode must not lazily create the fan-out pool"
        );
    }
}
