//! URI data model.
//!
//! "Documents in Espresso are identified by URIs in the following form:
//! `http://<host>[:<port>]/<database>/<table>/<resource_id>[/<subresource_id>…]`"
//! (§IV.A). The resource may be a singleton document, a collection (fewer
//! path elements than the table's key depth), and may carry a secondary-
//! index query (`?query=field:term`).

use crate::schema::EspressoError;
use li_sqlstore::RowKey;

/// A parsed Espresso resource path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourcePath {
    /// Database name.
    pub database: String,
    /// Table name (`*` in a transactional POST wildcard URI).
    pub table: String,
    /// Resource id plus any subresource ids.
    pub key: Vec<String>,
    /// Optional secondary-index query `(field, term)`.
    pub query: Option<(String, String)>,
}

impl ResourcePath {
    /// Parses a path like `/Music/Song/The_Beatles?query=lyrics:lucy`.
    pub fn parse(uri: &str) -> Result<Self, EspressoError> {
        let (path, query_string) = match uri.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (uri, None),
        };
        let segments: Vec<&str> = path
            .strip_prefix('/')
            .ok_or_else(|| EspressoError::BadRequest(format!("{uri}: must start with /")))?
            .split('/')
            .collect();
        if segments.len() < 2 || segments.iter().any(|s| s.is_empty()) {
            return Err(EspressoError::BadRequest(format!(
                "{uri}: need /<database>/<table>[/<resource_id>...]"
            )));
        }
        let query = match query_string {
            None => None,
            Some(q) => {
                let spec = q
                    .strip_prefix("query=")
                    .ok_or_else(|| EspressoError::BadRequest(format!("{uri}: bad query")))?;
                let (field, term) = spec.split_once(':').ok_or_else(|| {
                    EspressoError::BadRequest(format!("{uri}: query must be field:term"))
                })?;
                Some((field.to_string(), term.trim_matches('"').to_string()))
            }
        };
        Ok(ResourcePath {
            database: segments[0].to_string(),
            table: segments[1].to_string(),
            key: segments[2..].iter().map(|s| s.to_string()).collect(),
            query,
        })
    }

    /// The resource id (first key element), when present.
    pub fn resource_id(&self) -> Option<&str> {
        self.key.first().map(String::as_str)
    }

    /// The key as a storage row key.
    pub fn row_key(&self) -> RowKey {
        RowKey(self.key.clone())
    }

    /// True when this is the wildcard-table form used for transactional
    /// multi-table POSTs.
    pub fn is_wildcard_table(&self) -> bool {
        self.table == "*"
    }
}

impl std::fmt::Display for ResourcePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "/{}/{}", self.database, self.table)?;
        for part in &self.key {
            write!(f, "/{part}")?;
        }
        if let Some((field, term)) = &self.query {
            write!(f, "?query={field}:{term}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_document_uri() {
        let p = ResourcePath::parse("/Music/Song/Etta_James/Gold/At_Last").unwrap();
        assert_eq!(p.database, "Music");
        assert_eq!(p.table, "Song");
        assert_eq!(p.key, vec!["Etta_James", "Gold", "At_Last"]);
        assert_eq!(p.resource_id(), Some("Etta_James"));
        assert!(p.query.is_none());
        assert_eq!(p.to_string(), "/Music/Song/Etta_James/Gold/At_Last");
    }

    #[test]
    fn parses_collection_uri() {
        let p = ResourcePath::parse("/Music/Album/Babyface").unwrap();
        assert_eq!(p.key, vec!["Babyface"]);
    }

    #[test]
    fn parses_query() {
        let p = ResourcePath::parse("/Music/Song/The_Beatles?query=lyrics:\"Lucy in the sky\"")
            .unwrap();
        assert_eq!(
            p.query,
            Some(("lyrics".to_string(), "Lucy in the sky".to_string()))
        );
    }

    #[test]
    fn parses_wildcard_table() {
        let p = ResourcePath::parse("/Music/*/Akon").unwrap();
        assert!(p.is_wildcard_table());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "Music/Album",
            "/Music",
            "/",
            "",
            "/Music//x",
            "/Music/Album/x?bogus=1",
            "/Music/Album/x?query=noseparator",
        ] {
            assert!(
                matches!(ResourcePath::parse(bad), Err(EspressoError::BadRequest(_))),
                "{bad}"
            );
        }
    }
}
