//! Semi-synchronous binlog shipping and replica application.

use std::fmt;
use std::sync::Arc;

use li_commons::metrics::Gauge;
use parking_lot::Mutex;

use crate::binlog::BinlogEntry;
use crate::db::{Database, DbError};
use crate::row::Scn;

/// Failure to ship a binlog entry to its second home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipError(pub String);

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ship error: {}", self.0)
    }
}

impl std::error::Error for ShipError {}

/// Destination of semi-synchronous binlog shipping. In the paper this is
/// "MySQL replication to publish the binlog of all master partitions on a
/// storage node to the Databus relay" (§IV.B); `li-databus` implements this
/// trait on its relay.
pub trait Shipper: Send + Sync {
    /// Delivers one committed entry from database `source`. Returning an
    /// error aborts the commit (the transaction never becomes visible).
    fn ship(&self, source: &str, entry: &BinlogEntry) -> Result<(), ShipError>;

    /// Delivers a run of committed entries at once. Destinations that can
    /// amortize per-delivery cost (e.g. one buffer-lock acquisition per
    /// batch instead of per entry) override this; the default preserves
    /// one-at-a-time semantics, stopping at the first failure.
    fn ship_batch(&self, source: &str, entries: &[BinlogEntry]) -> Result<(), ShipError> {
        for entry in entries {
            self.ship(source, entry)?;
        }
        Ok(())
    }
}

/// Blanket impl so closures can act as shippers in tests and examples.
impl<F> Shipper for F
where
    F: Fn(&str, &BinlogEntry) -> Result<(), ShipError> + Send + Sync,
{
    fn ship(&self, source: &str, entry: &BinlogEntry) -> Result<(), ShipError> {
        self(source, entry)
    }
}

/// Applies a master's binlog stream to a replica database in SCN order,
/// buffering out-of-order deliveries — the read-replica use case the paper
/// lists for Databus ("database replication for read scalability").
pub struct ReplicaApplier {
    replica: Arc<Database>,
    pending: Mutex<Vec<BinlogEntry>>,
    /// Highest master SCN ever offered (what the master has committed, as
    /// far as this replica has heard).
    newest_offered: Mutex<Scn>,
    /// Replication ack lag (`sqlstore.replica.<name>.ack_lag_scns`): newest
    /// offered master SCN minus the replica's applied SCN. Zero when caught
    /// up; positive while entries are buffered out of order.
    ack_lag: Gauge,
}

impl ReplicaApplier {
    /// Wraps a replica database, reporting lag into the replica's own
    /// metrics registry.
    pub fn new(replica: Arc<Database>) -> Self {
        let ack_lag = replica
            .metrics()
            .gauge(&format!("sqlstore.replica.{}.ack_lag_scns", replica.name()));
        ReplicaApplier {
            replica,
            pending: Mutex::new(Vec::new()),
            newest_offered: Mutex::new(0),
            ack_lag,
        }
    }

    /// The wrapped replica.
    pub fn replica(&self) -> &Arc<Database> {
        &self.replica
    }

    /// Offers one entry; applies it and any now-unblocked buffered entries.
    /// Returns the replica's applied SCN after the call.
    pub fn offer(&self, entry: BinlogEntry) -> Result<Scn, DbError> {
        {
            let mut newest = self.newest_offered.lock();
            *newest = (*newest).max(entry.scn);
        }
        let mut pending = self.pending.lock();
        pending.push(entry);
        pending.sort_by_key(|e| e.scn);
        loop {
            let next_scn = self.replica.applied_scn() + 1;
            match pending.iter().position(|e| e.scn == next_scn) {
                Some(idx) => {
                    let entry = pending.remove(idx);
                    self.replica.apply_replicated(&entry)?;
                }
                None => {
                    // Drop anything stale (already applied duplicates).
                    let applied = self.replica.applied_scn();
                    pending.retain(|e| e.scn > applied);
                    self.ack_lag
                        .set(self.newest_offered.lock().saturating_sub(applied) as i64);
                    return Ok(applied);
                }
            }
        }
    }

    /// Number of buffered out-of-order entries.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::RowKey;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    fn primary() -> Database {
        let db = Database::new("primary");
        db.create_table("t").unwrap();
        db
    }

    #[test]
    fn semi_sync_ships_before_visibility() {
        let db = primary();
        let shipped = Arc::new(AtomicU64::new(0));
        let counter = shipped.clone();
        db.set_shipper(Arc::new(move |_: &str, entry: &BinlogEntry| {
            counter.store(entry.scn, Ordering::SeqCst);
            Ok(())
        }));
        db.put_one("t", RowKey::single("k"), &b"v"[..], 1).unwrap();
        assert_eq!(shipped.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ship_failure_aborts_commit() {
        let db = primary();
        let fail = Arc::new(AtomicBool::new(true));
        let flag = fail.clone();
        db.set_shipper(Arc::new(move |_: &str, _: &BinlogEntry| {
            if flag.load(Ordering::SeqCst) {
                Err(ShipError("relay unreachable".into()))
            } else {
                Ok(())
            }
        }));
        let err = db.put_one("t", RowKey::single("k"), &b"v"[..], 1).unwrap_err();
        assert!(matches!(err, DbError::ShipFailed(_)));
        // Not visible, not logged.
        assert_eq!(db.get("t", &RowKey::single("k")).unwrap(), None);
        assert_eq!(db.last_scn(), 0);
        // Relay back: the same write succeeds with SCN 1 (no gap).
        fail.store(false, Ordering::SeqCst);
        assert_eq!(db.put_one("t", RowKey::single("k"), &b"v"[..], 1).unwrap(), 1);
    }

    #[test]
    fn replica_applier_handles_reorder_and_duplicates() {
        let db = primary();
        for i in 0..5 {
            db.put_one("t", RowKey::single(format!("k{i}")), &b"v"[..], 1).unwrap();
        }
        let entries = db.binlog_after(0);

        let replica = Arc::new(Database::new("replica"));
        replica.create_table("t").unwrap();
        let applier = ReplicaApplier::new(replica.clone());

        // Deliver out of order with a duplicate.
        applier.offer(entries[1].clone()).unwrap(); // scn 2 buffered
        assert_eq!(replica.applied_scn(), 0);
        assert_eq!(applier.pending_len(), 1);
        applier.offer(entries[0].clone()).unwrap(); // unblocks 1 and 2
        assert_eq!(replica.applied_scn(), 2);
        applier.offer(entries[0].clone()).unwrap(); // stale duplicate
        assert_eq!(replica.applied_scn(), 2);
        assert_eq!(applier.pending_len(), 0);
        applier.offer(entries[4].clone()).unwrap();
        applier.offer(entries[3].clone()).unwrap();
        applier.offer(entries[2].clone()).unwrap();
        assert_eq!(replica.applied_scn(), 5);
        assert_eq!(replica.row_count("t").unwrap(), 5);
    }
}
