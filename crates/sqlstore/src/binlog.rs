//! The binlog: a replayable, framed log of committed transactions.

use li_commons::bufio;
use li_commons::varint::{self, VarintError};

use crate::row::{RowChange, Scn};

/// One committed transaction in the binlog. The entry *is* the transaction
/// boundary the paper requires Databus to preserve: "a single user's action
/// can trigger atomic updates to multiple rows across stores/tables"
/// (§III.B), and all of them travel in one entry under one SCN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinlogEntry {
    /// Commit sequence number (position in total commit order, 1-based).
    pub scn: Scn,
    /// Commit timestamp in nanoseconds.
    pub timestamp: u64,
    /// The row changes, in statement order.
    pub changes: Vec<RowChange>,
}

impl BinlogEntry {
    /// Serializes the entry payload (the caller frames it with a CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        varint::write_u64(&mut out, self.scn);
        varint::write_u64(&mut out, self.timestamp);
        varint::write_u64(&mut out, self.changes.len() as u64);
        for change in &self.changes {
            change.encode(&mut out);
        }
        out
    }

    /// Decodes an entry payload.
    pub fn decode(mut buf: &[u8]) -> Result<Self, VarintError> {
        let scn = varint::read_u64(&mut buf)?;
        let timestamp = varint::read_u64(&mut buf)?;
        let n = varint::read_u64(&mut buf)? as usize;
        let mut changes = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            changes.push(RowChange::decode(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(VarintError::UnexpectedEof);
        }
        Ok(BinlogEntry {
            scn,
            timestamp,
            changes,
        })
    }
}

/// The append-only transaction log of one database instance. A storage
/// node runs "one MySQL instance and changes to all master partitions are
/// logged in a single MySQL binlog to preserve sequential I/O pattern"
/// (§IV.B) — one [`Binlog`] per [`crate::Database`] mirrors that.
#[derive(Debug, Default, Clone)]
pub struct Binlog {
    entries: Vec<BinlogEntry>,
}

impl Binlog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed transaction. SCNs must be dense and increasing;
    /// the database enforces this by construction.
    pub fn append(&mut self, entry: BinlogEntry) {
        debug_assert!(
            self.entries.last().is_none_or(|last| entry.scn == last.scn + 1),
            "binlog SCNs must be dense"
        );
        self.entries.push(entry);
    }

    /// Removes the most recent entry (used to undo a semi-sync commit whose
    /// shipping failed before the transaction became visible).
    pub(crate) fn pop(&mut self) -> Option<BinlogEntry> {
        self.entries.pop()
    }

    /// SCN of the last committed transaction (0 when empty).
    pub fn last_scn(&self) -> Scn {
        self.entries.last().map_or(0, |e| e.scn)
    }

    /// Number of logged transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no transaction has committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries with `scn > after_scn`, in commit order — the replay
    /// interface Databus's capture adapters consume ("the transaction log
    /// generated is then replay-able from any commit sequence number").
    pub fn entries_after(&self, after_scn: Scn) -> &[BinlogEntry] {
        // SCNs are dense and 1-based: entry i has scn i+1.
        let start = (after_scn as usize).min(self.entries.len());
        &self.entries[start..]
    }

    /// Serializes the whole log as CRC-framed entries for durable storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for entry in &self.entries {
            bufio::write_frame(&mut out, &entry.encode());
        }
        out
    }

    /// Recovers a log from bytes, stopping at the first torn/corrupt frame
    /// (crash recovery). Returns the log and the byte offset of the valid
    /// prefix.
    pub fn recover(data: &[u8]) -> (Self, usize) {
        let (frames, valid) = bufio::recover(data);
        let mut log = Binlog::new();
        for frame in frames {
            match BinlogEntry::decode(&frame) {
                Ok(entry) if entry.scn == log.last_scn() + 1 => log.append(entry),
                _ => break,
            }
        }
        (log, valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::{Op, Row, RowKey};
    use bytes::Bytes;

    fn entry(scn: Scn, n_changes: usize) -> BinlogEntry {
        BinlogEntry {
            scn,
            timestamp: scn * 1000,
            changes: (0..n_changes)
                .map(|i| RowChange {
                    table: "T".into(),
                    key: RowKey::single(format!("k{i}")),
                    op: if i % 2 == 0 {
                        Op::Put(Row {
                            value: Bytes::from(format!("v{scn}-{i}")),
                            schema_version: 1,
                            etag: scn,
                            timestamp: scn * 1000,
                        })
                    } else {
                        Op::Delete
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn entry_codec_round_trip() {
        let e = entry(7, 3);
        assert_eq!(BinlogEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn empty_transaction_entry_round_trips() {
        let e = entry(1, 0);
        assert_eq!(BinlogEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn entries_after_is_replay_from_scn() {
        let mut log = Binlog::new();
        for scn in 1..=10 {
            log.append(entry(scn, 1));
        }
        assert_eq!(log.last_scn(), 10);
        assert_eq!(log.entries_after(0).len(), 10);
        assert_eq!(log.entries_after(7).len(), 3);
        assert_eq!(log.entries_after(7)[0].scn, 8);
        assert!(log.entries_after(10).is_empty());
        assert!(log.entries_after(99).is_empty());
    }

    #[test]
    fn persist_and_recover() {
        let mut log = Binlog::new();
        for scn in 1..=5 {
            log.append(entry(scn, 2));
        }
        let bytes = log.to_bytes();
        let (recovered, valid) = Binlog::recover(&bytes);
        assert_eq!(valid, bytes.len());
        assert_eq!(recovered.len(), 5);
        assert_eq!(recovered.entries_after(0), log.entries_after(0));
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let mut log = Binlog::new();
        for scn in 1..=3 {
            log.append(entry(scn, 1));
        }
        let mut bytes = log.to_bytes();
        let full = bytes.len();
        bytes.truncate(full - 3); // torn final frame
        let (recovered, valid) = Binlog::recover(&bytes);
        assert_eq!(recovered.len(), 2);
        assert!(valid < full - 3 || recovered.last_scn() == 2);
    }

    #[test]
    fn pop_undoes_last_append() {
        let mut log = Binlog::new();
        log.append(entry(1, 1));
        log.append(entry(2, 1));
        assert_eq!(log.pop().unwrap().scn, 2);
        assert_eq!(log.last_scn(), 1);
    }
}
