//! Rows, composite keys, and change records.

use bytes::Bytes;
use li_commons::varint::{self, VarintError};

/// Commit sequence number: the position of a transaction in the database's
/// total commit order. Databus's entire consistency story hangs off this
/// ("the data source ... generates a commit sequence number with each
/// transaction", §III.D).
pub type Scn = u64;

/// A composite primary key, modelled as ordered string path elements —
/// exactly how Espresso keys documents (`artist`, `album`, `song` in the
/// paper's Song table). Ordering is lexicographic by element, which makes
/// prefix scans ("all albums by artist X") natural.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowKey(pub Vec<String>);

impl RowKey {
    /// Builds a key from path elements.
    pub fn new<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        RowKey(parts.into_iter().map(Into::into).collect())
    }

    /// Single-element key.
    pub fn single(part: impl Into<String>) -> Self {
        RowKey(vec![part.into()])
    }

    /// True when `self` begins with all elements of `prefix`.
    pub fn starts_with(&self, prefix: &RowKey) -> bool {
        self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }

    /// The first path element, if any (Espresso's `resource_id`, which
    /// determines the partition).
    pub fn resource_id(&self) -> Option<&str> {
        self.0.first().map(String::as_str)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.0.len() as u64);
        for part in &self.0 {
            varint::write_bytes(out, part.as_bytes());
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, VarintError> {
        let n = varint::read_u64(buf)? as usize;
        let mut parts = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            let raw = varint::read_bytes(buf)?;
            parts.push(String::from_utf8(raw).map_err(|_| VarintError::UnexpectedEof)?);
        }
        Ok(RowKey(parts))
    }
}

impl std::fmt::Display for RowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.join("/"))
    }
}

/// A stored row: the serialized document plus the metadata columns of the
/// paper's Table IV.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Serialized document bytes (`val blob`).
    pub value: Bytes,
    /// Version of the schema needed to deserialize `value`.
    pub schema_version: u16,
    /// Entity tag for conditional requests; set to the committing SCN.
    pub etag: u64,
    /// Commit timestamp in nanoseconds.
    pub timestamp: u64,
}

impl Row {
    /// Creates a row with zeroed metadata (filled in at commit).
    pub fn new(value: impl Into<Bytes>, schema_version: u16) -> Self {
        Row {
            value: value.into(),
            schema_version,
            etag: 0,
            timestamp: 0,
        }
    }
}

/// The kind of change applied to a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert-or-update with the new row image.
    Put(Row),
    /// Row removal.
    Delete,
}

/// One row change within a transaction, as recorded in the binlog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChange {
    /// Table the change applies to.
    pub table: String,
    /// Primary key of the affected row.
    pub key: RowKey,
    /// The change itself.
    pub op: Op,
}

impl RowChange {
    /// Serializes the change into `out` (varint-framed, schema-free).
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_bytes(out, self.table.as_bytes());
        self.key.encode(out);
        match &self.op {
            Op::Put(row) => {
                out.push(0);
                varint::write_bytes(out, &row.value);
                varint::write_u64(out, u64::from(row.schema_version));
                varint::write_u64(out, row.etag);
                varint::write_u64(out, row.timestamp);
            }
            Op::Delete => out.push(1),
        }
    }

    /// Decodes a change produced by [`RowChange::encode`].
    pub fn decode(buf: &mut &[u8]) -> Result<Self, VarintError> {
        let table_raw = varint::read_bytes(buf)?;
        let table = String::from_utf8(table_raw).map_err(|_| VarintError::UnexpectedEof)?;
        let key = RowKey::decode(buf)?;
        if buf.is_empty() {
            return Err(VarintError::UnexpectedEof);
        }
        let tag = buf[0];
        *buf = &buf[1..];
        let op = match tag {
            0 => {
                let value = varint::read_bytes(buf)?;
                let schema_version = varint::read_u64(buf)? as u16;
                let etag = varint::read_u64(buf)?;
                let timestamp = varint::read_u64(buf)?;
                Op::Put(Row {
                    value: Bytes::from(value),
                    schema_version,
                    etag,
                    timestamp,
                })
            }
            1 => Op::Delete,
            _ => return Err(VarintError::UnexpectedEof),
        };
        Ok(RowChange { table, key, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_prefix_semantics() {
        let song = RowKey::new(["Etta_James", "Gold", "At_Last"]);
        let artist = RowKey::single("Etta_James");
        let other = RowKey::single("Doris_Day");
        assert!(song.starts_with(&artist));
        assert!(!song.starts_with(&other));
        assert!(song.starts_with(&song));
        assert!(!artist.starts_with(&song));
        assert_eq!(song.resource_id(), Some("Etta_James"));
    }

    #[test]
    fn key_ordering_groups_prefixes() {
        let mut keys = vec![
            RowKey::new(["b", "2"]),
            RowKey::new(["a", "9"]),
            RowKey::new(["a"]),
            RowKey::new(["a", "1"]),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                RowKey::new(["a"]),
                RowKey::new(["a", "1"]),
                RowKey::new(["a", "9"]),
                RowKey::new(["b", "2"]),
            ]
        );
    }

    #[test]
    fn change_codec_round_trip() {
        let put = RowChange {
            table: "Album".into(),
            key: RowKey::new(["Akon", "Trouble"]),
            op: Op::Put(Row {
                value: Bytes::from_static(b"{\"year\":2004}"),
                schema_version: 3,
                etag: 17,
                timestamp: 1_000_000,
            }),
        };
        let delete = RowChange {
            table: "Album".into(),
            key: RowKey::new(["Akon", "Stadium"]),
            op: Op::Delete,
        };
        let mut buf = Vec::new();
        put.encode(&mut buf);
        delete.encode(&mut buf);
        let mut cursor = &buf[..];
        assert_eq!(RowChange::decode(&mut cursor).unwrap(), put);
        assert_eq!(RowChange::decode(&mut cursor).unwrap(), delete);
        assert!(cursor.is_empty());
    }

    #[test]
    fn change_codec_rejects_truncation() {
        let change = RowChange {
            table: "T".into(),
            key: RowKey::single("k"),
            op: Op::Put(Row::new(&b"value"[..], 1)),
        };
        let mut buf = Vec::new();
        change.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(RowChange::decode(&mut cursor).is_err(), "cut at {cut}");
        }
    }
}
