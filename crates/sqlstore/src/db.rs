//! The database instance: tables, transactions, commit pipeline.
//!
//! State is sharded per table-partition (PR 7): row storage is striped
//! over [`ShardedLock`] stripes keyed by `(table, row key)`, so
//! transactions touching disjoint rows commit concurrently. What stays
//! single-point is SCN assignment: a short commit-point lock covers
//! binlog append + semi-sync ship, so commit order == ship order == SCN
//! order and the Databus relay's stream remains timeline-consistent.
//! Lock order is fixed — row stripes in ascending index order first, the
//! commit point last — which keeps arbitrary multi-row transactions
//! deadlock-free. [`ShardMode::Deterministic`] collapses the stripes to
//! one, reproducing the old single-lock behavior for chaos replays.

use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use li_commons::metrics::{Counter, Gauge, MetricsRegistry};
use li_commons::shard::{ShardMode, ShardedLock};
use li_commons::sim::{Clock, RealClock};

use crate::binlog::{Binlog, BinlogEntry};
use crate::replication::{ShipError, Shipper};
use crate::row::{Op, Row, RowChange, RowKey, Scn};
use crate::table::Table;

/// Row stripes per database in [`ShardMode::Parallel`]. Sized for the
/// closed-loop site bench: comfortably above the driver counts that
/// matter (8–32) so two random rows rarely collide, small enough that
/// whole-state operations (scans, fingerprints) stay cheap.
pub const DEFAULT_ROW_STRIPES: usize = 32;

/// Errors from database operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The named table does not exist.
    UnknownTable(String),
    /// A table with that name already exists.
    DuplicateTable(String),
    /// Conditional write failed: the row's etag didn't match.
    EtagMismatch {
        /// Expected etag supplied by the caller.
        expected: u64,
        /// Actual etag of the stored row (0 when the row is absent).
        actual: u64,
    },
    /// Semi-synchronous shipping failed; the transaction was rolled back.
    ShipFailed(String),
    /// The transaction contains no changes.
    EmptyTransaction,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            DbError::EtagMismatch { expected, actual } => {
                write!(f, "etag mismatch: expected {expected}, actual {actual}")
            }
            DbError::ShipFailed(msg) => write!(f, "semi-sync ship failed: {msg}"),
            DbError::EmptyTransaction => write!(f, "empty transaction"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ShipError> for DbError {
    fn from(e: ShipError) -> Self {
        DbError::ShipFailed(e.to_string())
    }
}

/// Trigger callback, invoked once per committed transaction with the full
/// binlog entry — the paper's trigger-based capture hook.
pub type TriggerFn = Arc<dyn Fn(&BinlogEntry) + Send + Sync>;

/// A buffered transaction. Changes are invisible until
/// [`Database::commit`]; aborting is just dropping the value.
#[derive(Debug, Default)]
pub struct Transaction {
    changes: Vec<RowChange>,
}

impl Transaction {
    /// Buffers an insert-or-update.
    pub fn put(
        &mut self,
        table: impl Into<String>,
        key: RowKey,
        value: impl Into<Bytes>,
        schema_version: u16,
    ) -> &mut Self {
        self.changes.push(RowChange {
            table: table.into(),
            key,
            op: Op::Put(Row::new(value, schema_version)),
        });
        self
    }

    /// Buffers a delete.
    pub fn delete(&mut self, table: impl Into<String>, key: RowKey) -> &mut Self {
        self.changes.push(RowChange {
            table: table.into(),
            key,
            op: Op::Delete,
        });
        self
    }

    /// Number of buffered changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// The single-point tail of the commit pipeline: SCN assignment, binlog
/// append, semi-sync ship. Held briefly; never while waiting on a row
/// stripe (stripes are acquired first — see the module doc's lock order).
struct CommitPoint {
    binlog: Binlog,
    /// Highest SCN applied from a replication stream (slave role).
    applied_scn: Scn,
}

/// Storage-node observability under `sqlstore.db.<name>`: binlog commits
/// and the newest committed SCN.
struct DbMetrics {
    commits: Counter,
    last_scn: Gauge,
}

impl DbMetrics {
    fn new(registry: &Arc<MetricsRegistry>, name: &str) -> Self {
        let scope = registry.scope(format!("sqlstore.db.{name}"));
        DbMetrics {
            commits: scope.counter("commits"),
            last_scn: scope.gauge("last_scn"),
        }
    }
}

/// A database instance — the analog of one MySQL server (or the Oracle
/// primary). Thread-safe; share via `Arc`.
pub struct Database {
    name: String,
    /// Table registry (DDL): names only; row data lives in the stripes.
    tables: RwLock<BTreeSet<String>>,
    /// Row storage, striped by `(table, key)` hash. Each stripe maps
    /// table name → the subset of that table's rows hashing to it.
    rows: ShardedLock<HashMap<String, Table>>,
    commit_point: Mutex<CommitPoint>,
    mode: ShardMode,
    triggers: Mutex<Vec<TriggerFn>>,
    shipper: Mutex<Option<Arc<dyn Shipper>>>,
    clock: Arc<dyn Clock>,
    registry: Arc<MetricsRegistry>,
    metrics: DbMetrics,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("tables", &self.tables.read().iter().collect::<Vec<_>>())
            .field("last_scn", &self.commit_point.lock().binlog.last_scn())
            .field("stripes", &self.rows.stripe_count())
            .finish()
    }
}

impl Database {
    /// Creates an empty database using the real clock.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_clock(name, Arc::new(RealClock::new()))
    }

    /// Creates a database with an injected clock (deterministic tests).
    pub fn with_clock(name: impl Into<String>, clock: Arc<dyn Clock>) -> Self {
        Self::with_metrics(name, clock, &MetricsRegistry::new())
    }

    /// Creates a database that reports into a shared metrics registry
    /// (under `sqlstore.db.<name>`).
    pub fn with_metrics(
        name: impl Into<String>,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
    ) -> Self {
        Self::with_shard_mode(name, clock, registry, ShardMode::Parallel)
    }

    /// [`Self::with_metrics`] with an explicit shard mode:
    /// [`ShardMode::Deterministic`] serializes all rows behind one stripe
    /// (the pre-sharding behavior, byte-identical for seeded replays);
    /// [`ShardMode::Parallel`] stripes rows over
    /// [`DEFAULT_ROW_STRIPES`] locks.
    pub fn with_shard_mode(
        name: impl Into<String>,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
        mode: ShardMode,
    ) -> Self {
        let name = name.into();
        let metrics = DbMetrics::new(registry, &name);
        Database {
            name,
            tables: RwLock::new(BTreeSet::new()),
            rows: ShardedLock::with_mode(mode, DEFAULT_ROW_STRIPES, HashMap::new),
            commit_point: Mutex::new(CommitPoint {
                binlog: Binlog::new(),
                applied_scn: 0,
            }),
            mode,
            triggers: Mutex::new(Vec::new()),
            shipper: Mutex::new(None),
            clock,
            registry: Arc::clone(registry),
            metrics,
        }
    }

    /// The metrics registry this database reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard mode this instance was built with.
    pub fn shard_mode(&self) -> ShardMode {
        self.mode
    }

    /// Row-stripe count (1 in deterministic mode).
    pub fn row_stripes(&self) -> usize {
        self.rows.stripe_count()
    }

    /// Creates a table.
    pub fn create_table(&self, name: impl Into<String>) -> Result<(), DbError> {
        let name = name.into();
        let mut tables = self.tables.write();
        if !tables.insert(name.clone()) {
            return Err(DbError::DuplicateTable(name));
        }
        Ok(())
    }

    /// Lists table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().iter().cloned().collect()
    }

    fn validate_tables(&self, changes: &[RowChange]) -> Result<(), DbError> {
        let tables = self.tables.read();
        for change in changes {
            if !tables.contains(&change.table) {
                return Err(DbError::UnknownTable(change.table.clone()));
            }
        }
        Ok(())
    }

    /// The stripe a row lives in. The hash input is always the
    /// `(&str, &RowKey)` pair so every code path agrees.
    fn stripe_of(&self, table: &str, key: &RowKey) -> usize {
        self.rows.stripe_of(&(table, key))
    }

    /// Registers a commit trigger (capture hook). Triggers fire after the
    /// transaction is durable and visible, in registration order.
    pub fn register_trigger(&self, trigger: TriggerFn) {
        self.triggers.lock().push(trigger);
    }

    /// Installs the semi-synchronous shipper. Subsequent commits block
    /// until the shipper acknowledges the binlog entry; a shipping failure
    /// aborts the commit. This is the paper's "each change is written to
    /// two places before being committed" guarantee.
    pub fn set_shipper(&self, shipper: Arc<dyn Shipper>) {
        *self.shipper.lock() = Some(shipper);
    }

    /// Removes the shipper (fall back to local-only durability).
    pub fn clear_shipper(&self) {
        *self.shipper.lock() = None;
    }

    /// Begins a transaction.
    pub fn begin(&self) -> Transaction {
        Transaction::default()
    }

    /// Commits a transaction: assigns the next SCN, stamps row metadata,
    /// appends to the binlog, ships semi-synchronously (if configured),
    /// applies to tables, then fires triggers. Returns the commit SCN.
    ///
    /// Concurrency: the transaction's row stripes are held from before
    /// SCN assignment until after apply, so per-row visibility follows
    /// SCN order; transactions on disjoint stripes overlap everywhere
    /// except the short commit-point section (append + ship).
    pub fn commit(&self, txn: Transaction) -> Result<Scn, DbError> {
        if txn.is_empty() {
            return Err(DbError::EmptyTransaction);
        }
        let timestamp = self.clock.now_nanos();
        let shipper = self.shipper.lock().clone();
        self.validate_tables(&txn.changes)?;

        // Row stripes first (ascending — the global lock order), commit
        // point last.
        let stripe_ids = self
            .rows
            .stripe_set(txn.changes.iter().map(|c| (c.table.as_str(), &c.key)));
        let mut guards = self.rows.lock_many(&stripe_ids);

        let entry = {
            let mut commit = self.commit_point.lock();
            let scn = commit.binlog.last_scn() + 1;
            let changes: Vec<RowChange> = txn
                .changes
                .into_iter()
                .map(|mut change| {
                    if let Op::Put(row) = &mut change.op {
                        row.etag = scn;
                        row.timestamp = timestamp;
                    }
                    change
                })
                .collect();
            let entry = BinlogEntry {
                scn,
                timestamp,
                changes,
            };
            commit.binlog.append(entry.clone());

            // Semi-sync: the entry must reach its second home before the
            // transaction becomes visible. We hold the commit point across
            // the ship so commit order == ship order == SCN order, which is
            // what makes the relay's stream timeline-consistent.
            if let Some(shipper) = &shipper {
                if let Err(e) = shipper.ship(&self.name, &entry) {
                    commit.binlog.pop();
                    return Err(e.into());
                }
            }
            // Publish the high-water gauge while still holding the commit
            // point: published after the lock, two stripe-disjoint commits
            // can land their `set`s out of SCN order and leave the gauge
            // permanently one behind — which reads as a phantom lag
            // against the relay's (ship-order-serialized) newest_scn.
            self.metrics.last_scn.set(scn as i64);
            entry
        };

        // Apply under the still-held row stripes; the commit point is
        // already free for the next transaction's SCN.
        for change in &entry.changes {
            let stripe = self.stripe_of(&change.table, &change.key);
            let slot = stripe_ids.binary_search(&stripe).expect("stripe acquired");
            let table = guards[slot].entry(change.table.clone()).or_default();
            match &change.op {
                Op::Put(row) => {
                    table.put(change.key.clone(), row.clone());
                }
                Op::Delete => {
                    table.delete(&change.key);
                }
            }
        }
        drop(guards);

        self.metrics.commits.inc();
        for trigger in self.triggers.lock().iter() {
            trigger(&entry);
        }
        Ok(entry.scn)
    }

    /// Single-change convenience: upsert one row in its own transaction.
    pub fn put_one(
        &self,
        table: &str,
        key: RowKey,
        value: impl Into<Bytes>,
        schema_version: u16,
    ) -> Result<Scn, DbError> {
        let mut txn = self.begin();
        txn.put(table, key, value, schema_version);
        self.commit(txn)
    }

    /// Single-change convenience: delete one row in its own transaction.
    pub fn delete_one(&self, table: &str, key: RowKey) -> Result<Scn, DbError> {
        let mut txn = self.begin();
        txn.delete(table, key);
        self.commit(txn)
    }

    /// Conditional upsert: succeeds only when the stored row's etag equals
    /// `expected_etag` (0 = "row must not exist"). Implements the
    /// optimistic concurrency behind Espresso's conditional HTTP requests.
    pub fn put_if_etag(
        &self,
        table: &str,
        key: RowKey,
        expected_etag: u64,
        value: impl Into<Bytes>,
        schema_version: u16,
    ) -> Result<Scn, DbError> {
        {
            let actual = self
                .get(table, &key)?
                .map_or(0, |row| row.etag);
            if actual != expected_etag {
                return Err(DbError::EtagMismatch {
                    expected: expected_etag,
                    actual,
                });
            }
        }
        // Benign race with another writer is resolved by commit order; the
        // second writer's etag check will fail on retry semantics at the
        // caller. For the in-process reproduction this check-then-commit is
        // adequate (one writer per partition master in Espresso).
        self.put_one(table, key, value, schema_version)
    }

    /// Point read of the committed row image.
    pub fn get(&self, table: &str, key: &RowKey) -> Result<Option<Row>, DbError> {
        if !self.tables.read().contains(table) {
            return Err(DbError::UnknownTable(table.into()));
        }
        let stripe = self.rows.lock(&(table, key));
        Ok(stripe.get(table).and_then(|t| t.get(key)).cloned())
    }

    /// Prefix scan returning cloned rows in key order (gathered across
    /// all stripes, then merged).
    pub fn scan_prefix(&self, table: &str, prefix: &RowKey) -> Result<Vec<(RowKey, Row)>, DbError> {
        if !self.tables.read().contains(table) {
            return Err(DbError::UnknownTable(table.into()));
        }
        let guards = self.rows.lock_all();
        let mut rows: Vec<(RowKey, Row)> = guards
            .iter()
            .filter_map(|g| g.get(table))
            .flat_map(|t| t.scan_prefix(prefix).map(|(k, r)| (k.clone(), r.clone())))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(rows)
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        if !self.tables.read().contains(table) {
            return Err(DbError::UnknownTable(table.into()));
        }
        Ok(self
            .rows
            .lock_all()
            .iter()
            .filter_map(|g| g.get(table))
            .map(Table::len)
            .sum())
    }

    /// SCN of the last committed transaction.
    pub fn last_scn(&self) -> Scn {
        self.commit_point.lock().binlog.last_scn()
    }

    /// Copies binlog entries with `scn > after_scn` (capture interface).
    pub fn binlog_after(&self, after_scn: Scn) -> Vec<BinlogEntry> {
        self.commit_point
            .lock()
            .binlog
            .entries_after(after_scn)
            .to_vec()
    }

    /// Serializes the binlog for durable storage.
    pub fn binlog_bytes(&self) -> Vec<u8> {
        self.commit_point.lock().binlog.to_bytes()
    }

    /// Applies a replicated transaction (slave role): mutates tables and
    /// tracks `applied_scn`, but does *not* append to the local binlog or
    /// re-ship — a slave's changes come from its master's log. Entries must
    /// arrive in SCN order; stale or duplicate entries are ignored (idempotent
    /// at-least-once application).
    pub fn apply_replicated(&self, entry: &BinlogEntry) -> Result<bool, DbError> {
        self.validate_tables(&entry.changes)?;
        let stripe_ids = self
            .rows
            .stripe_set(entry.changes.iter().map(|c| (c.table.as_str(), &c.key)));
        let mut guards = self.rows.lock_many(&stripe_ids);
        {
            // Stripes before commit point — the one global lock order.
            let mut commit = self.commit_point.lock();
            if entry.scn <= commit.applied_scn {
                return Ok(false);
            }
            commit.applied_scn = entry.scn;
        }
        for change in &entry.changes {
            let stripe = self.stripe_of(&change.table, &change.key);
            let slot = stripe_ids.binary_search(&stripe).expect("stripe acquired");
            let table = guards[slot].entry(change.table.clone()).or_default();
            match &change.op {
                Op::Put(row) => {
                    table.put(change.key.clone(), row.clone());
                }
                Op::Delete => {
                    table.delete(&change.key);
                }
            }
        }
        Ok(true)
    }

    /// Highest SCN applied via [`Database::apply_replicated`].
    pub fn applied_scn(&self) -> Scn {
        self.commit_point.lock().applied_scn
    }

    /// Applies raw row changes without SCN tracking, logging, or shipping.
    /// This is the slave-side apply path for consumers that track their own
    /// per-source progress (Espresso tracks a checkpoint per
    /// `(source node, partition)` because each storage node's binlog has an
    /// independent SCN space). Application must be idempotent at the caller
    /// (puts overwrite, deletes are no-ops when absent — both hold here).
    pub fn apply_changes(&self, changes: &[RowChange]) -> Result<(), DbError> {
        self.validate_tables(changes)?;
        let stripe_ids = self
            .rows
            .stripe_set(changes.iter().map(|c| (c.table.as_str(), &c.key)));
        let mut guards = self.rows.lock_many(&stripe_ids);
        for change in changes {
            let stripe = self.stripe_of(&change.table, &change.key);
            let slot = stripe_ids.binary_search(&stripe).expect("stripe acquired");
            let table = guards[slot].entry(change.table.clone()).or_default();
            match &change.op {
                Op::Put(row) => {
                    table.put(change.key.clone(), row.clone());
                }
                Op::Delete => {
                    table.delete(&change.key);
                }
            }
        }
        Ok(())
    }

    /// Deterministic fingerprint of all table contents (FNV-1a over table
    /// names, keys, and full row images in sorted order). Two databases
    /// with the same fingerprint hold identical visible state — the
    /// comparison primitive behind the chaos harness's replica-convergence
    /// and binlog-replay-equivalence invariants. Stripe layout is
    /// invisible: rows are gathered across stripes and emitted in global
    /// key order, so deterministic and parallel instances holding the
    /// same data produce the same fingerprint.
    pub fn state_fingerprint(&self) -> u64 {
        self.fingerprint(true)
    }

    /// Timestamp-insensitive variant of [`Self::state_fingerprint`]:
    /// hashes table names, keys, row values, schema versions, and etags
    /// but skips the wall-clock commit timestamps. Since the etag is the
    /// commit SCN, two databases match iff they executed the same logical
    /// commit stream — possibly at different wall times, which is exactly
    /// the comparison the streaming-vs-bulk population loader equivalence
    /// needs (two separately-built instances can never agree on
    /// `RealClock` readings).
    pub fn logical_fingerprint(&self) -> u64 {
        self.fingerprint(false)
    }

    fn fingerprint(&self, include_timestamps: bool) -> u64 {
        let names = self.table_names();
        let guards = self.rows.lock_all();
        let mut bytes = Vec::new();
        for name in names {
            bytes.extend_from_slice(name.as_bytes());
            bytes.push(0);
            let mut rows: Vec<(&RowKey, &Row)> = guards
                .iter()
                .filter_map(|g| g.get(&name))
                .flat_map(Table::iter)
                .collect();
            rows.sort_by(|a, b| a.0.cmp(b.0));
            for (key, row) in rows {
                for part in &key.0 {
                    bytes.extend_from_slice(part.as_bytes());
                    bytes.push(0);
                }
                bytes.push(1);
                bytes.extend_from_slice(&row.value);
                bytes.extend_from_slice(&row.schema_version.to_le_bytes());
                bytes.extend_from_slice(&row.etag.to_le_bytes());
                if include_timestamps {
                    bytes.extend_from_slice(&row.timestamp.to_le_bytes());
                }
            }
        }
        li_commons::fnv::fnv1a(&bytes)
    }

    /// Chaos invariant checker — binlog replay equivalence: recovering a
    /// fresh database from this one's serialized binlog must reproduce the
    /// exact table state. Holds only for databases whose every change went
    /// through [`Database::commit`] (a slave applying via
    /// [`Database::apply_changes`] has no binlog of its own).
    pub fn verify_replay_equivalence(&self) -> Result<(), String> {
        let replayed = Database::recover(self.name.clone(), &self.binlog_bytes());
        let (got, want) = (replayed.state_fingerprint(), self.state_fingerprint());
        if got != want {
            return Err(format!(
                "binlog replay of `{}` diverged: fingerprint {got:#x} != live {want:#x}",
                self.name
            ));
        }
        Ok(())
    }

    /// Rebuilds a database (tables + state) by replaying a serialized
    /// binlog — crash recovery. Tables named in the log are auto-created.
    pub fn recover(name: impl Into<String>, binlog_bytes: &[u8]) -> Self {
        let db = Database::new(name);
        let (log, _) = Binlog::recover(binlog_bytes);
        {
            let mut tables = db.tables.write();
            for entry in log.entries_after(0) {
                for change in &entry.changes {
                    tables.insert(change.table.clone());
                    let mut stripe = db.rows.lock(&(change.table.as_str(), &change.key));
                    let table = stripe.entry(change.table.clone()).or_default();
                    match &change.op {
                        Op::Put(row) => {
                            table.put(change.key.clone(), row.clone());
                        }
                        Op::Delete => {
                            table.delete(&change.key);
                        }
                    }
                }
            }
        }
        db.commit_point.lock().binlog = log;
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    fn db() -> Database {
        let db = Database::new("primary");
        db.create_table("member").unwrap();
        db.create_table("mailbox").unwrap();
        db
    }

    #[test]
    fn commit_assigns_dense_scns_and_metadata() {
        let db = db();
        let scn1 = db.put_one("member", RowKey::single("1"), &b"alice"[..], 1).unwrap();
        let scn2 = db.put_one("member", RowKey::single("2"), &b"bob"[..], 1).unwrap();
        assert_eq!((scn1, scn2), (1, 2));
        let row = db.get("member", &RowKey::single("1")).unwrap().unwrap();
        assert_eq!(row.etag, 1);
        assert_eq!(row.value.as_ref(), b"alice");
    }

    #[test]
    fn multi_table_transaction_is_atomic_in_binlog() {
        // The paper's example: "an insert into a member's mailbox and
        // update on the member's mailbox unread count" must share a txn.
        let db = db();
        let mut txn = db.begin();
        txn.put("mailbox", RowKey::new(["42", "msg-1"]), &b"hello"[..], 1);
        txn.put("member", RowKey::single("42"), &b"unread:1"[..], 1);
        let scn = db.commit(txn).unwrap();
        let entries = db.binlog_after(0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].scn, scn);
        assert_eq!(entries[0].changes.len(), 2, "boundary preserved");
    }

    #[test]
    fn unknown_table_aborts_whole_transaction() {
        let db = db();
        let mut txn = db.begin();
        txn.put("member", RowKey::single("1"), &b"x"[..], 1);
        txn.put("nope", RowKey::single("1"), &b"y"[..], 1);
        assert!(matches!(db.commit(txn), Err(DbError::UnknownTable(_))));
        // Nothing applied, nothing logged.
        assert_eq!(db.get("member", &RowKey::single("1")).unwrap(), None);
        assert_eq!(db.last_scn(), 0);
    }

    #[test]
    fn empty_transaction_rejected() {
        let db = db();
        assert_eq!(db.commit(db.begin()), Err(DbError::EmptyTransaction));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = db();
        assert!(matches!(
            db.create_table("member"),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn delete_round_trip() {
        let db = db();
        let key = RowKey::single("1");
        db.put_one("member", key.clone(), &b"x"[..], 1).unwrap();
        db.delete_one("member", key.clone()).unwrap();
        assert_eq!(db.get("member", &key).unwrap(), None);
        assert_eq!(db.last_scn(), 2, "delete is a logged transaction");
    }

    #[test]
    fn conditional_put_enforces_etag() {
        let db = db();
        let key = RowKey::single("1");
        // 0 = must not exist
        db.put_if_etag("member", key.clone(), 0, &b"v1"[..], 1).unwrap();
        let etag = db.get("member", &key).unwrap().unwrap().etag;
        db.put_if_etag("member", key.clone(), etag, &b"v2"[..], 1).unwrap();
        let err = db
            .put_if_etag("member", key.clone(), etag, &b"v3"[..], 1)
            .unwrap_err();
        assert!(matches!(err, DbError::EtagMismatch { .. }));
        assert_eq!(
            db.get("member", &key).unwrap().unwrap().value.as_ref(),
            b"v2"
        );
    }

    #[test]
    fn triggers_fire_per_commit_with_boundaries() {
        let db = db();
        let seen: Arc<PMutex<Vec<(Scn, usize)>>> = Arc::new(PMutex::new(Vec::new()));
        let sink = seen.clone();
        db.register_trigger(Arc::new(move |entry| {
            sink.lock().push((entry.scn, entry.changes.len()));
        }));
        db.put_one("member", RowKey::single("1"), &b"x"[..], 1).unwrap();
        let mut txn = db.begin();
        txn.put("member", RowKey::single("2"), &b"y"[..], 1);
        txn.delete("member", RowKey::single("1"));
        db.commit(txn).unwrap();
        assert_eq!(*seen.lock(), vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn recovery_replays_binlog() {
        let db = db();
        db.put_one("member", RowKey::single("1"), &b"v1"[..], 1).unwrap();
        db.put_one("member", RowKey::single("2"), &b"v2"[..], 1).unwrap();
        db.delete_one("member", RowKey::single("1")).unwrap();
        let bytes = db.binlog_bytes();

        let recovered = Database::recover("primary", &bytes);
        assert_eq!(recovered.last_scn(), 3);
        assert_eq!(recovered.get("member", &RowKey::single("1")).unwrap(), None);
        assert_eq!(
            recovered
                .get("member", &RowKey::single("2"))
                .unwrap()
                .unwrap()
                .value
                .as_ref(),
            b"v2"
        );
    }

    #[test]
    fn recovery_survives_torn_tail() {
        let db = db();
        db.put_one("member", RowKey::single("1"), &b"v1"[..], 1).unwrap();
        db.put_one("member", RowKey::single("2"), &b"v2"[..], 1).unwrap();
        let mut bytes = db.binlog_bytes();
        bytes.truncate(bytes.len() - 4);
        let recovered = Database::recover("primary", &bytes);
        assert_eq!(recovered.last_scn(), 1);
        assert!(recovered.get("member", &RowKey::single("2")).unwrap().is_none());
    }

    #[test]
    fn replicated_application_is_idempotent_and_ordered() {
        let primary = db();
        let replica = Database::new("replica");
        replica.create_table("member").unwrap();
        replica.create_table("mailbox").unwrap();

        primary.put_one("member", RowKey::single("1"), &b"v1"[..], 1).unwrap();
        primary.put_one("member", RowKey::single("1"), &b"v2"[..], 1).unwrap();
        let entries = primary.binlog_after(0);
        assert!(replica.apply_replicated(&entries[0]).unwrap());
        assert!(replica.apply_replicated(&entries[1]).unwrap());
        // Duplicate delivery (at-least-once) is a no-op.
        assert!(!replica.apply_replicated(&entries[1]).unwrap());
        assert_eq!(replica.applied_scn(), 2);
        assert_eq!(
            replica
                .get("member", &RowKey::single("1"))
                .unwrap()
                .unwrap()
                .value
                .as_ref(),
            b"v2"
        );
        // The replica's own binlog stays empty — it is not a source.
        assert_eq!(replica.last_scn(), 0);
    }

    #[test]
    fn concurrent_commits_serialize_with_dense_scns() {
        let db = Arc::new(db());
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    db.put_one(
                        "member",
                        RowKey::single(format!("{t}-{i}")),
                        &b"v"[..],
                        1,
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.last_scn(), 400);
        let entries = db.binlog_after(0);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.scn, i as u64 + 1, "SCNs dense and ordered");
        }
    }

    #[test]
    fn deterministic_and_parallel_modes_hold_identical_state() {
        let registry = MetricsRegistry::new();
        let clock: Arc<dyn li_commons::sim::Clock> =
            Arc::new(li_commons::sim::SimClock::new());
        let make = |mode| {
            let db = Database::with_shard_mode("twin", clock.clone(), &registry, mode);
            db.create_table("member").unwrap();
            db.create_table("mailbox").unwrap();
            db
        };
        let det = make(ShardMode::Deterministic);
        let par = make(ShardMode::Parallel);
        assert_eq!(det.row_stripes(), 1);
        assert_eq!(par.row_stripes(), DEFAULT_ROW_STRIPES);
        for db in [&det, &par] {
            for i in 0..200u32 {
                db.put_one("member", RowKey::single(format!("{i}")), format!("v{i}").into_bytes(), 1)
                    .unwrap();
            }
            let mut txn = db.begin();
            txn.put("mailbox", RowKey::new(["7", "m1"]), &b"x"[..], 1);
            txn.delete("member", RowKey::single("13"));
            db.commit(txn).unwrap();
        }
        assert_eq!(det.state_fingerprint(), par.state_fingerprint());
        assert_eq!(
            det.binlog_after(0).len(),
            par.binlog_after(0).len(),
            "same SCN sequence"
        );
        det.verify_replay_equivalence().unwrap();
        par.verify_replay_equivalence().unwrap();
    }

    #[test]
    fn disjoint_row_commits_overlap_outside_commit_point() {
        // A held row stripe must not block a commit on a different stripe:
        // take the stripe for key A directly, then commit key B (different
        // stripe) from another thread — it must complete while A is held.
        let db = Arc::new(db());
        let key_a = RowKey::single("a");
        let key_b = (0..1000u32)
            .map(|i| RowKey::single(format!("b{i}")))
            .find(|k| {
                db.rows.stripe_of(&("member", k)) != db.rows.stripe_of(&("member", &key_a))
            })
            .expect("a key in another stripe");
        let guard = db.rows.lock(&("member", &key_a));
        let db2 = db.clone();
        let h = std::thread::spawn(move || {
            db2.put_one("member", key_b, &b"v"[..], 1).unwrap();
        });
        h.join().unwrap();
        drop(guard);
        assert_eq!(db.last_scn(), 1);
    }
}
