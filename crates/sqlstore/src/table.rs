//! A single primary-keyed table.

use std::collections::BTreeMap;

use crate::row::{Row, RowKey};

/// An ordered table mapping composite primary keys to rows. The BTreeMap
//  gives point lookups plus the prefix scans Espresso's collection
//  resources need (`/Music/Album/Cher/...` = scan keys starting `["Cher"]`).
#[derive(Debug, Clone, Default)]
pub struct Table {
    rows: BTreeMap<RowKey, Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point lookup.
    pub fn get(&self, key: &RowKey) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Inserts or replaces a row, returning the previous image.
    pub fn put(&mut self, key: RowKey, row: Row) -> Option<Row> {
        self.rows.insert(key, row)
    }

    /// Deletes a row, returning the previous image.
    pub fn delete(&mut self, key: &RowKey) -> Option<Row> {
        self.rows.remove(key)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows whose key begins with `prefix`, in key order. An empty
    /// prefix scans the whole table.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a RowKey,
    ) -> impl Iterator<Item = (&'a RowKey, &'a Row)> + 'a {
        self.rows
            .range(prefix.clone()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// Iterates every row in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&RowKey, &Row)> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn row(v: &str) -> Row {
        Row::new(Bytes::copy_from_slice(v.as_bytes()), 1)
    }

    #[test]
    fn put_get_delete() {
        let mut table = Table::new();
        let key = RowKey::new(["Akon", "Trouble"]);
        assert!(table.put(key.clone(), row("2004")).is_none());
        assert_eq!(table.get(&key).unwrap().value.as_ref(), b"2004");
        let old = table.put(key.clone(), row("2005")).unwrap();
        assert_eq!(old.value.as_ref(), b"2004");
        assert_eq!(table.delete(&key).unwrap().value.as_ref(), b"2005");
        assert!(table.get(&key).is_none());
        assert!(table.is_empty());
    }

    #[test]
    fn prefix_scan_selects_collection() {
        let mut table = Table::new();
        for (artist, album) in [
            ("Babyface", "Lovers"),
            ("Babyface", "A_Closer_Look"),
            ("Babyface", "Face2Face"),
            ("Akon", "Trouble"),
            ("Coolio", "Steal_Hear"),
        ] {
            table.put(RowKey::new([artist, album]), row(album));
        }
        let babyface: Vec<String> = table
            .scan_prefix(&RowKey::single("Babyface"))
            .map(|(k, _)| k.0[1].clone())
            .collect();
        assert_eq!(babyface, vec!["A_Closer_Look", "Face2Face", "Lovers"]);
        // Prefix must match whole elements, not string prefixes.
        assert_eq!(table.scan_prefix(&RowKey::single("Baby")).count(), 0);
        // Empty prefix scans all.
        assert_eq!(table.scan_prefix(&RowKey::default()).count(), 5);
    }

    #[test]
    fn deeper_prefix_scan() {
        let mut table = Table::new();
        for (artist, album, song) in [
            ("Etta_James", "Gold", "At_Last"),
            ("Etta_James", "Gold", "Sunday_Kind_Of_Love"),
            ("Etta_James", "Her_Best", "At_Last"),
        ] {
            table.put(RowKey::new([artist, album, song]), row(song));
        }
        assert_eq!(
            table
                .scan_prefix(&RowKey::new(["Etta_James", "Gold"]))
                .count(),
            2
        );
        assert_eq!(table.scan_prefix(&RowKey::single("Etta_James")).count(), 3);
    }
}
