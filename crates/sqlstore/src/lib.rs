//! # li-sqlstore — the primary-database substrate
//!
//! The paper's pipelines start at "LinkedIn primary databases" — Oracle and
//! MySQL (§III.A). Databus consumes their transaction logs; Espresso
//! "stores documents in MySQL as the local data store" (§IV.B) and uses
//! "the semi-synchronous feature of MySQL replication" for durability. None
//! of that requires SQL itself: what the downstream systems program against
//! is
//!
//! 1. **primary-keyed tables** with point lookups and prefix scans,
//! 2. **multi-table transactions** with atomic commit,
//! 3. a **binlog**: a replayable, CRC-framed log of committed transactions,
//!    each stamped with a commit sequence number (SCN) and carrying its
//!    transaction boundary,
//! 4. **semi-synchronous shipping**: a commit is acknowledged only after
//!    the binlog entry reaches a second home (the Databus relay), and
//! 5. **triggers**: user callbacks invoked with each committed change
//!    (the paper's alternative capture path for Oracle).
//!
//! This crate implements exactly that contract (see the substitution table
//! in DESIGN.md). Rows carry the metadata columns of the paper's
//! Table IV.1 — `timestamp`, `etag`, `val`, `schema_version` — so Espresso
//! can implement conditional HTTP requests on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binlog;
mod db;
mod replication;
mod row;
mod table;

pub use binlog::{Binlog, BinlogEntry};
pub use db::{Database, DbError, Transaction, TriggerFn};
pub use replication::{ReplicaApplier, ShipError, Shipper};
pub use row::{Op, Row, RowChange, RowKey, Scn};
pub use table::Table;
