#!/usr/bin/env bash
# The full local gate: everything CI runs, in order. A clean exit here
# means the tree is shippable.
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (root package: examples + integration tests) =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== quorum proptests: 64 cases (default is 24) =="
QUORUM_PROPTEST_CASES=64 cargo test -q --test voldemort_quorum_props

echo "== relay proptests: 64 cases (default is 24) =="
RELAY_PROPTEST_CASES=64 cargo test -q --test databus_relay_props

echo "== site graph proptests: 64 cases (default is 32) =="
SITE_GRAPH_PROPTEST_CASES=64 cargo test -q --test site_graph_props

echo "== kafka ingest proptests: 64 cases (default is 24) =="
# Group-commit equivalence: grouped produce must be byte-identical to
# the legacy per-request path (same fingerprints, same offsets) in both
# shard modes, and concurrent grouped producers must lose nothing and
# keep per-thread FIFO order.
KAFKA_INGEST_PROPTEST_CASES=64 cargo test -q --test kafka_ingest_props

echo "== chaos sweep: 20 seeds x 10 scenarios (10 min budget) =="
# Wider seed sweep than the per-test default of 5. Deterministic — only
# the tail-fanout scenario sleeps (it replays simulated link latencies
# in real time so completion order follows the network model) — so the
# timeout is a tripwire for accidental wall-clock dependencies, not a
# flakiness allowance. On failure each scenario prints its own
# CHAOS_SEED=<n> repro line.
CHAOS_SEEDS=20 timeout 600 cargo test -q --test chaos -- chaos_sweep_

echo "== sharding proptests: 64 cases (default is 32) =="
# The deterministic-twin contract of the sharded serving runtime:
# Parallel must be byte-identical to Deterministic on seeded replays and
# lose no commits under concurrent disjoint lanes.
SHARDING_PROPTEST_CASES=64 cargo test -q --test sharding_props

echo "== migration proptests: 64 cases (default is 24) =="
# Online resharding equivalence: a migrated cluster must end
# byte-identical to a never-migrated twin under random write
# interleavings, random cutover points, random admin-fault timings and
# random abort points — with zero acked-write loss and zero refusals.
MIGRATION_PROPTEST_CASES=64 cargo test -q --test migration_props

echo "== site smoke: closed-loop SLO gates at CI population (5 min budget) =="
# A larger population than the per-test default (which keeps plain
# `cargo test` fast); knobs are overridable from the environment. The
# closed loop is seeded and deterministic, so the timeout is a tripwire
# for a wedged drain (lag that never reaches zero), not flakiness.
SITE_SMOKE_MEMBERS="${SITE_SMOKE_MEMBERS:-3000}" \
SITE_SMOKE_DRIVERS="${SITE_SMOKE_DRIVERS:-4}" \
SITE_SMOKE_OPS="${SITE_SMOKE_OPS:-600}" \
  timeout 300 cargo test -q --test site_scale

echo "== contended site smoke: 8 closed-loop drivers on the sharded runtime (5 min budget) =="
# Drives the striped-lock serving paths (sqlstore row stripes, Kafka
# partition index, follow stripes, push dispatch) at real contention.
# Deterministic per-driver op streams; the timeout is a tripwire for a
# serialization regression (a global lock would blow the p99 gates long
# before it), not flakiness.
SITE_SMOKE_MEMBERS="${SITE_SMOKE_MEMBERS:-3000}" \
SITE_SMOKE_DRIVERS=8 \
SITE_SMOKE_OPS="${SITE_SMOKE_OPS:-600}" \
  timeout 300 cargo test -q --test site_scale site_smoke_clears_all_slo_gates

echo "== M:N site smoke: 128 logical drivers on 4 scheduler workers (5 min budget) =="
# Far more logical drivers than OS threads: the M:N scheduler multiplexes
# 128 resumable closed-loop drivers onto 4 pool workers, quantum by
# quantum. Exercises the requeue/park paths under real contention; a
# scheduler that loses a driver or starves the FIFO fails the
# every-op-acked assertion or trips the tripwire timeout.
SITE_SMOKE_MEMBERS="${SITE_SMOKE_MEMBERS:-3000}" \
SITE_SMOKE_DRIVERS=128 \
SITE_SMOKE_WORKERS=4 \
SITE_SMOKE_OPS=40 \
  timeout 300 cargo test -q --test site_scale site_smoke_clears_all_slo_gates

echo "== site loader proptests: streaming == bulk prepare (default cases) =="
# The chunk-invariance contract the pipelined prepare rides on: the
# streaming loader must land the byte-identical primary commit stream
# and router accounting as the bulk path at any chunk size, in both
# shard modes.
cargo test -q --test site_loader_props

echo "== site smoke with migration in flight: online resharding mid-load (5 min budget) =="
# The closed loop with two Voldemort partitions plus an Espresso profile
# partition migrating off node 0 while the drivers run. Every SLO and
# conservation gate must stay green and the run must report exactly the
# expected cutover flips with zero refusals — a wedged delta catch-up or
# a refused flip trips the timeout or the gate, not flakiness.
SITE_SMOKE_MEMBERS="${SITE_SMOKE_MEMBERS:-3000}" \
SITE_SMOKE_DRIVERS="${SITE_SMOKE_DRIVERS:-4}" \
SITE_SMOKE_OPS="${SITE_SMOKE_OPS:-600}" \
  timeout 300 cargo test -q --test site_scale site_smoke_with_migration_in_flight_clears_all_gates

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --workspace --no-run (bench targets compile-gate) =="
cargo bench --workspace --no-run

echo "ci.sh: all green"
