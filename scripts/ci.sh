#!/usr/bin/env bash
# The full local gate: everything CI runs, in order. A clean exit here
# means the tree is shippable.
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (root package: examples + integration tests) =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo bench --workspace --no-run (bench targets compile-gate) =="
cargo bench --workspace --no-run

echo "ci.sh: all green"
