#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from bench_output.txt.

Usage: python3 scripts/fill_experiments.py
Reads bench_output.txt (criterion output + the harness's printed series)
and substitutes the __MARKER__ placeholders in EXPERIMENTS.md with the
measured medians, so the document always reflects the recorded run.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def parse_medians(text: str) -> dict[str, str]:
    medians = {}
    for match in re.finditer(r"^([\w/ .\-]+?)\n\s+time:\s+\[([^\]]+)\]", text, re.M):
        parts = match.group(2).split()
        medians[match.group(1).strip()] = f"{parts[2]} {parts[3]}"
    return medians


def parse_lines(text: str) -> dict[str, str]:
    out = {}
    hops = re.findall(r"^\s+(\d+) \|\s+([\d.]+) \|\s+0 \(local\)", text, re.M)
    for n, h in hops:
        out[f"H{n}"] = h
    m = re.search(r"saved ([\d.]+)%", text)
    if m:
        out["COMPPCT"] = m.group(1) + "%"
    m = re.search(r"avg e2e latency ([\d.]+) s", text)
    if m:
        out["E2E"] = m.group(1)
    m = re.search(r"segment: (\d+) MB", text)
    if m:
        out["SEGMB"] = m.group(1)
    for docs, t in re.findall(r"docs=\s*(\d+): failover .* took ([\d.]+\S+)", text):
        out[f"FO{ {'100':'100','1000':'1K','5000':'5K'}[docs] }"] = t
    for budget, held in re.findall(r"^\s+(\d+) \|\s+(\d+) \|\s+\d+$", text, re.M):
        key = {"65536": "W64K", "1048576": "W1M", "16777216": "W16M"}.get(budget)
        if key:
            out[key] = held
    m = re.search(r"relay buffers (\d+) windows, ~(\d+) MB", text)
    if m:
        out["RELAYMB"] = m.group(2)
    return out


def main() -> int:
    bench = (ROOT / "bench_output.txt").read_text()
    medians = parse_medians(bench)
    extras = parse_lines(bench)

    def med(name: str) -> str:
        return medians.get(name, "n/a")

    subs = {
        "__MIXED__": med("voldemort_mixed/sixty_forty"),
        "__RWREAD__": med("voldemort_readonly/rw_bdb_read"),
        "__ROREAD__": med("voldemort_readonly/ro_binary_search_read"),
        "__CF__": med("company_follow/zipfian_value_reads"),
        "__O1__": med("routing_chord_vs_o1/voldemort_o1/1024"),
        "__CHORD__": med("routing_chord_vs_o1/chord_logn/1024"),
        "__RELAY__": med("databus_relay_latency/serve_64_windows_from_scn"),
        "__DELTA__": med("databus_consolidated_delta/consolidated_delta"),
        "__REPLAY__": med("databus_consolidated_delta/full_replay"),
        "__IDX__": med("espresso_index/indexed_selective_query"),
        "__SCAN__": med("espresso_index/unindexed_scan_equivalent"),
        "__TXN__": med("espresso_txn/album_plus_2_songs_atomic"),
        "__KAFKA1K__": med("kafka_vs_traditional_mq/kafka_produce_consume_5k_x3"),
        "__MQ1K__": med("kafka_vs_traditional_mq/traditional_mq_5k_x3"),
        "__B1__": med("kafka_batching/produce_2k/1"),
        "__B1000__": med("kafka_batching/produce_2k/1000"),
        "__ZC__": med("kafka_zerocopy/serve_segment/sendfile_zero_copy"),
        "__FC__": med("kafka_zerocopy/serve_segment/four_copy"),
        "__HOP__": med("kafka_pipeline_e2e/transport_hop_produce_mirror_load"),
        "__Q111G__": med("ablation_quorum/get/N1R1W1"),
        "__Q333G__": med("ablation_quorum/get/N3R3W3"),
        "__Q111U__": med("ablation_quorum/update/N1R1W1"),
        "__Q333U__": med("ablation_quorum/update/N3R3W3"),
        "__F1__": med("ablation_flush_interval/append/1"),
        "__F1000__": med("ablation_flush_interval/append/1000"),
    }
    for key in ["H8", "H64", "H256", "H1024", "COMPPCT", "E2E", "SEGMB",
                "FO100", "FO1K", "FO5K", "W64K", "W1M", "W16M", "RELAYMB"]:
        subs[f"__{key}__"] = extras.get(key, "n/a")

    path = ROOT / "EXPERIMENTS.md"
    text = path.read_text()
    missing = []
    for marker, value in subs.items():
        if marker in text:
            text = text.replace(marker, value)
        if value == "n/a":
            missing.append(marker)
    path.write_text(text)
    leftovers = sorted(set(re.findall(r"__[A-Z0-9]+__", text)))
    print(f"filled {len(subs) - len(missing)} markers; unresolved: {leftovers or 'none'}")
    return 1 if leftovers else 0


if __name__ == "__main__":
    sys.exit(main())
