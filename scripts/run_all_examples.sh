#!/usr/bin/env bash
# Runs every example end to end (the figure walk-throughs of EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

for example in quickstart site_architecture espresso_music read_replica; do
    echo "================ $example ================"
    cargo run -q --example "$example"
done
for example in company_follow pymk_readonly kafka_activity online_resharding; do
    echo "================ $example (release) ================"
    cargo run -q --release --example "$example"
done
echo "all examples OK"
