//! Failure-injection integration tests: quorums under message loss and
//! partitions (Voldemort), failover storms (Espresso/Helix, C-11/C-20),
//! and Kafka group-membership churn (C-17) — the failure surface §II.A
//! designs for ("frequent transient and short-term failures ... are very
//! prevalent in production datacenters").

use bytes::Bytes;
use li_commons::ring::{HashRing, NodeId, PartitionId};
use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_commons::sim::{SimClock, SimNetwork};
use li_espresso::{DatabaseSchema, EspressoCluster, TableSchema};
use li_sqlstore::RowKey;
use li_voldemort::{StoreDef, VoldemortCluster};
use std::sync::Arc;

#[test]
fn voldemort_sloppy_quorum_rides_out_message_loss() {
    // 10% message loss (the paper's "frequent transient errors" regime —
    // below the failure detector's ban threshold): W=2-of-3 with hinted
    // handoff keeps writes durable; after healing and hint delivery, all
    // acknowledged writes are readable.
    let clock = Arc::new(SimClock::new());
    let ring = HashRing::balanced(16, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
    let network = SimNetwork::with_seed(99);
    let cluster = VoldemortCluster::with_parts(ring, network.clone(), clock.clone()).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();

    network.set_drop_probability(0.1);
    let mut written = Vec::new();
    for i in 0..200 {
        let key = format!("k{i}");
        let value = Bytes::from(format!("v{i}"));
        // Retry like a real app: apply_update re-reads at quorum and
        // re-writes with a dominating clock, so success == W acks of the
        // *current* write (a bare put retry can't distinguish "my first
        // attempt landed partially" from "someone else wrote").
        for _attempt in 0..10 {
            match client.apply_update(key.as_bytes(), 5, &|_| Some(value.clone())) {
                Ok(_) => {
                    written.push(key.clone());
                    break;
                }
                Err(_) => {
                    // The async recovery thread keeps running in production:
                    // time passes, banned-but-healthy nodes get probed back.
                    clock.advance(std::time::Duration::from_secs(6));
                    cluster.run_failure_probes();
                }
            }
        }
    }
    assert!(written.len() > 190, "most writes should eventually land: {}", written.len());

    network.set_drop_probability(0.0);
    // Readmit anything the detector banned during the lossy phase, then
    // drain hints.
    clock.advance(std::time::Duration::from_secs(6));
    cluster.run_failure_probes();
    cluster.deliver_hints();
    // Every acknowledged write must be readable at quorum.
    for key in &written {
        let got = client.get(key.as_bytes()).unwrap();
        assert!(!got.is_empty(), "{key} lost despite W=2 ack");
    }
}

#[test]
fn voldemort_partition_blocks_quorum_then_heals() {
    let ring = HashRing::balanced(12, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
    let network = SimNetwork::reliable();
    // SimClock everywhere: no test may depend on wall-clock time (the
    // determinism contract in DESIGN.md).
    let cluster =
        VoldemortCluster::with_parts(ring, network.clone(), Arc::new(SimClock::new())).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 3))
        .unwrap();
    let client = cluster.client("s").unwrap();
    client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();

    // Split the client (node u16::MAX side) from two of three replicas:
    // W=3 with no available fallbacks must fail.
    let clock_before = client.get(b"k").unwrap()[0].clock.clone();
    network.partition(&[
        &[NodeId(0), li_voldemort::StoreClient::CLIENT_NODE],
        &[NodeId(1), NodeId(2)],
    ]);
    let err = client.put(b"k", &clock_before, Bytes::from_static(b"v2"));
    assert!(err.is_err(), "W=3 unreachable under partition");

    network.heal();
    let clock = client.get(b"k").unwrap()[0].clock.clone();
    client.put(b"k", &clock, Bytes::from_static(b"v2")).unwrap();
    assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v2");
}

fn tiny_music(partitions: u32, replication: usize) -> DatabaseSchema {
    DatabaseSchema::new("Music", partitions, replication)
        .with_table(
            TableSchema::new("Album", ["artist", "album"]),
            RecordSchema::new("Album", 1, vec![Field::new("year", FieldType::Long)]).unwrap(),
        )
        .unwrap()
}

#[test]
fn espresso_survives_rolling_failures_of_every_node() {
    // Kill and restart each node in turn (a rolling outage); with
    // replication 2 and pumps between failures, no committed document is
    // ever lost and writes always find a master.
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(tiny_music(6, 2)).unwrap();
    let album = |year: i64| Record::new().with("year", Value::Long(year));

    let mut expected = 0u64;
    for round in 0..3u16 {
        // Write a wave of documents.
        for i in 0..10u64 {
            cluster
                .put(
                    "Music",
                    "Album",
                    RowKey::new([format!("artist-{}", i % 5), format!("album-{round}-{i}")]),
                    &album(2000 + i as i64),
                )
                .unwrap();
            expected += 1;
        }
        cluster.pump_replication().unwrap();
        cluster.crash_node(NodeId(round)).unwrap();
        // Every artist still fully served by the survivors.
        let mut total = 0;
        for a in 0..5 {
            total += cluster
                .get_uri(&format!("/Music/Album/artist-{a}"))
                .unwrap()
                .len() as u64;
        }
        assert_eq!(total, expected, "data loss after killing node {round}");
        cluster.restart_node(NodeId(round)).unwrap();
        cluster.pump_replication().unwrap();
    }
}

#[test]
fn espresso_no_two_masters_during_failover() {
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(tiny_music(8, 2)).unwrap();
    cluster.pump_replication().unwrap();
    cluster.crash_node(NodeId(0)).unwrap();
    let view = cluster.controller().external_view("Music").unwrap();
    for p in 0..8 {
        let pid = PartitionId(p);
        let masters: Vec<NodeId> = view
            .partitions
            .get(&pid)
            .map(|nodes| {
                nodes
                    .iter()
                    .filter(|(_, &s)| s == li_helix::ReplicaState::Master)
                    .map(|(&n, _)| n)
                    .collect()
            })
            .unwrap_or_default();
        assert!(masters.len() <= 1, "partition {p} has masters {masters:?}");
        assert!(!masters.contains(&NodeId(0)), "dead node still mastering");
    }
}

#[test]
fn helix_converges_back_to_ideal_after_churn() {
    use li_helix::{best_possible_state, compute_transitions, ideal_state, ResourceConfig};
    use std::collections::BTreeSet;

    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let config = ResourceConfig::new("r", 20, 3);
    let (prefs, ideal) = ideal_state(&config, &nodes);

    // Churn: lose 2, regain 1, lose another, regain all.
    let mut current = ideal.clone();
    let phases: Vec<BTreeSet<NodeId>> = vec![
        [0, 2, 4].iter().map(|&i| NodeId(i)).collect(),
        [0, 1, 2, 4].iter().map(|&i| NodeId(i)).collect(),
        [1, 2, 4].iter().map(|&i| NodeId(i)).collect(),
        (0..5).map(NodeId).collect(),
    ];
    for live in &phases {
        let target = best_possible_state(&prefs, live);
        let plan = compute_transitions("r", &current, &target);
        // Execute the plan (simulate handlers that always succeed).
        for step in plan {
            current.set_state(step.partition, step.node, step.to);
        }
        assert_eq!(current, target);
    }
    // All nodes back: BESTPOSSIBLESTATE converged to IDEALSTATE.
    assert_eq!(current, ideal);
}

#[test]
fn kafka_group_survives_rapid_membership_churn() {
    use li_kafka::{GroupConsumer, KafkaCluster, MessageSet};

    let cluster = KafkaCluster::new(2).unwrap();
    cluster.create_topic("t", 12).unwrap();
    for p in 0..12 {
        cluster
            .broker_for("t", p)
            .unwrap()
            .produce("t", p, &MessageSet::from_payloads([format!("m{p}")]))
            .unwrap();
    }
    let mut a = GroupConsumer::join(cluster.clone(), "g", "t", "a").unwrap();
    let mut b = GroupConsumer::join(cluster.clone(), "g", "t", "b").unwrap();
    let c = GroupConsumer::join(cluster.clone(), "g", "t", "c").unwrap();
    let d = GroupConsumer::join(cluster.clone(), "g", "t", "d").unwrap();
    // Churn: c leaves gracefully, d crashes, before anyone rebalanced.
    c.leave().unwrap();
    d.crash(&cluster);
    for _ in 0..2 {
        a.rebalance().unwrap();
        b.rebalance().unwrap();
    }
    let mut owned: Vec<u32> = a
        .owned_partitions()
        .into_iter()
        .chain(b.owned_partitions())
        .collect();
    owned.sort_unstable();
    assert_eq!(owned, (0..12).collect::<Vec<u32>>());
    // And consumption covers every partition exactly once.
    let total = a.poll().unwrap().len() + b.poll().unwrap().len();
    assert_eq!(total, 12);
}
