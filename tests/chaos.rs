//! Deterministic chaos scenarios: every system under a seeded fault
//! schedule, checked against cross-system invariants at quiesce.
//!
//! Each scenario is a pure function of its seed: the [`ChaosScheduler`]
//! owns the run's `SimClock` and seeded `SimNetwork`, the workload is a
//! deterministic op stream, and no code on the chaos path consults the
//! wall clock or OS RNG. A failing run prints a one-line repro
//! (`CHAOS_SEED=<seed> cargo test --test chaos <scenario>`) plus the
//! event trace; re-running with that seed reproduces the run byte for
//! byte (asserted by `same_seed_yields_byte_identical_traces` below, and
//! exercised end-to-end by the planted-violation test).
//!
//! Default sweep is 5 seeds per scenario; CI widens it with
//! `CHAOS_SEEDS=20` and a repro pins one with `CHAOS_SEED=<n>`.

use bytes::Bytes;
use li_commons::chaos::{
    sweep_seeds, ChaosConfig, ChaosFailure, ChaosScheduler, FaultHooks, NetworkOnlyHooks,
};
use li_commons::clock::VectorClock;
use li_commons::migrate::{MigrationConfig, MigrationCoordinator, MigrationPhase};
use li_commons::ring::{HashRing, NodeId, PartitionId};
use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_commons::metrics::MetricsRegistry;
use li_commons::shard::ShardMode;
use li_commons::sim::SimClock;
use li_espresso::{DatabaseSchema, EspressoCluster, TableSchema};
use li_kafka::log::LogConfig;
use li_kafka::mirror::MirrorMaker;
use li_kafka::{AckMode, KafkaCluster, MessageSet, ReplicatedCluster};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use li_sqlstore::{Database, RowKey};
use li_databus::{DatabusClient, LogShippingAdapter, Relay};
use li_voldemort::{FanOutMode, QuorumConfig, ReadFanOut, StoreDef, VoldemortCluster};
use li_workload::{SiteGraph, SiteGraphConfig, SiteMix, SiteOp, SiteWorkload};
use linkedin_data_infra::consumers::{
    company_row_key, member_row_key, parse_id_list, CompanyFollowCacher,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Scenario 1: Voldemort quorum durability under the full fault menu.
// ---------------------------------------------------------------------

/// Drives a 5-node Voldemort cluster (N=3, R=2, W=2) through a seeded
/// fault schedule of crashes, partitions, asymmetric link blocks, drop
/// bursts, slow links and clock-skew bursts. Invariant: after quiesce +
/// recovery (probes, hinted handoff), every acknowledged write is still
/// readable and covered by a surviving version's clock.
///
/// With `plant_violation`, an acked key is deleted behind the client's
/// back after recovery — the harness must catch it and print a repro.
fn run_voldemort_quorum(seed: u64, plant_violation: bool) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let mut sched = ChaosScheduler::new(seed, nodes.clone(), ChaosConfig::default());
    let clock = sched.clock();
    let ring = HashRing::balanced(16, &nodes).unwrap();
    let cluster = VoldemortCluster::with_parts(ring, sched.network(), Arc::new(clock.clone()))
        .unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();

    let mut acked: Vec<(String, Bytes, VectorClock)> = Vec::new();
    for i in 0..120u32 {
        sched.step(&*cluster);
        let key = format!("k{i}");
        let value = Bytes::from(format!("v{i}"));
        // Retry like a real app: apply_update re-reads at quorum and
        // re-writes with a dominating clock, so a success is W acks of
        // the *current* write. Between attempts, virtual time passes and
        // the async recovery path (failure probes) runs.
        for _attempt in 0..8 {
            match client.apply_update(key.as_bytes(), 5, &|_| Some(value.clone())) {
                Ok(write_clock) => {
                    acked.push((key.clone(), value.clone(), write_clock));
                    break;
                }
                Err(_) => {
                    clock.advance(Duration::from_secs(6));
                    cluster.run_failure_probes();
                    sched.step(&*cluster);
                }
            }
        }
        if i % 20 == 0 {
            sched.note(format!("op {i}: acked_total={}", acked.len()));
        }
    }

    sched.quiesce(&*cluster);
    // Drain the recovery machinery: readmit banned nodes, replay hints.
    for _ in 0..40 {
        clock.advance(Duration::from_secs(6));
        cluster.run_failure_probes();
        cluster.deliver_hints();
        if cluster.pending_hints() == 0 && cluster.detector().banned_nodes().is_empty() {
            break;
        }
    }
    sched.note(format!(
        "drained: acked={} pending_hints={} banned={:?}",
        acked.len(),
        cluster.pending_hints(),
        cluster.detector().banned_nodes()
    ));

    if plant_violation {
        // Delete the first acked key on every node with a clock that
        // dominates anything the run could have produced — simulating a
        // durability bug the invariant checker must catch.
        if let Some((key, _, write_clock)) = acked.first() {
            let mut dominating = write_clock.clone();
            for writer in [0u16, 1, 2, 3, 4, u16::MAX] {
                for _ in 0..50 {
                    dominating.increment(writer);
                }
            }
            for id in cluster.node_ids() {
                let _ = cluster.node(id).unwrap().delete("s", key.as_bytes(), &dominating);
            }
            sched.note(format!("PLANT: deleted acked key `{key}` on every replica"));
        }
    }

    let durability = || -> Result<(), String> {
        for (key, value, write_clock) in &acked {
            let siblings = client
                .get(key.as_bytes())
                .map_err(|e| format!("read of acked `{key}` failed: {e}"))?;
            if siblings.is_empty() {
                return Err(format!("acked key `{key}` unreadable (write lost)"));
            }
            if !siblings.iter().any(|v| v.clock.descends_from(write_clock)) {
                return Err(format!(
                    "acked write to `{key}` not covered by any surviving version"
                ));
            }
            if let Some(v) = siblings.iter().find(|v| v.clock == *write_clock) {
                if v.value != *value {
                    return Err(format!("acked key `{key}` returned wrong bytes"));
                }
            }
        }
        Ok(())
    };
    let hints_drained = || -> Result<(), String> {
        match cluster.pending_hints() {
            0 => Ok(()),
            n => Err(format!("{n} hints still pending after recovery")),
        }
    };
    sched.check(
        &[
            ("quorum-durability", &durability),
            ("hints-drained", &hints_drained),
        ],
        "cargo test --test chaos voldemort",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_voldemort_quorum() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_voldemort_quorum(seed, false) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 1b: Voldemort parallel fan-out tail latency under slow links.
// ---------------------------------------------------------------------

/// Drives a 5-node Voldemort cluster (N=3, R=2, W=2) with the **parallel**
/// quorum path through a seeded schedule of crashes and slow node↔node
/// links, while a deterministically rotating client→replica link is made
/// slow as well. Invariants at quiesce:
///
/// * **tail-bound** — every successful quorum read completed within the
///   R-th-fastest live replica's link latency (the whole point of fanning
///   out: one slow replica must not set the request's critical path);
/// * **quorum-durability** — every acked write is still covered;
/// * **hints-drained-to-owners** — after `heal_all` + recovery, no hint is
///   pending and every preference-list owner of every acked key holds a
///   version descending from the acked clock.
fn run_voldemort_tail_fanout(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    // Crash + slow-link faults only: drops would burn the shared network
    // RNG from pool threads in nondeterministic order, and partitions can
    // leave no quorum to measure.
    let config = ChaosConfig {
        partitions: false,
        asym_links: false,
        drops: false,
        clock_skew: false,
        ..ChaosConfig::default()
    };
    let mut sched = ChaosScheduler::new(seed, nodes.clone(), config);
    let clock = sched.clock();
    let ring = HashRing::balanced(16, &nodes).unwrap();
    let cluster =
        VoldemortCluster::with_parts(ring, sched.network(), Arc::new(clock.clone())).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    // `simulate_latency` makes pool threads actually sleep each link's
    // simulated latency, so completion order — and therefore which replies
    // form the quorum — is decided by the fault schedule, not by OS thread
    // scheduling. Injected latencies (10–25ms) dwarf scheduling jitter.
    let client = cluster.client("s").unwrap().with_quorum_config(QuorumConfig {
        mode: FanOutMode::Parallel,
        read_fan_out: ReadFanOut::All,
        simulate_latency: true,
        ..QuorumConfig::default()
    });
    let required_reads = 2usize;

    // The scheduler only slows node↔node links; the client's own links are
    // rotated here from a seeded xorshift stream so the read path always
    // has a slow replica to mask.
    let mut link_rng = seed | 1;
    let mut slow_replica: Option<NodeId> = None;
    let mut acked: Vec<(String, Bytes, VectorClock)> = Vec::new();
    let mut tail_violations: Vec<String> = Vec::new();
    for i in 0..60u32 {
        sched.step(&*cluster);
        if i % 8 == 0 {
            if let Some(old) = slow_replica.take() {
                cluster
                    .network()
                    .set_link_latency(li_voldemort::StoreClient::CLIENT_NODE, old, Duration::ZERO);
            }
            link_rng ^= link_rng << 13;
            link_rng ^= link_rng >> 7;
            link_rng ^= link_rng << 17;
            let node = NodeId((link_rng % 5) as u16);
            let ms = 10 + (link_rng >> 8) % 16;
            cluster.network().set_link_latency(
                li_voldemort::StoreClient::CLIENT_NODE,
                node,
                Duration::from_millis(ms),
            );
            slow_replica = Some(node);
            sched.note(format!("client-slow: node {} {}ms", node.0, ms));
        }

        let key = format!("t{}", i % 12);
        let value = Bytes::from(format!("v{i}"));
        for _attempt in 0..6 {
            match client.apply_update(key.as_bytes(), 5, &|_| Some(value.clone())) {
                Ok(write_clock) => {
                    acked.push((key.clone(), value.clone(), write_clock));
                    break;
                }
                Err(_) => {
                    clock.advance(Duration::from_secs(6));
                    cluster.run_failure_probes();
                    sched.step(&*cluster);
                }
            }
        }
        // Parallel puts ack at W and finish replicating on pool threads;
        // quiesce so the fault schedule (not thread timing) decides what
        // the next op observes, keeping the trace a pure function of seed.
        cluster.fan_out_pool().wait_idle();

        // Tail bound: the R-th smallest client→replica latency over live,
        // detector-available owners is the worst a fanned-out read may
        // report as its simulated critical path.
        let prefs = cluster.ring().preference_list(key.as_bytes(), 3).unwrap();
        let mut reachable: Vec<Duration> = prefs
            .iter()
            .filter(|&&p| cluster.detector().is_available(p))
            .filter_map(|&p| {
                cluster
                    .network()
                    .peek_latency(li_voldemort::StoreClient::CLIENT_NODE, p)
                    .ok()
            })
            .collect();
        reachable.sort();
        if let Some(&bound) = reachable.get(required_reads - 1) {
            match client.get_with_stats(key.as_bytes()) {
                Ok((_, stats)) => {
                    if stats.sim_latency > bound {
                        tail_violations.push(format!(
                            "op {i}: read of `{key}` took {:?}, R-th fastest replica is {:?}",
                            stats.sim_latency, bound
                        ));
                    }
                }
                Err(e) => sched.note(format!("op {i}: read failed under faults: {e}")),
            }
            cluster.fan_out_pool().wait_idle();
        }
        if i % 20 == 0 {
            sched.note(format!("op {i}: acked_total={}", acked.len()));
        }
    }

    sched.quiesce(&*cluster);
    cluster.network().heal_all();
    for _ in 0..40 {
        clock.advance(Duration::from_secs(6));
        cluster.run_failure_probes();
        cluster.deliver_hints();
        if cluster.pending_hints() == 0 && cluster.detector().banned_nodes().is_empty() {
            break;
        }
    }
    // Let the detector's sample window expire so crash-epoch failure
    // samples can't combine with the first verification success into a
    // ratio ban mid-check.
    clock.advance(Duration::from_secs(30));
    sched.note(format!(
        "drained: acked={} pending_hints={} banned={:?}",
        acked.len(),
        cluster.pending_hints(),
        cluster.detector().banned_nodes()
    ));

    let tail_bound = || -> Result<(), String> {
        match tail_violations.first() {
            None => Ok(()),
            Some(first) => Err(format!(
                "{} reads exceeded the R-th-fastest-replica bound; first: {first}",
                tail_violations.len()
            )),
        }
    };
    let durability = || -> Result<(), String> {
        for (key, value, write_clock) in &acked {
            let siblings = client
                .get(key.as_bytes())
                .map_err(|e| format!("read of acked `{key}` failed: {e}"))?;
            if !siblings.iter().any(|v| v.clock.descends_from(write_clock)) {
                return Err(format!(
                    "acked write to `{key}` not covered by any surviving version"
                ));
            }
            if let Some(v) = siblings.iter().find(|v| v.clock == *write_clock) {
                if v.value != *value {
                    return Err(format!("acked key `{key}` returned wrong bytes"));
                }
            }
        }
        Ok(())
    };
    // Runs after `durability`, whose all-replica reads have already
    // read-repaired any owner the hint path could legitimately skip (a
    // banned owner with W live acks parks no hint).
    let hints_to_owners = || -> Result<(), String> {
        if cluster.pending_hints() != 0 {
            return Err(format!(
                "{} hints still pending after heal_all + recovery",
                cluster.pending_hints()
            ));
        }
        cluster.fan_out_pool().wait_idle();
        for (key, _, write_clock) in &acked {
            let prefs = cluster.ring().preference_list(key.as_bytes(), 3).unwrap();
            for owner in prefs {
                let held = cluster
                    .node(owner)
                    .map_err(|e| e.to_string())?
                    .get("s", key.as_bytes())
                    .map_err(|e| format!("owner {owner} read of `{key}`: {e}"))?;
                if !held.iter().any(|v| v.clock.descends_from(write_clock)) {
                    return Err(format!(
                        "owner {owner} of `{key}` missing the acked write after hint replay"
                    ));
                }
            }
        }
        Ok(())
    };
    sched.check(
        &[
            ("tail-bound", &tail_bound),
            ("quorum-durability", &durability),
            ("hints-drained-to-owners", &hints_to_owners),
        ],
        "cargo test --test chaos tail_fanout",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_voldemort_tail_fanout() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_voldemort_tail_fanout(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 2: Espresso mastership failover + commit-order.
// ---------------------------------------------------------------------

fn tiny_music(partitions: u32, replication: usize) -> DatabaseSchema {
    DatabaseSchema::new("Music", partitions, replication)
        .with_table(
            TableSchema::new("Album", ["artist", "album"]),
            RecordSchema::new("Album", 1, vec![Field::new("year", FieldType::Long)]).unwrap(),
        )
        .unwrap()
}

/// Drives a 3-node Espresso cluster (6 partitions, replication 2)
/// through crash/restart storms (hooks-only faults — Espresso's routing
/// is Helix state, not the SimNetwork). Invariants at quiesce: every
/// acknowledged document readable with its committed value, at most one
/// master per partition, and every relay's change stream in strict
/// commit (SCN) order with no per-key etag regressions.
fn run_espresso_failover(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 1;
    let mut sched = ChaosScheduler::new(seed, nodes, config);
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(tiny_music(6, 2)).unwrap();
    let album = |year: i64| Record::new().with("year", Value::Long(year));

    let mut acked: Vec<(RowKey, i64)> = Vec::new();
    for i in 0..120u64 {
        sched.step(&*cluster);
        let key = RowKey::new([format!("artist-{}", i % 7), format!("album-{i}")]);
        let year = 1990 + i as i64;
        match cluster.put("Music", "Album", key.clone(), &album(year)) {
            Ok(_etag) => acked.push((key, year)),
            Err(_) => sched.note(format!("put {i} rejected (no live master)")),
        }
        if i % 5 == 0 {
            let _ = cluster.pump_replication();
        }
        if i % 20 == 0 {
            sched.note(format!("op {i}: acked_total={}", acked.len()));
        }
    }

    sched.quiesce(&*cluster);
    for _ in 0..4 {
        let _ = cluster.pump_replication();
    }
    sched.note(format!("drained: acked={}", acked.len()));

    let readable = || -> Result<(), String> {
        for (key, year) in &acked {
            let got = cluster
                .get("Music", "Album", key)
                .map_err(|e| format!("read of acked {key:?} failed: {e}"))?;
            let Some((record, _row)) = got else {
                return Err(format!("acked document {key:?} lost"));
            };
            if record.get("year") != Some(&Value::Long(*year)) {
                return Err(format!("acked document {key:?} has wrong value"));
            }
        }
        Ok(())
    };
    let single_master = || -> Result<(), String> {
        let view = cluster
            .controller()
            .external_view("Music")
            .map_err(|e| format!("no external view: {e}"))?;
        for p in 0..6 {
            let masters: Vec<NodeId> = view
                .partitions
                .get(&PartitionId(p))
                .map(|states| {
                    states
                        .iter()
                        .filter(|(_, &s)| s == li_helix::ReplicaState::Master)
                        .map(|(&n, _)| n)
                        .collect()
                })
                .unwrap_or_default();
            if masters.len() > 1 {
                return Err(format!("partition {p} has multiple masters {masters:?}"));
            }
        }
        Ok(())
    };
    let commit_order = || -> Result<(), String> {
        for i in 0..3u16 {
            cluster
                .relay(NodeId(i))
                .map_err(|e| format!("relay {i}: {e}"))?
                .verify_commit_order()
                .map_err(|e| format!("relay {i}: {e}"))?;
        }
        Ok(())
    };
    sched.check(
        &[
            ("acked-docs-readable", &readable),
            ("single-master-per-partition", &single_master),
            ("relay-commit-order", &commit_order),
        ],
        "cargo test --test chaos espresso",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_espresso_failover() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_espresso_failover(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 3: Kafka replication + mirroring byte-identity.
// ---------------------------------------------------------------------

/// Drives a 3-broker replicated Kafka cluster (3 partitions, RF=3)
/// through broker fail/recover cycles while producing, replicating and
/// consuming committed offsets — plus a live→offline MirrorMaker pair
/// pumping in the background. Invariants at quiesce: every log passes
/// the CRC frame walk with contiguous offsets, all replicas of each
/// partition are byte-identical to the leader, committed reads were
/// never rolled back, and the mirror target is byte-identical to its
/// source.
fn run_kafka_replication_and_mirror(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 1;
    let mut sched = ChaosScheduler::new(seed, nodes, config);
    let live = KafkaCluster::new(3).unwrap();
    let replicated = ReplicatedCluster::new(live.clone());
    replicated.create_topic("events", 3, 3).unwrap();
    // The paper's live→offline pipeline: a mirror pair on the side.
    let source = KafkaCluster::new(1).unwrap();
    let target = KafkaCluster::new(1).unwrap();
    source.create_topic("tracking", 2).unwrap();
    target.create_topic("tracking", 2).unwrap();
    let mirror = MirrorMaker::new(source.clone(), target.clone(), ["tracking"]).unwrap();

    // Committed consumer state per partition: (byte offset, payload).
    let mut consumed: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); 3];
    let mut next_offset = [0u64; 3];
    let mut produced_ok = 0u64;
    for i in 0..150u64 {
        sched.step(&replicated);
        let partition = (i % 3) as u32;
        let set = MessageSet::from_payloads([format!("m{i}")]);
        if replicated.produce("events", partition, &set).is_ok() {
            produced_ok += 1;
        }
        source
            .broker_for("tracking", (i % 2) as u32)
            .unwrap()
            .produce("tracking", (i % 2) as u32, &set)
            .unwrap();
        if i % 4 == 0 {
            let _ = replicated.replicate();
        }
        if i % 7 == 0 {
            let _ = mirror.pump();
        }
        let p = partition as usize;
        if let Ok((messages, next)) =
            replicated.fetch_committed("events", partition, next_offset[p], usize::MAX)
        {
            for (offset, message) in messages {
                consumed[p].push((offset, message.payload.clone()));
            }
            next_offset[p] = next;
        }
        if i % 30 == 0 {
            sched.note(format!("op {i}: produced_ok={produced_ok}"));
        }
    }

    sched.quiesce(&replicated);
    for _ in 0..10 {
        if replicated.replicate().unwrap() == 0 {
            break;
        }
    }
    mirror.pump().unwrap();
    sched.note(format!(
        "drained: produced_ok={produced_ok} consumed={:?}",
        consumed.iter().map(Vec::len).collect::<Vec<_>>()
    ));

    let contiguity = || -> Result<(), String> {
        for broker in 0..3usize {
            for p in 0..3u32 {
                live.brokers()[broker]
                    .log("events", p)
                    .map_err(|e| format!("broker {broker} events/{p}: {e}"))?
                    .verify_contiguity()
                    .map_err(|e| format!("broker {broker} events/{p}: {e}"))?;
            }
        }
        for (name, cluster) in [("source", &source), ("target", &target)] {
            for p in 0..2u32 {
                cluster.brokers()[0]
                    .log("tracking", p)
                    .map_err(|e| format!("{name} tracking/{p}: {e}"))?
                    .verify_contiguity()
                    .map_err(|e| format!("{name} tracking/{p}: {e}"))?;
            }
        }
        Ok(())
    };
    let replica_identity = || -> Result<(), String> {
        for p in 0..3u32 {
            replicated.verify_replica_identity("events", p)?;
        }
        Ok(())
    };
    let committed_stable = || -> Result<(), String> {
        // Nothing a consumer saw below the high watermark may have been
        // rolled back: re-fetching from 0 must replay the same bytes at
        // the same offsets.
        for p in 0..3u32 {
            let (all, _) = replicated
                .fetch_committed("events", p, 0, usize::MAX)
                .map_err(|e| format!("refetch events/{p}: {e}"))?;
            for (offset, payload) in &consumed[p as usize] {
                let found = all.iter().find(|(o, _)| o == offset);
                match found {
                    Some((_, message)) if message.payload == *payload => {}
                    Some(_) => {
                        return Err(format!(
                            "events/{p} offset {offset}: committed read changed bytes"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "events/{p} offset {offset}: committed read rolled back"
                        ))
                    }
                }
            }
        }
        Ok(())
    };
    let mirror_identity = || -> Result<(), String> {
        for p in 0..2u32 {
            let src = source.brokers()[0]
                .log("tracking", p)
                .map_err(|e| e.to_string())?
                .content_fingerprint();
            let dst = target.brokers()[0]
                .log("tracking", p)
                .map_err(|e| e.to_string())?
                .content_fingerprint();
            if src != dst {
                return Err(format!(
                    "tracking/{p}: mirror target diverged from source ({src:#x} != {dst:#x})"
                ));
            }
        }
        Ok(())
    };
    sched.check(
        &[
            ("log-contiguity", &contiguity),
            ("replica-byte-identity", &replica_identity),
            ("committed-reads-stable", &committed_stable),
            ("mirror-byte-identity", &mirror_identity),
        ],
        "cargo test --test chaos kafka",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_kafka_replication_and_mirror() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_kafka_replication_and_mirror(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 3b: Kafka ack-mode durability under leader crashes.
// ---------------------------------------------------------------------

const ACK_PARTITIONS: u32 = 2;

/// Crash hooks that snapshot, at the instant a *leader* broker dies, the
/// partition's high watermark and the current op index — exactly the
/// data needed to bound Leader-ack loss to the unshipped tail. The
/// snapshot is taken before `fail_broker` runs the election, so it
/// reflects what the dying leader had actually committed.
struct AckCrashHooks<'a> {
    rc: &'a ReplicatedCluster,
    op: &'a AtomicU64,
    /// (partition, op index at crash, high watermark at crash).
    crashes: Mutex<Vec<(u32, u64, u64)>>,
}

impl li_commons::chaos::FaultHooks for AckCrashHooks<'_> {
    fn crash(&self, node: NodeId) {
        for p in 0..ACK_PARTITIONS {
            if self.rc.leader_of("events", p) == Ok(node.0) {
                if let Ok(hw) = self.rc.high_watermark("events", p) {
                    self.crashes
                        .lock()
                        .push((p, self.op.load(Ordering::SeqCst), hw));
                }
            }
        }
        let _ = self.rc.fail_broker(node.0);
    }

    fn restart(&self, node: NodeId) {
        self.rc.recover_broker(node.0);
    }
}

/// Drives a 3-broker replicated cluster (RF=3, `ShardMode::Deterministic`
/// — the grouped ingest path's chaos twin) through leader fail/recover
/// cycles while producing under all three ack modes via the group-commit
/// queue. Invariants at quiesce:
///
/// * **full-isr-durability** — every `FullIsr`-acked message survives
///   failover byte-identically at its acked offset.
/// * **leader-ack-loss-bounded** — a `Leader`-acked message may only be
///   lost (or overwritten by a divergent successor) if some leader crash
///   *after* its ack caught it above that crash's high watermark — the
///   unshipped tail. Nothing below any crash's watermark may vanish.
/// * replica byte-identity and CRC-walk contiguity, as everywhere else.
fn run_kafka_ack_durability(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 1;
    let mut sched = ChaosScheduler::new(seed, nodes, config);
    let live = KafkaCluster::with_shard_mode(
        3,
        LogConfig::default(),
        Arc::new(SimClock::new()),
        &MetricsRegistry::new(),
        ShardMode::Deterministic,
    )
    .unwrap();
    let replicated = ReplicatedCluster::new(live.clone());
    replicated.create_topic("events", ACK_PARTITIONS, 3).unwrap();
    let op = AtomicU64::new(0);
    let hooks = AckCrashHooks {
        rc: &replicated,
        op: &op,
        crashes: Mutex::new(Vec::new()),
    };

    // (partition, acked offset, payload, op index of the ack).
    let mut full_isr_acked: Vec<(u32, u64, Bytes, u64)> = Vec::new();
    let mut leader_acked: Vec<(u32, u64, Bytes, u64)> = Vec::new();
    let mut none_sent = 0u64;
    let mut rejected = 0u64;
    let acks = [AckMode::Leader, AckMode::FullIsr, AckMode::None];
    for i in 0..150u64 {
        op.store(i, Ordering::SeqCst);
        sched.step(&hooks);
        let partition = (i % u64::from(ACK_PARTITIONS)) as u32;
        let payload = Bytes::from(format!("m{i}"));
        let set = MessageSet::from_payloads([payload.clone()]);
        let ack = acks[(i % 3) as usize];
        match replicated.produce_with_ack("events", partition, &set, ack) {
            Ok(receipt) => match ack {
                AckMode::FullIsr => {
                    full_isr_acked.push((partition, receipt.base_offset.unwrap(), payload, i));
                }
                AckMode::Leader => {
                    leader_acked.push((partition, receipt.base_offset.unwrap(), payload, i));
                }
                AckMode::None => none_sent += 1,
            },
            Err(_) => rejected += 1,
        }
        if i % 5 == 0 {
            let _ = replicated.replicate();
        }
        if i % 30 == 0 {
            sched.note(format!(
                "op {i}: full_isr={} leader={} none={} rejected={}",
                full_isr_acked.len(),
                leader_acked.len(),
                none_sent,
                rejected
            ));
        }
    }

    sched.quiesce(&hooks);
    replicated.flush_ingest();
    for _ in 0..10 {
        if replicated.replicate().unwrap() == 0 {
            break;
        }
    }
    let crashes = hooks.crashes.into_inner();
    sched.note(format!(
        "drained: full_isr={} leader={} crashes={crashes:?}",
        full_isr_acked.len(),
        leader_acked.len()
    ));

    // Committed state per partition after full recovery.
    let committed: Vec<Vec<(u64, Bytes)>> = (0..ACK_PARTITIONS)
        .map(|p| {
            let (messages, _) = replicated.fetch_committed("events", p, 0, usize::MAX).unwrap();
            messages.into_iter().map(|(o, m)| (o, m.payload)).collect()
        })
        .collect();

    let full_isr_durability = || -> Result<(), String> {
        for (p, offset, payload, op_i) in &full_isr_acked {
            match committed[*p as usize].iter().find(|(o, _)| o == offset) {
                Some((_, got)) if got == payload => {}
                Some(_) => {
                    return Err(format!(
                        "events/{p} offset {offset} (op {op_i}): FullIsr-acked bytes changed"
                    ))
                }
                None => {
                    return Err(format!(
                        "events/{p} offset {offset} (op {op_i}): FullIsr-acked message lost"
                    ))
                }
            }
        }
        Ok(())
    };
    let leader_loss_bounded = || -> Result<(), String> {
        for (p, offset, payload, op_i) in &leader_acked {
            let survived = matches!(
                committed[*p as usize].iter().find(|(o, _)| o == offset),
                Some((_, got)) if got == payload
            );
            if survived {
                continue;
            }
            // Loss is legitimate only above the watermark of a leader
            // crash that happened strictly after the ack.
            let excused = crashes
                .iter()
                .any(|(cp, cop, hw)| cp == p && cop > op_i && offset >= hw);
            if !excused {
                return Err(format!(
                    "events/{p} offset {offset} (op {op_i}): Leader-acked message lost \
                     below every subsequent crash watermark (crashes: {crashes:?})"
                ));
            }
        }
        Ok(())
    };
    let replica_identity = || -> Result<(), String> {
        for p in 0..ACK_PARTITIONS {
            replicated.verify_replica_identity("events", p)?;
        }
        Ok(())
    };
    let contiguity = || -> Result<(), String> {
        for broker in 0..3usize {
            for p in 0..ACK_PARTITIONS {
                live.brokers()[broker]
                    .log("events", p)
                    .map_err(|e| format!("broker {broker} events/{p}: {e}"))?
                    .verify_contiguity()
                    .map_err(|e| format!("broker {broker} events/{p}: {e}"))?;
            }
        }
        Ok(())
    };
    sched.check(
        &[
            ("full-isr-durability", &full_isr_durability),
            ("leader-ack-loss-bounded", &leader_loss_bounded),
            ("replica-byte-identity", &replica_identity),
            ("log-contiguity", &contiguity),
        ],
        "cargo test --test chaos kafka_ack",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_kafka_ack_durability() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_kafka_ack_durability(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 4: sqlstore binlog replication equivalence.
// ---------------------------------------------------------------------

/// A primary database with two binlog-pulling replicas. Crashed
/// replicas stop applying; on restart they resume from their applied
/// SCN. Invariants at quiesce: both replicas converge to the primary's
/// exact state fingerprint, and recovering a fresh database from the
/// primary's binlog bytes reproduces that same state (replay
/// equivalence).
fn run_sqlstore_replication(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 2;
    let mut sched = ChaosScheduler::new(seed, nodes, config);
    let clock: Arc<dyn li_commons::sim::Clock> = Arc::new(sched.clock());
    let primary = Database::with_clock("member_db", clock);
    primary.create_table("members").unwrap();
    let replicas = [Database::new("replica-1"), Database::new("replica-2")];
    for replica in &replicas {
        replica.create_table("members").unwrap();
    }

    let hooks = NetworkOnlyHooks;
    for i in 0..200u64 {
        sched.step(&hooks);
        let mut txn = primary.begin();
        txn.put(
            "members",
            RowKey::new([format!("m{}", i % 40)]),
            Bytes::from(format!("profile-{i}")),
            1,
        );
        if i % 3 == 0 {
            txn.put(
                "members",
                RowKey::new([format!("m{}", (i + 1) % 40)]),
                Bytes::from(format!("side-effect-{i}")),
                1,
            );
        }
        if i % 17 == 0 {
            txn.delete("members", RowKey::new([format!("m{}", i % 40)]));
        }
        primary.commit(txn).unwrap();
        // Replica r rides on chaos node r+1 (node 0 is the primary);
        // while "crashed" it stops pulling the binlog.
        for (r, replica) in replicas.iter().enumerate() {
            let node = NodeId((r + 1) as u16);
            if sched.crashed_nodes().contains(&node) {
                continue;
            }
            for entry in primary.binlog_after(replica.applied_scn()) {
                replica.apply_replicated(&entry).unwrap();
            }
        }
        if i % 40 == 0 {
            sched.note(format!(
                "op {i}: primary_scn={} replica_scns=[{}, {}]",
                primary.last_scn(),
                replicas[0].applied_scn(),
                replicas[1].applied_scn()
            ));
        }
    }

    sched.quiesce(&hooks);
    for replica in &replicas {
        for entry in primary.binlog_after(replica.applied_scn()) {
            replica.apply_replicated(&entry).unwrap();
        }
    }
    sched.note(format!(
        "drained: primary_scn={} fingerprint={:#x}",
        primary.last_scn(),
        primary.state_fingerprint()
    ));

    let replicas_converge = || -> Result<(), String> {
        let want = primary.state_fingerprint();
        for (r, replica) in replicas.iter().enumerate() {
            let got = replica.state_fingerprint();
            if got != want {
                return Err(format!(
                    "replica {r} state {got:#x} != primary {want:#x} \
                     (applied_scn {} vs last_scn {})",
                    replica.applied_scn(),
                    primary.last_scn()
                ));
            }
        }
        Ok(())
    };
    let replay_equivalence = || primary.verify_replay_equivalence();
    let recover_matches = || -> Result<(), String> {
        let recovered = Database::recover("member_db", &primary.binlog_bytes());
        if recovered.state_fingerprint() != primary.state_fingerprint() {
            return Err("recovered-from-binlog state diverges from primary".to_string());
        }
        Ok(())
    };
    sched.check(
        &[
            ("replicas-converge", &replicas_converge),
            ("binlog-replay-equivalence", &replay_equivalence),
            ("recover-matches-primary", &recover_matches),
        ],
        "cargo test --test chaos sqlstore",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_sqlstore_replication() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_sqlstore_replication(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 5: the site closed loop under cross-system node crashes.
// ---------------------------------------------------------------------

/// Forwards each chaos node's faults to *two* systems at once: chaos
/// node `i` is both Voldemort cache node `i` and Kafka broker `i`, so a
/// single crash takes out one node of each tier simultaneously — the
/// correlated-failure shape of a real host loss.
struct SiteHooks {
    voldemort: Arc<VoldemortCluster>,
    kafka: Arc<ReplicatedCluster>,
}

impl FaultHooks for SiteHooks {
    fn crash(&self, node: NodeId) {
        self.voldemort.crash(node);
        self.kafka.crash(node);
    }

    fn restart(&self, node: NodeId) {
        self.voldemort.restart(node);
        self.kafka.restart(node);
    }

    fn pause(&self, node: NodeId) {
        self.crash(node);
    }

    fn resume(&self, node: NodeId) {
        self.restart(node);
    }
}

/// A small seeded site population (`li_workload::site`) drives the
/// cross-system pipeline — follow writes through the primary → Databus →
/// the Voldemort Company Follow caches, cache reads against those
/// stores, and activity events into a replicated Kafka topic — while the
/// seeded scheduler crashes one Voldemort-node/Kafka-broker pair at a
/// time mid-load. The SLO conservation gates of the site benchmark must
/// hold after heal:
///
/// * **follow-conservation** — every member's (and company's) cached
///   list equals the primary-derived set exactly: each follow exactly
///   once, none lost, none duplicated, despite Databus redelivery and
///   hinted handoff;
/// * **databus-lag-drained** — relay and consumer checkpoint both reach
///   the primary's last SCN;
/// * **kafka-committed-exactly-once** — committed reads were never
///   rolled back or altered, every acked payload appears at most once
///   (at its acked offset), replicas are byte-identical, and consumer
///   lag drains to zero.
fn run_site_closed_loop(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 1;
    let mut sched = ChaosScheduler::new(seed, nodes.clone(), config);
    let clock = sched.clock();

    // Primary + Databus → Voldemort follow caches, on the scheduler's
    // network and clock (Voldemort's failure surface is the network).
    let primary = Database::with_clock("primary", Arc::new(clock.clone()));
    primary.create_table("member_follows").unwrap();
    primary.create_table("company_followers").unwrap();
    let relay = Arc::new(Relay::new("primary", 32 << 20));
    LogShippingAdapter::attach_with_backlog(&primary, relay.clone(), 0).unwrap();
    let ring = HashRing::balanced(16, &nodes).unwrap();
    let voldemort =
        VoldemortCluster::with_parts(ring, sched.network(), Arc::new(clock.clone())).unwrap();
    for store in ["member-follows", "company-followers"] {
        voldemort
            .add_store(StoreDef::read_write(store).with_quorum(3, 2, 2))
            .unwrap();
    }
    let cacher = DatabusClient::new(
        relay.clone(),
        None,
        Arc::new(CompanyFollowCacher::new(
            voldemort.client("member-follows").unwrap(),
            voldemort.client("company-followers").unwrap(),
        )),
    );

    // Activity tier: 3 brokers, RF=3 — any single broker loss leaves a
    // quorum of replicas for every partition.
    let kafka = KafkaCluster::new(3).unwrap();
    let replicated = Arc::new(ReplicatedCluster::new(kafka.clone()));
    const ACTIVITY_PARTITIONS: u32 = 2;
    replicated
        .create_topic("activity", ACTIVITY_PARTITIONS, 3)
        .unwrap();

    let hooks = SiteHooks {
        voldemort: voldemort.clone(),
        kafka: replicated.clone(),
    };

    // Seed the population: graph-shaped follow rows in the primary,
    // shipped to the caches through Databus before load starts. The
    // expected sets track the primary-derived truth from here on.
    let graph = SiteGraph::generate(&SiteGraphConfig::smoke(120, seed));
    let join = |ids: &BTreeSet<u64>| {
        ids.iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
            .into_bytes()
    };
    let mut follows: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut followers: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for member in 0..graph.member_count() {
        let set: BTreeSet<u64> = graph.follows_of(member).iter().copied().collect();
        for &company in &set {
            followers.entry(company).or_default().insert(member);
        }
        if !set.is_empty() {
            follows.insert(member, set);
        }
    }
    let mut txn = primary.begin();
    for (member, set) in &follows {
        txn.put("member_follows", member_row_key(*member), join(set), 1);
    }
    for (company, set) in &followers {
        txn.put("company_followers", company_row_key(*company), join(set), 1);
    }
    primary.commit(txn).unwrap();
    cacher.catch_up().unwrap();

    // A follow against the primary: the same two-row read-modify-write
    // the platform performs (single-threaded here, so no row lock).
    let apply_follow = |member: u64, company: u64| {
        let member_key = member_row_key(member);
        let company_key = company_row_key(company);
        let mut followed = primary
            .get("member_follows", &member_key)
            .unwrap()
            .map(|row| parse_id_list(&row.value))
            .unwrap_or_default();
        let mut follower_list = primary
            .get("company_followers", &company_key)
            .unwrap()
            .map(|row| parse_id_list(&row.value))
            .unwrap_or_default();
        if !followed.contains(&company) {
            followed.push(company);
        }
        if !follower_list.contains(&member) {
            follower_list.push(member);
        }
        let encode = |ids: &[u64]| {
            ids.iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
                .into_bytes()
        };
        let mut txn = primary.begin();
        txn.put("member_follows", member_key, encode(&followed), 1);
        txn.put("company_followers", company_key, encode(&follower_list), 1);
        primary.commit(txn).unwrap();
    };

    // Closed-loop drive: the seeded per-driver op stream, reads mapped
    // to the Voldemort cache (the §II.C read path), follows to the
    // primary, activity to Kafka. Databus and replication pump
    // periodically, exactly as the site pumps between requests.
    let workload = SiteWorkload::new(
        graph.member_count(),
        graph.company_count(),
        SiteMix {
            profile_reads: 0.15,
            pymk_reads: 0.15,
            follow_writes: 0.40,
            activity_events: 0.30,
        },
    );
    let ops = workload.ops_for_driver(seed, 0, 160);
    let member_reader = voldemort.client("member-follows").unwrap();
    // Acked activity: (partition, acked offset, payload). Leader-only
    // acks mean an unreplicated tail can be truncated by a longest-log
    // election — acked payloads must appear *at most* once, and the
    // committed prefix a consumer observed may never change.
    let mut acked_activity: Vec<(u32, u64, Bytes)> = Vec::new();
    let mut consumed: Vec<Vec<(u64, Bytes)>> = vec![Vec::new(); ACTIVITY_PARTITIONS as usize];
    let mut next_offset = [0u64; ACTIVITY_PARTITIONS as usize];
    let mut follows_applied = 0u64;
    let mut produced_ok = 0u64;
    for (i, op) in ops.iter().enumerate() {
        sched.step(&hooks);
        match op {
            SiteOp::ProfileRead(m) | SiteOp::PymkRead(m) => {
                let key = member_row_key(*m).to_string().into_bytes();
                if let Err(e) = member_reader.get(&key) {
                    sched.note(format!("op {i}: cache read failed under faults: {e}"));
                }
            }
            SiteOp::Follow { member, company } => {
                apply_follow(*member, *company);
                follows.entry(*member).or_default().insert(*company);
                followers.entry(*company).or_default().insert(*member);
                follows_applied += 1;
            }
            SiteOp::Activity { member, event } => {
                let partition = (*member % ACTIVITY_PARTITIONS as u64) as u32;
                let payload = Bytes::from(format!("{i}:{member}:{event}"));
                let set = MessageSet::from_payloads([payload.clone()]);
                match replicated.produce("activity", partition, &set) {
                    Ok(offset) => {
                        produced_ok += 1;
                        acked_activity.push((partition, offset, payload));
                    }
                    Err(e) => sched.note(format!("op {i}: activity produce failed: {e}")),
                }
            }
        }
        if i % 6 == 0 {
            // A window can fail mid-apply while a quorum is short; the
            // checkpoint only advances on success, and the cacher's
            // full-value writes make redelivery idempotent.
            if let Err(e) = cacher.catch_up() {
                sched.note(format!("op {i}: databus catch_up deferred: {e}"));
            }
            let _ = replicated.replicate();
            for p in 0..ACTIVITY_PARTITIONS {
                if let Ok((messages, next)) =
                    replicated.fetch_committed("activity", p, next_offset[p as usize], usize::MAX)
                {
                    for (offset, message) in messages {
                        consumed[p as usize].push((offset, message.payload.clone()));
                    }
                    next_offset[p as usize] = next;
                }
            }
        }
        if i % 40 == 0 {
            sched.note(format!(
                "op {i}: follows_applied={follows_applied} produced_ok={produced_ok}"
            ));
        }
    }

    // Heal and drain every pipeline: Databus to the last SCN, hints to
    // their owners, replication to the high watermark.
    sched.quiesce(&hooks);
    // The detector still bans the last-crashed node until probes run on
    // advanced virtual time; interleave catch-up with the probe loop so
    // Databus drains as soon as quorums re-form.
    let mut caught_up = false;
    for _ in 0..40 {
        clock.advance(Duration::from_secs(6));
        voldemort.run_failure_probes();
        if !caught_up {
            caught_up = cacher.catch_up().is_ok();
        }
        voldemort.deliver_hints();
        if caught_up
            && voldemort.pending_hints() == 0
            && voldemort.detector().banned_nodes().is_empty()
        {
            break;
        }
    }
    cacher.catch_up().unwrap();
    for _ in 0..10 {
        if replicated.replicate().unwrap() == 0 {
            break;
        }
    }
    for p in 0..ACTIVITY_PARTITIONS {
        let (messages, next) = replicated
            .fetch_committed("activity", p, next_offset[p as usize], usize::MAX)
            .unwrap();
        for (offset, message) in messages {
            consumed[p as usize].push((offset, message.payload.clone()));
        }
        next_offset[p as usize] = next;
    }
    sched.note(format!(
        "drained: follows_applied={follows_applied} produced_ok={produced_ok} \
         pending_hints={} primary_scn={:?}",
        voldemort.pending_hints(),
        primary.last_scn()
    ));

    let company_reader = voldemort.client("company-followers").unwrap();
    let follow_conservation = || -> Result<(), String> {
        let check = |reader: &li_voldemort::StoreClient,
                     key: &RowKey,
                     expected: &BTreeSet<u64>,
                     what: &str|
         -> Result<(), String> {
            let siblings = reader
                .get(key.to_string().as_bytes())
                .map_err(|e| format!("{what} {key}: read failed: {e}"))?;
            if siblings.len() != 1 {
                return Err(format!(
                    "{what} {key}: {} versions after heal (want exactly one)",
                    siblings.len()
                ));
            }
            let got = parse_id_list(&siblings[0].value);
            let mut sorted = got.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != got.len() {
                return Err(format!("{what} {key}: duplicated id in cached list {got:?}"));
            }
            let want: Vec<u64> = expected.iter().copied().collect();
            if sorted != want {
                return Err(format!(
                    "{what} {key}: cached {sorted:?} != primary-derived {want:?}"
                ));
            }
            Ok(())
        };
        for (member, expected) in &follows {
            check(&member_reader, &member_row_key(*member), expected, "member")?;
        }
        for (company, expected) in &followers {
            check(&company_reader, &company_row_key(*company), expected, "company")?;
        }
        Ok(())
    };
    let databus_drained = || -> Result<(), String> {
        let primary_scn = primary.last_scn();
        if relay.newest_scn() != primary_scn {
            return Err(format!(
                "relay at {:?}, primary at {primary_scn:?}",
                relay.newest_scn()
            ));
        }
        if cacher.checkpoint() != primary_scn {
            return Err(format!(
                "consumer checkpoint {:?} behind primary {primary_scn:?}",
                cacher.checkpoint()
            ));
        }
        Ok(())
    };
    let kafka_committed_exactly_once = || -> Result<(), String> {
        for p in 0..ACTIVITY_PARTITIONS {
            replicated.verify_replica_identity("activity", p)?;
            let (all, end) = replicated
                .fetch_committed("activity", p, 0, usize::MAX)
                .map_err(|e| format!("refetch activity/{p}: {e}"))?;
            // Committed reads stable: nothing a consumer saw may change.
            for (offset, payload) in &consumed[p as usize] {
                match all.iter().find(|(o, _)| o == offset) {
                    Some((_, message)) if message.payload == *payload => {}
                    Some(_) => {
                        return Err(format!(
                            "activity/{p} offset {offset}: committed read changed bytes"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "activity/{p} offset {offset}: committed read rolled back"
                        ))
                    }
                }
            }
            // Acked payloads: at most once, and only at the acked offset.
            for (partition, offset, payload) in &acked_activity {
                if *partition != p {
                    continue;
                }
                let hits: Vec<u64> = all
                    .iter()
                    .filter(|(_, m)| m.payload == *payload)
                    .map(|(o, _)| *o)
                    .collect();
                if hits.len() > 1 {
                    return Err(format!(
                        "activity/{p}: acked payload duplicated at offsets {hits:?}"
                    ));
                }
                if let Some(&at) = hits.first() {
                    if at != *offset {
                        return Err(format!(
                            "activity/{p}: acked at {offset}, committed at {at}"
                        ));
                    }
                }
            }
            // Lag drained: the consumer reached the high watermark.
            if end != next_offset[p as usize] {
                return Err(format!(
                    "activity/{p}: consumer at {}, high watermark at {end}",
                    next_offset[p as usize]
                ));
            }
        }
        Ok(())
    };
    sched.check(
        &[
            ("follow-conservation", &follow_conservation),
            ("databus-lag-drained", &databus_drained),
            ("kafka-committed-exactly-once", &kafka_committed_exactly_once),
        ],
        "cargo test --test chaos site_closed_loop",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_site_closed_loop() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_site_closed_loop(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 6: online partition migration racing donor/target crashes.
// ---------------------------------------------------------------------

/// Moves one Voldemort partition off its owner through the phased
/// coordinator (snapshot → delta catch-up → dual-write → cutover) while
/// the seeded scheduler crash-loops the two nodes that matter — the
/// donor and the target — and live writes keep flowing the whole time.
/// A crashed endpoint fails the current phase with a retryable driver
/// error (the admin reachability gate), never corrupts it. Invariants
/// at quiesce: the migration completed with exactly one cutover flip
/// and zero refusals, ownership moved, the routing state was torn down,
/// every acked write is still readable, and hints drained.
fn run_migration_vs_donor_crash(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let ring = HashRing::balanced(16, &nodes).unwrap();
    let partition = PartitionId(0);
    let donor = ring.owner_of(partition);
    let to = NodeId((donor.0 + 2) % 5);
    // Fault domain: only the migration's endpoints, so every scheduled
    // crash races the move itself.
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 1;
    let mut sched = ChaosScheduler::new(seed, vec![donor, to], config);
    let clock = sched.clock();
    let cluster =
        VoldemortCluster::with_parts(ring, sched.network(), Arc::new(clock.clone())).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();

    // Preload before faults so the snapshot phase has an image to copy.
    let mut acked: Vec<(String, Bytes, VectorClock)> = Vec::new();
    for i in 0..24u32 {
        let key = format!("k{i}");
        let value = Bytes::from(format!("seed-{i}"));
        let write_clock = client
            .apply_update(key.as_bytes(), 5, &|_| Some(value.clone()))
            .unwrap();
        acked.push((key, value, write_clock));
    }

    let driver = cluster
        .begin_partition_migration(partition, to)
        .unwrap()
        .expect("donor != target");
    // Generous verify budget: divergence while an endpoint crash-loops is
    // lag, not corruption — refusal is reserved for real divergence (see
    // the planted shadow-mismatch test in the voldemort crate).
    let coordinator = MigrationCoordinator::new(
        cluster.metrics(),
        MigrationConfig {
            verify_retries: 10_000,
            ..MigrationConfig::default()
        },
    );
    sched.note(format!(
        "migrating p{} from node {} to node {}",
        partition.0, donor.0, to.0
    ));

    let mut phase = coordinator.phase();
    for i in 0..120u32 {
        sched.step(&*cluster);
        let key = format!("k{}", i % 24);
        let value = Bytes::from(format!("v{i}"));
        for _attempt in 0..8 {
            match client.apply_update(key.as_bytes(), 5, &|_| Some(value.clone())) {
                Ok(write_clock) => {
                    acked.push((key.clone(), value.clone(), write_clock));
                    break;
                }
                Err(_) => {
                    clock.advance(Duration::from_secs(6));
                    cluster.run_failure_probes();
                    sched.step(&*cluster);
                }
            }
        }
        if coordinator.phase() != MigrationPhase::Done {
            match coordinator.step(&driver) {
                Ok(next) if next != phase => {
                    phase = next;
                    sched.note(format!("op {i}: migration phase -> {next}"));
                }
                Ok(_) => {}
                // A crashed endpoint fails the phase; retried next op.
                Err(_) => {}
            }
        }
        if i % 30 == 0 {
            sched.note(format!("op {i}: acked_total={} phase={phase}", acked.len()));
        }
    }

    sched.quiesce(&*cluster);
    for _ in 0..40 {
        clock.advance(Duration::from_secs(6));
        cluster.run_failure_probes();
        cluster.deliver_hints();
        if cluster.pending_hints() == 0 && cluster.detector().banned_nodes().is_empty() {
            break;
        }
    }
    if coordinator.phase() != MigrationPhase::Done {
        if let Err(e) = coordinator.run(&driver, 10_000) {
            sched.note(format!("migration did not complete after heal: {e}"));
        }
    }
    // The flip repoints hint delivery at the new owners; drain once more.
    for _ in 0..40 {
        clock.advance(Duration::from_secs(6));
        cluster.run_failure_probes();
        cluster.deliver_hints();
        if cluster.pending_hints() == 0 {
            break;
        }
    }
    sched.note(format!(
        "drained: acked={} phase={} owner=node{}",
        acked.len(),
        coordinator.phase(),
        cluster.ring().owner_of(partition).0
    ));

    let durability = || -> Result<(), String> {
        for (key, value, write_clock) in &acked {
            let siblings = client
                .get(key.as_bytes())
                .map_err(|e| format!("read of acked `{key}` failed: {e}"))?;
            if siblings.is_empty() {
                return Err(format!("acked key `{key}` unreadable (write lost)"));
            }
            if !siblings.iter().any(|v| v.clock.descends_from(write_clock)) {
                return Err(format!(
                    "acked write to `{key}` not covered by any surviving version"
                ));
            }
            if let Some(v) = siblings.iter().find(|v| v.clock == *write_clock) {
                if v.value != *value {
                    return Err(format!("acked key `{key}` returned wrong bytes"));
                }
            }
        }
        Ok(())
    };
    let migration_complete = || -> Result<(), String> {
        if coordinator.phase() != MigrationPhase::Done {
            return Err(format!("migration stuck in phase {}", coordinator.phase()));
        }
        let owner = cluster.ring().owner_of(partition);
        if owner != to {
            return Err(format!(
                "partition owned by node {} after flip, want node {}",
                owner.0, to.0
            ));
        }
        if cluster.migration_in_flight().is_some() {
            return Err("migration routing state not torn down after cutover".into());
        }
        let snapshot = cluster.metrics().snapshot();
        if snapshot.counter("migration.cutover_flips") != Some(1) {
            return Err(format!(
                "cutover flips {:?}, want exactly 1",
                snapshot.counter("migration.cutover_flips")
            ));
        }
        if snapshot.counter("migration.cutover_refusals") != Some(0) {
            return Err(format!(
                "{:?} cutover refusals under crash faults (lag misread as corruption)",
                snapshot.counter("migration.cutover_refusals")
            ));
        }
        Ok(())
    };
    let hints_drained = || -> Result<(), String> {
        match cluster.pending_hints() {
            0 => Ok(()),
            n => Err(format!("{n} hints still pending after recovery")),
        }
    };
    sched.check(
        &[
            ("quorum-durability", &durability),
            ("migration-completes-once", &migration_complete),
            ("hints-drained", &hints_drained),
        ],
        "cargo test --test chaos migration_vs_donor_crash",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_migration_vs_donor_crash() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_migration_vs_donor_crash(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 7: cutover racing network partitions.
// ---------------------------------------------------------------------

/// Runs the same phased Voldemort migration under a network-only fault
/// menu — symmetric group partitions and asymmetric link blocks — with
/// the migration admin's virtual node enrolled in the fault domain. A
/// partition that isolates the admin from either endpoint stalls the
/// current phase (retryable), while client traffic — which rides
/// client→replica links outside every partition group — keeps landing
/// acked writes that the journal and dual-write must carry across the
/// flip. Invariants: the flip happened exactly once (one topology-epoch
/// bump, one `cutover_flips`), no refusals, every acked write survives,
/// and the target holds every acked key it now owns.
fn run_cutover_vs_network_partition(seed: u64) -> Result<String, ChaosFailure> {
    let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
    let ring = HashRing::balanced(16, &nodes).unwrap();
    let partition = PartitionId(3);
    let donor = ring.owner_of(partition);
    let to = NodeId((donor.0 + 1) % 5);
    let config = ChaosConfig {
        crashes: false,
        pauses: false,
        partitions: true,
        asym_links: true,
        drops: false,
        slow_links: false,
        clock_skew: false,
        ..ChaosConfig::default()
    };
    let mut domain = nodes.clone();
    domain.push(li_voldemort::migrate::ADMIN_NODE);
    let mut sched = ChaosScheduler::new(seed, domain, config);
    let clock = sched.clock();
    let cluster =
        VoldemortCluster::with_parts(ring, sched.network(), Arc::new(clock.clone())).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();

    let mut acked: Vec<(String, Bytes, VectorClock)> = Vec::new();
    for i in 0..24u32 {
        let key = format!("k{i}");
        let value = Bytes::from(format!("seed-{i}"));
        let write_clock = client
            .apply_update(key.as_bytes(), 5, &|_| Some(value.clone()))
            .unwrap();
        acked.push((key, value, write_clock));
    }

    let driver = cluster
        .begin_partition_migration(partition, to)
        .unwrap()
        .expect("donor != target");
    let epoch_before = cluster.topology_epoch();
    let coordinator = MigrationCoordinator::new(
        cluster.metrics(),
        MigrationConfig {
            verify_retries: 10_000,
            ..MigrationConfig::default()
        },
    );
    sched.note(format!(
        "migrating p{} from node {} to node {}",
        partition.0, donor.0, to.0
    ));

    let mut phase = coordinator.phase();
    for i in 0..120u32 {
        sched.step(&*cluster);
        let key = format!("k{}", i % 24);
        let value = Bytes::from(format!("v{i}"));
        for _attempt in 0..6 {
            match client.apply_update(key.as_bytes(), 5, &|_| Some(value.clone())) {
                Ok(write_clock) => {
                    acked.push((key.clone(), value.clone(), write_clock));
                    break;
                }
                Err(_) => {
                    clock.advance(Duration::from_secs(6));
                    cluster.run_failure_probes();
                    sched.step(&*cluster);
                }
            }
        }
        if coordinator.phase() != MigrationPhase::Done {
            match coordinator.step(&driver) {
                Ok(next) if next != phase => {
                    phase = next;
                    sched.note(format!("op {i}: migration phase -> {next}"));
                }
                Ok(_) => {}
                // The admin is cut off from an endpoint; retried next op.
                Err(_) => {}
            }
        }
        if i % 30 == 0 {
            sched.note(format!("op {i}: acked_total={} phase={phase}", acked.len()));
        }
    }

    sched.quiesce(&*cluster);
    for _ in 0..40 {
        clock.advance(Duration::from_secs(6));
        cluster.run_failure_probes();
        cluster.deliver_hints();
        if cluster.pending_hints() == 0 && cluster.detector().banned_nodes().is_empty() {
            break;
        }
    }
    if coordinator.phase() != MigrationPhase::Done {
        if let Err(e) = coordinator.run(&driver, 10_000) {
            sched.note(format!("migration did not complete after heal: {e}"));
        }
    }
    sched.note(format!(
        "drained: acked={} phase={} epoch {}->{}",
        acked.len(),
        coordinator.phase(),
        epoch_before,
        cluster.topology_epoch()
    ));

    let durability = || -> Result<(), String> {
        for (key, value, write_clock) in &acked {
            let siblings = client
                .get(key.as_bytes())
                .map_err(|e| format!("read of acked `{key}` failed: {e}"))?;
            if siblings.is_empty() {
                return Err(format!("acked key `{key}` unreadable (write lost)"));
            }
            if !siblings.iter().any(|v| v.clock.descends_from(write_clock)) {
                return Err(format!(
                    "acked write to `{key}` not covered by any surviving version"
                ));
            }
            if let Some(v) = siblings.iter().find(|v| v.clock == *write_clock) {
                if v.value != *value {
                    return Err(format!("acked key `{key}` returned wrong bytes"));
                }
            }
        }
        Ok(())
    };
    let atomic_flip = || -> Result<(), String> {
        if coordinator.phase() != MigrationPhase::Done {
            return Err(format!("migration stuck in phase {}", coordinator.phase()));
        }
        if cluster.ring().owner_of(partition) != to {
            return Err("ownership did not move to the target".into());
        }
        let epoch = cluster.topology_epoch();
        if epoch != epoch_before + 1 {
            return Err(format!(
                "topology epoch bumped {} times for one flip",
                epoch - epoch_before
            ));
        }
        let snapshot = cluster.metrics().snapshot();
        if snapshot.counter("migration.cutover_flips") != Some(1) {
            return Err(format!(
                "cutover flips {:?}, want exactly 1",
                snapshot.counter("migration.cutover_flips")
            ));
        }
        if snapshot.counter("migration.cutover_refusals") != Some(0) {
            return Err(format!(
                "{:?} refusals under network partitions (lag misread as corruption)",
                snapshot.counter("migration.cutover_refusals")
            ));
        }
        Ok(())
    };
    // Every acked key the target now serves must actually be on the
    // target — an acked write either made it into the journal before the
    // final drain or mirrored synchronously during dual-write.
    let target_coverage = || -> Result<(), String> {
        let ring = cluster.ring();
        for (key, _, write_clock) in &acked {
            let prefs = ring
                .preference_list(key.as_bytes(), 3)
                .map_err(|e| e.to_string())?;
            if !prefs.contains(&to) {
                continue;
            }
            let held = cluster
                .node(to)
                .map_err(|e| e.to_string())?
                .get("s", key.as_bytes())
                .map_err(|e| format!("target read of `{key}`: {e}"))?;
            if !held.iter().any(|v| v.clock.descends_from(write_clock)) {
                return Err(format!(
                    "target now owns `{key}` but misses the acked write"
                ));
            }
        }
        Ok(())
    };
    sched.check(
        &[
            ("quorum-durability", &durability),
            ("atomic-single-flip", &atomic_flip),
            ("target-holds-moved-keys", &target_coverage),
        ],
        "cargo test --test chaos cutover_vs_partition",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_cutover_vs_network_partition() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_cutover_vs_network_partition(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 8: Espresso resharding racing master failovers.
// ---------------------------------------------------------------------

/// Migrates one Espresso partition (snapshot + relay delta catch-up +
/// Helix retarget flip) while the seeded scheduler crash-loops every
/// node *except* the migration source, so master failovers of other
/// partitions — and their Helix rebalances — race the migration's own
/// rebalance through the shared controller, stored view, and relays.
/// The source is excluded because a slave's applied windows do not
/// re-enter its own binlog: a mid-move mastership flip of the moving
/// partition would orphan the target's delta stream, which is exactly
/// why production reshardings drain through the donor's relay. The flip
/// itself waits for a fault-free moment (no flips during an active
/// incident); every other phase retries through crashes. Invariants:
/// acked documents readable with committed values, at most one master
/// per partition, relay commit order intact, and the migration
/// completed with one flip, zero refusals, and mastership on the
/// target.
fn run_espresso_rebalance_vs_failover(seed: u64) -> Result<String, ChaosFailure> {
    let cluster = EspressoCluster::new(4).unwrap();
    cluster.create_database(tiny_music(6, 2)).unwrap();
    let view = cluster.controller().external_view("Music").unwrap();
    let partition = PartitionId(0);
    let source = view.master_of(partition).expect("fresh db has a master");
    let hosts = view.partitions.get(&partition).cloned().unwrap_or_default();
    let to = (0..4u16)
        .map(NodeId)
        .find(|n| !hosts.contains_key(n))
        .expect("replication 2 on 4 nodes leaves a free node");
    let domain: Vec<NodeId> = (0..4u16).map(NodeId).filter(|n| *n != source).collect();
    let mut config = ChaosConfig::hooks_only();
    config.max_down = 1;
    let mut sched = ChaosScheduler::new(seed, domain, config);

    let driver = cluster
        .begin_partition_migration("Music", partition.0, to)
        .unwrap();
    let coordinator = MigrationCoordinator::new(
        cluster.metrics(),
        MigrationConfig {
            verify_retries: 10_000,
            ..MigrationConfig::default()
        },
    );
    sched.note(format!(
        "migrating Music/p{} from node {} to node {}",
        partition.0, source.0, to.0
    ));

    let album = |year: i64| Record::new().with("year", Value::Long(year));
    let mut acked: Vec<(RowKey, i64)> = Vec::new();
    let mut phase = coordinator.phase();
    for i in 0..120u64 {
        sched.step(&*cluster);
        let key = RowKey::new([format!("artist-{}", i % 7), format!("album-{i}")]);
        let year = 1990 + i as i64;
        match cluster.put("Music", "Album", key.clone(), &album(year)) {
            Ok(_etag) => acked.push((key, year)),
            Err(_) => sched.note(format!("put {i} rejected (no live master)")),
        }
        if i % 5 == 0 {
            let _ = cluster.pump_replication();
        }
        let flip_ready = coordinator.phase() != MigrationPhase::DualWrite
            || sched.crashed_nodes().is_empty();
        if coordinator.phase() != MigrationPhase::Done && flip_ready {
            match coordinator.step(&driver) {
                Ok(next) if next != phase => {
                    phase = next;
                    sched.note(format!("op {i}: migration phase -> {next}"));
                }
                Ok(_) => {}
                Err(_) => {}
            }
        }
        if i % 30 == 0 {
            sched.note(format!("op {i}: acked_total={} phase={phase}", acked.len()));
        }
    }

    sched.quiesce(&*cluster);
    for _ in 0..4 {
        let _ = cluster.pump_replication();
    }
    if coordinator.phase() != MigrationPhase::Done {
        if let Err(e) = coordinator.run(&driver, 10_000) {
            sched.note(format!("migration did not complete after heal: {e}"));
        }
    }
    for _ in 0..4 {
        let _ = cluster.pump_replication();
    }
    sched.note(format!(
        "drained: acked={} phase={}",
        acked.len(),
        coordinator.phase()
    ));

    let readable = || -> Result<(), String> {
        for (key, year) in &acked {
            let got = cluster
                .get("Music", "Album", key)
                .map_err(|e| format!("read of acked {key:?} failed: {e}"))?;
            let Some((record, _row)) = got else {
                return Err(format!("acked document {key:?} lost"));
            };
            if record.get("year") != Some(&Value::Long(*year)) {
                return Err(format!("acked document {key:?} has wrong value"));
            }
        }
        Ok(())
    };
    let single_master = || -> Result<(), String> {
        let view = cluster
            .controller()
            .external_view("Music")
            .map_err(|e| format!("no external view: {e}"))?;
        for p in 0..6 {
            let masters: Vec<NodeId> = view
                .partitions
                .get(&PartitionId(p))
                .map(|states| {
                    states
                        .iter()
                        .filter(|(_, &s)| s == li_helix::ReplicaState::Master)
                        .map(|(&n, _)| n)
                        .collect()
                })
                .unwrap_or_default();
            if masters.len() > 1 {
                return Err(format!("partition {p} has multiple masters {masters:?}"));
            }
        }
        Ok(())
    };
    let commit_order = || -> Result<(), String> {
        for i in 0..4u16 {
            cluster
                .relay(NodeId(i))
                .map_err(|e| format!("relay {i}: {e}"))?
                .verify_commit_order()
                .map_err(|e| format!("relay {i}: {e}"))?;
        }
        Ok(())
    };
    let migration_complete = || -> Result<(), String> {
        if coordinator.phase() != MigrationPhase::Done {
            return Err(format!("migration stuck in phase {}", coordinator.phase()));
        }
        let view = cluster
            .controller()
            .external_view("Music")
            .map_err(|e| e.to_string())?;
        if view.master_of(partition) != Some(to) {
            return Err(format!(
                "Music/p{} mastered by {:?} after flip, want node {}",
                partition.0,
                view.master_of(partition),
                to.0
            ));
        }
        let snapshot = cluster.metrics().snapshot();
        if snapshot.counter("migration.cutover_flips") != Some(1) {
            return Err(format!(
                "cutover flips {:?}, want exactly 1",
                snapshot.counter("migration.cutover_flips")
            ));
        }
        if snapshot.counter("migration.cutover_refusals") != Some(0) {
            return Err(format!(
                "{:?} refusals while failovers raced the move",
                snapshot.counter("migration.cutover_refusals")
            ));
        }
        Ok(())
    };
    sched.check(
        &[
            ("acked-docs-readable", &readable),
            ("single-master-per-partition", &single_master),
            ("relay-commit-order", &commit_order),
            ("migration-completes-once", &migration_complete),
        ],
        "cargo test --test chaos espresso_rebalance",
    )?;
    Ok(sched.trace_text())
}

#[test]
fn chaos_sweep_espresso_rebalance_vs_failover() {
    for seed in sweep_seeds(5) {
        if let Err(failure) = run_espresso_rebalance_vs_failover(seed) {
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// The determinism contract, asserted.
// ---------------------------------------------------------------------

/// Running the same `(seed, scenario)` twice produces byte-identical
/// event traces — the property every repro line depends on.
#[test]
fn same_seed_yields_byte_identical_traces() {
    for seed in [7u64, 23] {
        let a = run_voldemort_quorum(seed, false).unwrap_or_else(|f| panic!("{f}"));
        let b = run_voldemort_quorum(seed, false).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a, b, "voldemort trace diverged for seed {seed}");
        assert!(!a.is_empty());
    }
    for seed in [7u64, 23] {
        let a = run_voldemort_tail_fanout(seed).unwrap_or_else(|f| panic!("{f}"));
        let b = run_voldemort_tail_fanout(seed).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(a, b, "voldemort tail-fanout trace diverged for seed {seed}");
        assert!(!a.is_empty());
    }
    let a = run_espresso_failover(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_espresso_failover(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "espresso trace diverged");
    let a = run_kafka_replication_and_mirror(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_kafka_replication_and_mirror(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "kafka trace diverged");
    let a = run_kafka_ack_durability(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_kafka_ack_durability(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "kafka ack-durability trace diverged");
    let a = run_sqlstore_replication(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_sqlstore_replication(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "sqlstore trace diverged");
    let a = run_site_closed_loop(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_site_closed_loop(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "site closed-loop trace diverged");
    let a = run_migration_vs_donor_crash(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_migration_vs_donor_crash(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "migration-vs-donor-crash trace diverged");
    let a = run_cutover_vs_network_partition(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_cutover_vs_network_partition(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "cutover-vs-partition trace diverged");
    let a = run_espresso_rebalance_vs_failover(11).unwrap_or_else(|f| panic!("{f}"));
    let b = run_espresso_rebalance_vs_failover(11).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a, b, "espresso-rebalance trace diverged");
}

/// A deliberately planted invariant violation is caught, reported with
/// a `CHAOS_SEED=` repro line, and reproduces exactly when the seed is
/// parsed back out of that line and re-run.
#[test]
fn planted_violation_is_caught_and_reproduces_from_printed_seed() {
    let failure = run_voldemort_quorum(4242, true)
        .expect_err("planted durability violation must be caught");
    let message = failure.to_string();
    assert!(
        message.contains("invariant `quorum-durability` violated"),
        "unexpected report:\n{message}"
    );
    assert!(
        message.contains("CHAOS_SEED=4242 cargo test --test chaos voldemort"),
        "missing repro line:\n{message}"
    );
    assert!(message.contains("PLANT: deleted acked key"), "trace missing:\n{message}");

    // Act like an engineer reading the failure: parse the seed out of
    // the printed repro line and re-run. The violation must reproduce
    // with the identical trace.
    let seed: u64 = message
        .split("CHAOS_SEED=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("repro line carries a parseable seed");
    let again = run_voldemort_quorum(seed, true).expect_err("repro run must fail identically");
    assert_eq!(failure.violations, again.violations);
    assert_eq!(failure.trace, again.trace);
}
