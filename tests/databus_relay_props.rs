//! Property tests for the zero-copy Databus relay serving path (ISSUE 5):
//! shared-view serving must be indistinguishable, event for event, from
//! the legacy eager clone-then-filter path for any windows/filters/batch
//! sizes; served payloads must alias relay buffer memory (pointer
//! identity, not just equal bytes — §III.C's "hundreds of consumers" scaling
//! claim depends on it); and concurrent pollers racing an ingester must
//! each observe the dense SCN stream with no loss, duplication, or
//! reordering.
//!
//! Case count defaults to 24 and is raised in CI with
//! `RELAY_PROPTEST_CASES=64` (the vendored proptest has no env support of
//! its own).

use bytes::Bytes;
use li_databus::{Relay, ServerFilter, Window, WindowView};
use li_sqlstore::{Op, Row, RowChange, RowKey, Scn};
use proptest::prelude::*;
use std::sync::Arc;

fn relay_cases() -> ProptestConfig {
    let cases = std::env::var("RELAY_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    ProptestConfig::with_cases(cases)
}

const TABLES: [&str; 4] = ["member", "company", "profile", "news"];

/// One random row change: a table from the pool, a key that doubles as the
/// partition resource, and a put (with random payload) or delete.
fn change_strategy() -> impl Strategy<Value = RowChange> {
    (
        0usize..TABLES.len(),
        0u32..16,
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..48).prop_map(Some),
            Just(None)
        ],
    )
        .prop_map(|(table, key, payload)| RowChange {
            table: TABLES[table].into(),
            key: RowKey::single(format!("k{key}")),
            op: match payload {
                Some(bytes) => Op::Put(Row::new(Bytes::from(bytes), 1)),
                None => Op::Delete,
            },
        })
}

/// A dense run of windows starting at a random SCN.
fn windows_strategy() -> impl Strategy<Value = Vec<Window>> {
    (1u64..40, proptest::collection::vec(proptest::collection::vec(change_strategy(), 0..5), 1..30))
        .prop_map(|(start, changes)| {
            changes
                .into_iter()
                .enumerate()
                .map(|(i, changes)| Window {
                    source_db: "primary".into(),
                    scn: start + i as Scn,
                    timestamp: start + i as Scn,
                    changes,
                })
                .collect()
        })
}

/// A random server filter: pass-all, table subset (possibly including a
/// table nothing uses), or partition selection.
fn filter_strategy() -> impl Strategy<Value = ServerFilter> {
    prop_oneof![
        Just(ServerFilter::all()),
        proptest::collection::vec(0usize..TABLES.len() + 1, 1..3).prop_map(|idx| {
            ServerFilter::for_tables(
                idx.into_iter()
                    .map(|i| if i < TABLES.len() { TABLES[i].to_string() } else { "ghost".into() }),
            )
        }),
        (1u32..6).prop_flat_map(|n| (Just(n), 0..n)).prop_map(|(n, id)| {
            ServerFilter::for_partition(n, id)
        }),
    ]
}

/// The legacy serving semantics, computed directly from the source windows:
/// every window after `after_scn` (up to `max_windows`), eagerly cloned and
/// filtered.
fn legacy_serve(
    windows: &[Window],
    after_scn: Scn,
    max_windows: usize,
    filter: &ServerFilter,
) -> Vec<Window> {
    windows
        .iter()
        .filter(|w| w.scn > after_scn)
        .take(max_windows)
        .map(|w| filter.apply(w))
        .collect()
}

proptest! {
    #![proptest_config(relay_cases())]

    /// Zero-copy filtered serving ≡ legacy eager clone-then-filter, for
    /// random windows, filters, ingest batch splits, poll positions, and
    /// poll sizes.
    #[test]
    fn prop_shared_serving_equals_eager_filtering(
        windows in windows_strategy(),
        filter in filter_strategy(),
        batch_split in proptest::collection::vec(1usize..8, 1..12),
        start in any::<proptest::sample::Index>(),
        max_windows in prop_oneof![Just(usize::MAX), 1usize..10],
    ) {
        let relay = Relay::new("primary", 1 << 24);
        // Ingest through random batch sizes (exercising both the single
        // and the batched path — a batch of 1 is `ingest`'s shape).
        let mut remaining = windows.as_slice();
        let mut splits = batch_split.iter().cycle();
        while !remaining.is_empty() {
            let take = (*splits.next().unwrap()).min(remaining.len());
            let (batch, rest) = remaining.split_at(take);
            if take == 1 {
                relay.ingest(batch[0].clone()).unwrap();
            } else {
                relay.ingest_batch(batch.to_vec()).unwrap();
            }
            remaining = rest;
        }

        // Poll positions from "everything" to "past the end".
        let oldest = windows[0].scn;
        let positions: Vec<Scn> =
            (oldest - 1..=windows.last().unwrap().scn + 1).collect();
        let after_scn = positions[start.index(positions.len())];

        let got: Vec<Window> = relay
            .events_after_shared(after_scn, max_windows, &filter)
            .unwrap()
            .into_iter()
            .map(WindowView::into_window)
            .collect();
        let want = legacy_serve(&windows, after_scn, max_windows, &filter);
        prop_assert_eq!(got, want);

        // The legacy adapter agrees too (it routes through the same path).
        let eager = relay.events_after(after_scn, max_windows, &filter).unwrap();
        let want = legacy_serve(&windows, after_scn, max_windows, &filter);
        prop_assert_eq!(eager, want);
    }

    /// Same equivalence under eviction pressure: a byte-constrained relay
    /// must still serve exactly the legacy result over whatever suffix it
    /// retained, and reject positions that fell off the tail.
    #[test]
    fn prop_eviction_preserves_serving_semantics(
        windows in windows_strategy(),
        filter in filter_strategy(),
        max_bytes in 256usize..4096,
    ) {
        let relay = Relay::new("primary", max_bytes);
        for w in &windows {
            relay.ingest(w.clone()).unwrap();
        }
        let oldest = relay.oldest_scn();
        let newest = relay.newest_scn();
        prop_assert_eq!(newest, windows.last().unwrap().scn, "newest never evicted");

        // Every valid position serves the legacy result over the suffix.
        for after_scn in oldest - 1..=newest {
            let got: Vec<Window> = relay
                .events_after_shared(after_scn, usize::MAX, &filter)
                .unwrap()
                .into_iter()
                .map(WindowView::into_window)
                .collect();
            let want = legacy_serve(&windows, after_scn, usize::MAX, &filter);
            prop_assert_eq!(got, want);
        }
        // A position strictly before the retained tail must error.
        if oldest > windows[0].scn {
            prop_assert!(relay
                .events_after_shared(oldest.saturating_sub(2), usize::MAX, &filter)
                .is_err());
        }
    }
}

/// The zero-copy proof at the databus tier: payloads served to a consumer
/// must hold a refcount on — and point into — the very allocation that was
/// ingested into the relay buffer. Mirrors
/// `kafka_log_props::fetched_payloads_point_into_broker_segment_storage`.
#[test]
fn served_payloads_alias_relay_buffer_memory() {
    let relay = Relay::new("primary", 1 << 24);
    let mut originals = Vec::new();
    for scn in 1..=32u64 {
        let payload = Bytes::from(format!("payload-{scn:04}-{}", "x".repeat(64)).into_bytes());
        originals.push(payload.clone());
        relay
            .ingest(Window {
                source_db: "primary".into(),
                scn,
                timestamp: scn,
                changes: vec![RowChange {
                    table: "member".into(),
                    key: RowKey::single(format!("k{scn}")),
                    op: Op::Put(Row::new(payload, 1)),
                }],
            })
            .unwrap();
    }

    let views = relay
        .events_after_shared(0, usize::MAX, &ServerFilter::all())
        .unwrap();
    assert_eq!(views.len(), 32);
    for (view, original) in views.iter().zip(&originals) {
        assert!(view.is_shared(), "unfiltered serving is allocation-free");
        let Op::Put(row) = &view.changes[0].op else {
            panic!("expected put");
        };
        assert!(
            row.value.shares_allocation(original),
            "served payload must hold a refcount on the ingested allocation"
        );
        let p = row.value.as_ref().as_ptr() as usize;
        let base = original.as_ref().as_ptr() as usize;
        assert!(
            p >= base && p + row.value.len() <= base + original.len(),
            "served payload bytes must lie inside the ingested allocation"
        );
    }

    // Even a *trimming* filter keeps surviving payloads aliased — only the
    // window scaffolding is rebuilt, never the bytes.
    let filtered = relay
        .events_after_shared(0, usize::MAX, &ServerFilter::for_tables(["member"]))
        .unwrap();
    let Op::Put(row) = &filtered[0].changes[0].op else {
        panic!("expected put");
    };
    assert!(row.value.shares_allocation(&originals[0]));
}

/// Lock-contention smoke test: 8 consumers polling flat out while an
/// ingester appends. Every consumer must observe the dense SCN stream in
/// order with no gaps or duplicates, and the total event count must be
/// conserved end to end.
#[test]
fn concurrent_pollers_observe_dense_ordered_stream() {
    const WINDOWS: u64 = 200;
    const EVENTS_PER_WINDOW: usize = 2;
    const CONSUMERS: usize = 8;

    let relay = Arc::new(Relay::new("primary", 1 << 26));
    let make_window = |scn: u64| Window {
        source_db: "primary".into(),
        scn,
        timestamp: scn,
        changes: (0..EVENTS_PER_WINDOW)
            .map(|i| RowChange {
                table: TABLES[(scn as usize + i) % TABLES.len()].into(),
                key: RowKey::single(format!("k{scn}-{i}")),
                op: Op::Put(Row::new(Bytes::from(vec![b'v'; 32]), 1)),
            })
            .collect(),
    };

    let ingester = {
        let relay = Arc::clone(&relay);
        std::thread::spawn(move || {
            let mut scn = 1u64;
            while scn <= WINDOWS {
                // Mix single ingests and small batches.
                if scn.is_multiple_of(3) && scn + 2 <= WINDOWS {
                    relay
                        .ingest_batch((scn..scn + 3).map(make_window).collect())
                        .unwrap();
                    scn += 3;
                } else {
                    relay.ingest(make_window(scn)).unwrap();
                    scn += 1;
                }
                if scn.is_multiple_of(32) {
                    std::thread::yield_now();
                }
            }
        })
    };

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let relay = Arc::clone(&relay);
            std::thread::spawn(move || {
                let filter = ServerFilter::all();
                let mut checkpoint = 0u64;
                let mut events = 0usize;
                let mut spins = 0u64;
                while checkpoint < WINDOWS {
                    let views = relay.events_after_shared(checkpoint, 7, &filter).unwrap();
                    if views.is_empty() {
                        spins += 1;
                        assert!(spins < 50_000_000, "ingester stalled");
                        std::thread::yield_now();
                        continue;
                    }
                    for view in &views {
                        // Dense, ordered, no duplicates: each window is
                        // exactly the next SCN.
                        assert_eq!(view.scn, checkpoint + 1, "gap or duplicate");
                        assert_eq!(view.changes.len(), EVENTS_PER_WINDOW);
                        events += view.changes.len();
                        checkpoint = view.scn;
                    }
                }
                events
            })
        })
        .collect();

    ingester.join().unwrap();
    for consumer in consumers {
        let events = consumer.join().unwrap();
        assert_eq!(
            events,
            WINDOWS as usize * EVENTS_PER_WINDOW,
            "every consumer sees every event exactly once"
        );
    }
    assert_eq!(relay.newest_scn(), WINDOWS);
    assert_eq!(relay.windows_ingested(), WINDOWS);
}
