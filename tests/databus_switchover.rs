//! Databus bootstrap switchover equivalence (§III.C): a consumer that
//! falls off the relay's buffer, catches up through the bootstrap
//! service, and resumes the live stream must end up with *exactly* the
//! state of a consumer that never disconnected — no lost changes, no
//! duplicates, no SCN regressions across the switchover.

use bytes::Bytes;
use li_databus::bootstrap::BootstrapPipeline;
use li_databus::{ConsumerCallback, DatabusClient, LogShippingAdapter, Relay, Window};
use li_sqlstore::{Database, Op, RowKey, Scn};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A consumer that materializes the change stream into a row map and
/// records every delivered window SCN.
#[derive(Default)]
struct Materializer {
    rows: Mutex<BTreeMap<(String, String), Bytes>>,
    scns: Mutex<Vec<Scn>>,
}

impl Materializer {
    fn rows(&self) -> BTreeMap<(String, String), Bytes> {
        self.rows.lock().clone()
    }

    fn scns(&self) -> Vec<Scn> {
        self.scns.lock().clone()
    }
}

impl ConsumerCallback for Materializer {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        self.scns.lock().push(window.scn);
        let mut rows = self.rows.lock();
        for change in &window.changes {
            let slot = (change.table.clone(), format!("{:?}", change.key));
            match &change.op {
                Op::Put(row) => {
                    rows.insert(slot, row.value.clone());
                }
                Op::Delete => {
                    rows.remove(&slot);
                }
            }
        }
        Ok(())
    }

    fn on_snapshot_start(&self) {
        // "All clients need to re-initialize their state."
        self.rows.lock().clear();
    }
}

struct Rig {
    db: Database,
    relay: Arc<Relay>,
    bootstrap: BootstrapPipeline,
}

/// A primary with semi-sync log shipping into a deliberately tiny relay
/// buffer (so sustained writes evict the tail) and a bootstrap pipeline
/// following that relay.
fn rig() -> Rig {
    let db = Database::new("member_db");
    db.create_table("members").unwrap();
    let relay = Arc::new(Relay::new("member_db", 2_000));
    LogShippingAdapter::attach(&db, relay.clone());
    let bootstrap = BootstrapPipeline::new(relay.clone());
    Rig { db, relay, bootstrap }
}

fn commit(db: &Database, i: u64) {
    let mut txn = db.begin();
    txn.put(
        "members",
        RowKey::new([format!("m{}", i % 25)]),
        Bytes::from(format!("profile-{i}")),
        1,
    );
    if i.is_multiple_of(11) {
        txn.delete("members", RowKey::new([format!("m{}", (i + 3) % 25)]));
    }
    db.commit(txn).unwrap();
}

#[test]
fn lagging_consumer_switchover_matches_always_connected_consumer() {
    let rig = rig();
    let reference = Arc::new(Materializer::default());
    let reference_client = DatabusClient::new(
        rig.relay.clone(),
        Some(rig.bootstrap.server.clone()),
        reference.clone(),
    );
    let lagging = Arc::new(Materializer::default());
    let lagging_client = DatabusClient::new(
        rig.relay.clone(),
        Some(rig.bootstrap.server.clone()),
        lagging.clone(),
    );

    // Phase 1: both consumers live and keeping up.
    for i in 0..30u64 {
        commit(&rig.db, i);
        rig.bootstrap.pump().unwrap();
        reference_client.catch_up().unwrap();
        lagging_client.catch_up().unwrap();
    }
    let switchover_checkpoint = lagging_client.checkpoint();

    // Phase 2: the lagging consumer disconnects; writes continue until
    // its checkpoint is evicted from the relay's circular buffer.
    for i in 30..230u64 {
        commit(&rig.db, i);
        rig.bootstrap.pump().unwrap();
        reference_client.catch_up().unwrap();
    }
    assert!(
        rig.relay.oldest_scn() > switchover_checkpoint,
        "precondition: the lagging consumer's checkpoint ({switchover_checkpoint}) must be \
         evicted (relay oldest {})",
        rig.relay.oldest_scn()
    );

    // Phase 3: it reconnects — the client library must switch to the
    // bootstrap service (consolidated delta) and then resume live.
    lagging_client.catch_up().unwrap();
    let stats = lagging_client.stats();
    assert_eq!(stats.deltas, 1, "exactly one consolidated-delta catch-up");
    assert_eq!(stats.snapshots, 0, "an existing consumer never re-snapshots");

    // Equivalence: byte-identical materialized state.
    assert_eq!(lagging.rows(), reference.rows());
    assert_eq!(lagging_client.checkpoint(), reference_client.checkpoint());
    assert_eq!(reference_client.stats().windows_from_bootstrap, 0);

    // No duplicates or regressions: delivered SCNs strictly increase,
    // and the only non-dense jump is the one switchover delta window.
    let scns = lagging.scns();
    assert!(scns.windows(2).all(|w| w[0] < w[1]), "SCNs must strictly increase: {scns:?}");
    let jumps = scns.windows(2).filter(|w| w[1] - w[0] > 1).count();
    assert!(jumps <= 1, "only the switchover may jump SCNs: {scns:?}");

    // And the materialized state matches the primary row-for-row.
    for i in 0..25u64 {
        let key = RowKey::new([format!("m{i}")]);
        let in_db = rig.db.get("members", &key).unwrap().map(|row| row.value);
        let in_consumer = lagging
            .rows()
            .get(&("members".to_string(), format!("{key:?}")))
            .cloned();
        assert_eq!(in_db, in_consumer, "row m{i} diverges from primary");
    }
}

#[test]
fn fresh_consumer_bootstraps_via_snapshot_then_goes_live() {
    let rig = rig();
    let reference = Arc::new(Materializer::default());
    let reference_client = DatabusClient::new(
        rig.relay.clone(),
        Some(rig.bootstrap.server.clone()),
        reference.clone(),
    );

    // Long-running stream: the relay has long evicted SCN 1 by the end.
    for i in 0..150u64 {
        commit(&rig.db, i);
        rig.bootstrap.pump().unwrap();
        reference_client.catch_up().unwrap();
    }
    assert!(rig.relay.oldest_scn() > 1, "history must be evicted");

    // A brand-new consumer (checkpoint 0) arrives: snapshot at U, then
    // live off the relay.
    let fresh = Arc::new(Materializer::default());
    let fresh_client = DatabusClient::new(
        rig.relay.clone(),
        Some(rig.bootstrap.server.clone()),
        fresh.clone(),
    );
    fresh_client.catch_up().unwrap();
    let stats = fresh_client.stats();
    assert_eq!(stats.snapshots, 1, "fresh consumer loads exactly one snapshot");
    assert_eq!(fresh.rows(), reference.rows());

    // More live traffic: both stay in lockstep off the relay.
    for i in 150..180u64 {
        commit(&rig.db, i);
        rig.bootstrap.pump().unwrap();
        reference_client.catch_up().unwrap();
        fresh_client.catch_up().unwrap();
    }
    assert_eq!(fresh.rows(), reference.rows());
    assert_eq!(fresh_client.checkpoint(), reference_client.checkpoint());
    let stats = fresh_client.stats();
    assert_eq!(stats.snapshots, 1, "no re-snapshot once live");
    assert!(stats.windows_from_relay > 0, "resumed the live stream");
}
