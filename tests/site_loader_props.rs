//! Property tests on the streaming population loader: pipelined
//! `SiteBench::prepare` (generator thread + chunked loads) must build the
//! byte-identical platform state as the bulk `prepare_with_graph` path,
//! for any chunk size and in both shard modes. The primary store's
//! logical fingerprint pins the commit stream (content and SCN of every
//! seeded row; wall-clock timestamps excluded, since two separately
//! built platforms never share a clock), and the Espresso router's
//! request counter pins
//! the fan-out accounting the conservation fingerprint rides on — if
//! either ever becomes a function of chunk boundaries, same-seed
//! benchmark runs at different `chunk_members` would diverge.
//!
//! Every case builds four full platforms, so the case count stays small
//! (tunable with `SITE_LOADER_PROPTEST_CASES`).

use std::sync::Arc;

use li_commons::shard::ShardMode;
use li_workload::site::SiteGraph;
use linkedin_data_infra::{PlatformConfig, SiteBench, SiteBenchConfig};
use proptest::prelude::*;

fn loader_cases() -> ProptestConfig {
    let cases = std::env::var("SITE_LOADER_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    ProptestConfig::with_cases(cases)
}

fn small_config(members: u64, seed: u64, chunk_members: usize, mode: ShardMode) -> SiteBenchConfig {
    let mut config = SiteBenchConfig::smoke(members, 1, 0, seed);
    config.chunk_members = chunk_members;
    config.platform = PlatformConfig {
        voldemort_nodes: 2,
        kafka_brokers: 1,
        espresso_nodes: 2,
        espresso_partitions: 4,
        activity_partitions: 2,
        shard_mode: mode,
    };
    config
}

fn router_requests(bench: &SiteBench) -> u64 {
    bench
        .platform()
        .metrics_snapshot()
        .counter("espresso.router.requests")
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(loader_cases())]

    /// Streaming prepare == bulk prepare, at any chunk size, in both
    /// shard modes: same primary commit stream (replay fingerprint), same
    /// per-document router accounting, same seeded graph.
    #[test]
    fn streaming_prepare_matches_bulk_prepare_at_any_chunk_size(
        members in 40u64..120,
        seed in any::<u64>(),
        chunk_members in 1usize..96,
    ) {
        for mode in [ShardMode::Deterministic, ShardMode::Parallel] {
            let config = small_config(members, seed, chunk_members, mode);

            let streamed = SiteBench::prepare(config.clone()).unwrap();
            let stats = streamed.prepare_stats();
            prop_assert!(stats.overlapped, "streaming prepare must pipeline");
            let expected_chunks = (members as usize).div_ceil(chunk_members);
            prop_assert_eq!(stats.chunks, expected_chunks);

            let graph = Arc::new(SiteGraph::generate(&config.graph));
            let bulk = SiteBench::prepare_with_graph(config.clone(), graph).unwrap();
            prop_assert!(!bulk.prepare_stats().overlapped);

            // The streamed population is the bulk population.
            prop_assert_eq!(streamed.graph(), bulk.graph());
            // The primary saw the identical transaction stream: the
            // logical fingerprint covers every committed row and the SCN
            // (etag) each landed at, and the commit counters pin the
            // transaction boundaries.
            prop_assert_eq!(
                streamed.platform().primary.logical_fingerprint(),
                bulk.platform().primary.logical_fingerprint(),
                "primary commit stream depends on chunk size (mode {:?}, chunk {})",
                mode,
                chunk_members
            );
            for counter in ["sqlstore.db.primary.commits", "sqlstore.db.primary.last_scn"] {
                let s = streamed.platform().metrics_snapshot();
                let b = bulk.platform().metrics_snapshot();
                prop_assert_eq!(
                    s.counter(counter).or_else(|| s.gauge(counter).map(|g| g as u64)),
                    b.counter(counter).or_else(|| b.gauge(counter).map(|g| g as u64)),
                    "{} depends on chunk size (mode {:?})",
                    counter,
                    mode
                );
            }
            // Router accounting is per-document, so batching profiles
            // into chunk-sized multi-puts must not change the counter the
            // conservation fingerprint carries.
            prop_assert_eq!(
                router_requests(&streamed),
                router_requests(&bulk),
                "espresso.router.requests depends on chunk size (mode {:?})",
                mode
            );
        }
    }
}
