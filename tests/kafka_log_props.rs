//! Property tests on Kafka's offset-addressed log (C-16's invariants):
//! consuming from 0 reconstructs exactly the produced sequence, any valid
//! rewind point reconstructs the suffix, and pagination never loses or
//! duplicates a message.

use bytes::Bytes;
use li_commons::sim::SimClock;
use li_kafka::log::{LogConfig, PartitionLog};
use li_kafka::{KafkaCluster, Message, Producer, SimpleConsumer};
use proptest::prelude::*;
use std::sync::Arc;

/// The zero-copy proof, end to end: payloads delivered by a
/// `SimpleConsumer` poll must lie inside the address range of the broker's
/// own stored chunks — pointer-range identity, not just equal bytes. This
/// is §V.B's "avoids byte copying" as a falsifiable assertion.
#[test]
fn fetched_payloads_point_into_broker_segment_storage() {
    let cluster = KafkaCluster::new(1).unwrap();
    cluster.create_topic("t", 1).unwrap();
    let producer = Producer::new(cluster.clone()).with_batch_size(16);
    for i in 0..64 {
        producer.send("t", format!("payload-{i}")).unwrap();
    }
    producer.flush().unwrap();

    let broker = cluster.broker_for("t", 0).unwrap();
    let (chunks, _) = broker.fetch_chunks("t", 0, 0, usize::MAX).unwrap();
    assert!(!chunks.is_empty());

    let mut consumer = SimpleConsumer::new(cluster.clone(), "t", 0).unwrap();
    let polled = consumer.poll().unwrap();
    assert_eq!(polled.len(), 64);
    for (_, message) in &polled {
        let p = message.payload.as_ref().as_ptr() as usize;
        let in_range = chunks.iter().any(|c| {
            let base = c.data.as_ref().as_ptr() as usize;
            p >= base && p + message.payload.len() <= base + c.data.len()
        });
        assert!(in_range, "payload bytes must alias broker segment storage");
        assert!(
            chunks.iter().any(|c| message.payload.shares_allocation(&c.data)),
            "payload must hold a refcount on the segment allocation"
        );
    }
}

fn log_with_all_visible() -> PartitionLog {
    PartitionLog::new(
        LogConfig {
            flush_interval_messages: 1,
            segment_bytes: 256, // force multi-segment coverage
            ..LogConfig::default()
        },
        Arc::new(SimClock::new()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_log_reconstructs_produced_sequence(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..80)
    ) {
        let log = log_with_all_visible();
        let mut offsets = Vec::new();
        for p in &payloads {
            offsets.push(log.append(&Message::new(Bytes::from(p.clone()))));
        }
        // Offsets strictly increase and obey offset arithmetic.
        for (i, window) in offsets.windows(2).enumerate() {
            let expected = window[0] + Message::new(Bytes::from(payloads[i].clone())).framed_len() as u64;
            prop_assert_eq!(window[1], expected);
        }
        // Full scan reconstructs everything in order.
        let (messages, next) = log.read(0, usize::MAX).unwrap();
        prop_assert_eq!(messages.len(), payloads.len());
        for ((offset, message), (expected_offset, payload)) in
            messages.iter().zip(offsets.iter().zip(payloads.iter()))
        {
            prop_assert_eq!(offset, expected_offset);
            prop_assert_eq!(message.payload.as_ref(), &payload[..]);
        }
        prop_assert_eq!(next, log.log_end());
    }

    #[test]
    fn prop_rewind_reconstructs_suffix(
        payloads in proptest::collection::vec("[a-z]{1,16}", 2..60),
        rewind_to in any::<proptest::sample::Index>(),
    ) {
        let log = log_with_all_visible();
        let mut offsets = Vec::new();
        for p in &payloads {
            offsets.push(log.append(&Message::new(Bytes::from(p.clone()))));
        }
        let idx = rewind_to.index(offsets.len());
        let (messages, _) = log.read(offsets[idx], usize::MAX).unwrap();
        prop_assert_eq!(messages.len(), payloads.len() - idx);
        prop_assert_eq!(
            messages[0].1.payload.as_ref(),
            payloads[idx].as_bytes()
        );
    }

    #[test]
    fn prop_pagination_is_lossless(
        payloads in proptest::collection::vec("[a-z]{1,24}", 1..80),
        max_bytes in 16usize..256,
    ) {
        let log = log_with_all_visible();
        for p in &payloads {
            log.append(&Message::new(Bytes::from(p.clone())));
        }
        let mut collected = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (batch, next) = log.read(cursor, max_bytes).unwrap();
            if batch.is_empty() {
                prop_assert_eq!(next, cursor, "no progress means caught up");
                break;
            }
            collected.extend(batch.into_iter().map(|(_, m)| m.payload));
            cursor = next;
        }
        prop_assert_eq!(collected.len(), payloads.len());
        for (got, want) in collected.iter().zip(&payloads) {
            prop_assert_eq!(got.as_ref(), want.as_bytes());
        }
    }

    #[test]
    fn prop_chunk_fetch_equals_eager_fetch(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 1..60),
        segment_bytes in 32usize..512,
        flush_every in 1u64..6,
        max_bytes in prop_oneof![Just(usize::MAX), 8usize..512],
        start in any::<proptest::sample::Index>(),
    ) {
        let log = PartitionLog::new(
            LogConfig {
                flush_interval_messages: flush_every,
                flush_interval: std::time::Duration::from_secs(3600),
                segment_bytes,
                ..LogConfig::default()
            },
            Arc::new(SimClock::new()),
        );
        let mut offsets = Vec::new();
        for p in &payloads {
            offsets.push(log.append(&Message::new(Bytes::from(p.clone()))));
        }
        let offset = offsets[start.index(offsets.len())];
        if offset > log.visible_end() {
            return Ok(()); // start beyond the flush horizon: nothing to compare
        }
        // The lazy chunk walk and the eager decode must agree exactly —
        // same messages, same offsets, same next cursor.
        let (chunks, chunk_next) = log.read_chunks(offset, max_bytes).unwrap();
        let mut lazy = Vec::new();
        for chunk in &chunks {
            for item in chunk {
                lazy.push(item.unwrap());
            }
        }
        let (eager, eager_next) = log.read(offset, max_bytes).unwrap();
        prop_assert_eq!(&lazy, &eager);
        prop_assert_eq!(chunk_next, eager_next);
        // And every lazily-decoded payload aliases its chunk's storage.
        for chunk in &chunks {
            for item in chunk {
                let (_, message) = item.unwrap();
                prop_assert!(message.payload.shares_allocation(&chunk.data));
            }
        }
    }

    #[test]
    fn prop_flush_boundary_never_exposes_partial_data(
        payloads in proptest::collection::vec("[a-z]{1,16}", 1..40),
        flush_every in 1u64..8,
    ) {
        let clock = Arc::new(SimClock::new());
        let log = PartitionLog::new(
            LogConfig {
                flush_interval_messages: flush_every,
                flush_interval: std::time::Duration::from_secs(3600),
                ..LogConfig::default()
            },
            clock,
        );
        for (i, p) in payloads.iter().enumerate() {
            log.append(&Message::new(Bytes::from(p.clone())));
            // Visible count is always a multiple of the flush interval
            // (until a final explicit flush).
            let (visible, _) = log.read(0, usize::MAX).unwrap();
            let appended = i as u64 + 1;
            prop_assert_eq!(
                visible.len() as u64,
                (appended / flush_every) * flush_every
            );
        }
        log.flush();
        prop_assert_eq!(log.read(0, usize::MAX).unwrap().0.len(), payloads.len());
    }
}
