//! Property tests for the metrics snapshot JSON wire format: any mix of
//! metric names and values must survive `to_json` → `from_json` exactly.
//! (Floats are generated finite — the JSON encoder maps non-finite means
//! to `null` by design, which is a lossy export, not a round-trip.)

use li_commons::metrics::{HistogramSummary, MetricValue, MetricsSnapshot};
use proptest::prelude::*;

/// One arbitrary metric reading. Kind is picked by `kind`; the remaining
/// draws feed whichever variant is chosen.
#[allow(clippy::too_many_arguments)]
fn reading(
    kind: u8,
    a: u64,
    b: i64,
    count: u64,
    whole: u32,
    thousandths: u32,
    lo: u64,
    hi: u64,
) -> MetricValue {
    match kind % 3 {
        0 => MetricValue::Counter(a),
        1 => MetricValue::Gauge(b),
        _ => {
            let (min, max) = (lo.min(hi), lo.max(hi));
            MetricValue::Histogram(HistogramSummary {
                count,
                // Finite float with a fractional part; exercises both the
                // "needs .0 suffix" and genuine-fraction encoder paths.
                mean: f64::from(whole) + f64::from(thousandths % 1000) / 1000.0,
                min,
                max,
                p50: min,
                p99: max,
                p999: max,
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary dotted (or arbitrarily un-dotted) names mapped to
    /// arbitrary readings come back bit-identical from the JSON form.
    #[test]
    fn prop_snapshot_json_round_trips(
        entries in proptest::collection::btree_map(
            "[a-z0-9_.]{1,40}",
            (0u8..=255, any::<u64>(), any::<i64>(), any::<u64>(),
             any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()),
            0..16,
        ),
    ) {
        let snapshot = MetricsSnapshot::from_readings(
            entries
                .into_iter()
                .map(|(name, (k, a, b, c, w, t, lo, hi))| {
                    (name, reading(k, a, b, c, w, t, lo, hi))
                }),
        );
        let json = snapshot.to_json();
        let back = MetricsSnapshot::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}\n{json}")))?;
        prop_assert_eq!(back, snapshot);
    }

    /// Counter values at the integer extremes survive (u64::MAX does not
    /// fit i64 — the parser must take the UInt path, not truncate).
    #[test]
    fn prop_extreme_counters_survive(v in any::<u64>()) {
        let snapshot = MetricsSnapshot::from_readings([
            ("extreme".to_string(), MetricValue::Counter(v)),
            ("max".to_string(), MetricValue::Counter(u64::MAX)),
            ("min_gauge".to_string(), MetricValue::Gauge(i64::MIN)),
        ]);
        let back = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
        prop_assert_eq!(back.counter("extreme"), Some(v));
        prop_assert_eq!(back.counter("max"), Some(u64::MAX));
        prop_assert_eq!(back.gauge("min_gauge"), Some(i64::MIN));
    }
}
