//! Property tests for online partition migration (DESIGN.md "online
//! resharding"): moving a partition through the phased coordinator —
//! snapshot → delta catch-up → dual-write + shadow verification → atomic
//! cutover — is a pure placement change. For any seeded write/delete
//! stream interleaved with migration steps at arbitrary points (so the
//! cutover lands at a random position in the traffic), the migrated
//! cluster must end byte-identical (`state_fingerprint`) to a
//! never-migrated twin that saw the same traffic, with zero acked-write
//! loss across the flip and zero shadow-verification refusals.
//!
//! Case count is env-tunable like the other proptest suites:
//! `MIGRATION_PROPTEST_CASES=64 cargo test --test migration_props`.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use li_commons::clock::VectorClock;
use li_commons::migrate::{MigrationConfig, MigrationCoordinator, MigrationPhase};
use li_commons::ring::{NodeId, PartitionId};
use li_voldemort::migrate::ADMIN_NODE;
use li_voldemort::{StoreClient, StoreDef, VoldemortCluster};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("MIGRATION_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const NODES: u16 = 5;
const PARTITIONS: u32 = 16;
/// Key space wide enough that some keys move with the partition and some
/// don't (the ack hook must be a no-op for unaffected keys).
const KEYS: u8 = 48;

/// One step of the interleaved program: live traffic or one unit of
/// migration work. `Step` placement is what randomizes the cutover point
/// relative to the write stream.
#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, tag: u16 },
    Delete { key: u8 },
    Step,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..KEYS, any::<u16>()).prop_map(|(key, tag)| Op::Put { key, tag }),
        (0u8..KEYS).prop_map(|key| Op::Delete { key }),
        Just(Op::Step),
        Just(Op::Step),
    ]
}

/// Put-only variant for the abort property: an aborted attempt leaves
/// already-copied versions on the target, which is safe for re-migration
/// only while every residue version stays an ancestor of the live image
/// (deletes break that — see `abort_leaves_no_trace_and_is_restartable`).
fn arb_put() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..KEYS, any::<u16>()).prop_map(|(key, tag)| Op::Put { key, tag }),
        Just(Op::Step),
        Just(Op::Step),
    ]
}

fn cluster() -> Arc<VoldemortCluster> {
    let cluster = VoldemortCluster::new(PARTITIONS, NODES).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    cluster
}

/// Applies one traffic op and records the latest acked state per key
/// (`Some(value, clock)` after a put, `None` after a delete). The same
/// op applied to the twin keeps both histories identical; clocks differ
/// between clusters (coordinator stamping depends on routing history),
/// which is exactly why `state_fingerprint` hashes values only.
fn apply(
    client: &StoreClient,
    op: &Op,
    latest: Option<&mut BTreeMap<String, Option<(Bytes, VectorClock)>>>,
) {
    match op {
        Op::Put { key, tag } => {
            let k = format!("k{key}");
            let value = Bytes::from(format!("v-{key}-{tag}"));
            let clock = client
                .apply_update(k.as_bytes(), 5, &|_| Some(value.clone()))
                .unwrap();
            if let Some(latest) = latest {
                latest.insert(k, Some((value, clock)));
            }
        }
        Op::Delete { key } => {
            let k = format!("k{key}");
            let siblings = client.get(k.as_bytes()).unwrap();
            if siblings.is_empty() {
                return;
            }
            let clock = siblings
                .iter()
                .fold(VectorClock::default(), |acc, s| acc.merged(&s.clock));
            client.delete(k.as_bytes(), &clock).unwrap();
            if let Some(latest) = latest {
                latest.insert(k, None);
            }
        }
        Op::Step => {}
    }
}

/// Zero acked-write loss: every key's latest acked put is still served
/// (covered by a surviving version that descends the ack's clock, with
/// the acked bytes), and every acked delete stayed deleted.
fn assert_no_acked_loss(
    client: &StoreClient,
    latest: &BTreeMap<String, Option<(Bytes, VectorClock)>>,
) -> Result<(), TestCaseError> {
    for (key, state) in latest {
        let siblings = client.get(key.as_bytes()).unwrap();
        match state {
            Some((value, clock)) => {
                prop_assert!(
                    siblings.iter().any(|v| v.clock.descends_from(clock)),
                    "acked write to `{}` not covered by any surviving version",
                    key
                );
                prop_assert!(
                    siblings.iter().any(|v| v.value == *value),
                    "acked bytes for `{}` no longer served",
                    key
                );
            }
            None => prop_assert!(
                siblings.is_empty(),
                "deleted key `{}` resurrected with {} versions",
                key,
                siblings.len()
            ),
        }
    }
    Ok(())
}

fn assert_flipped_once(
    cluster: &VoldemortCluster,
    partition: PartitionId,
    to: NodeId,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(cluster.ring().owner_of(partition), to);
    prop_assert!(cluster.migration_in_flight().is_none());
    let snapshot = cluster.metrics().snapshot();
    prop_assert_eq!(snapshot.counter("migration.cutover_flips"), Some(1));
    prop_assert_eq!(snapshot.counter("migration.cutover_refusals"), Some(0));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// The equivalence contract itself: random traffic interleaved with
    /// migration steps at random points (so snapshot, delta rounds,
    /// dual-write, and the cutover each land at arbitrary positions in
    /// the write stream) ends byte-identical to a never-migrated twin,
    /// with every acked write surviving the flip.
    #[test]
    fn migrated_state_is_byte_identical_to_never_migrated_twin(
        ops in proptest::collection::vec(arb_op(), 1..80),
        partition in 0u32..PARTITIONS,
        target_offset in 1u16..NODES,
        preload in 1u8..32,
    ) {
        let migrated = cluster();
        let twin = cluster();
        let mclient = migrated.client("s").unwrap();
        let tclient = twin.client("s").unwrap();
        let mut latest = BTreeMap::new();

        // Preload so the snapshot phase has an image to bulk-copy.
        for i in 0..preload {
            let op = Op::Put { key: i % KEYS, tag: u16::MAX };
            apply(&mclient, &op, Some(&mut latest));
            apply(&tclient, &op, None);
        }

        let partition = PartitionId(partition);
        let donor = migrated.ring().owner_of(partition);
        let to = NodeId((donor.0 + target_offset) % NODES);
        let driver = migrated
            .begin_partition_migration(partition, to)
            .unwrap()
            .expect("offset in 1..NODES never picks the donor");
        let coordinator = MigrationCoordinator::new(
            migrated.metrics(),
            MigrationConfig { verify_retries: 10_000, ..MigrationConfig::default() },
        );

        for op in &ops {
            if matches!(op, Op::Step) {
                if coordinator.phase() != MigrationPhase::Done {
                    // No faults in this property: every step must advance.
                    prop_assert!(coordinator.step(&driver).is_ok());
                }
            } else {
                apply(&mclient, op, Some(&mut latest));
                apply(&tclient, op, None);
            }
        }
        if coordinator.phase() != MigrationPhase::Done {
            coordinator.run(&driver, 10_000).unwrap();
        }

        assert_flipped_once(&migrated, partition, to)?;
        assert_no_acked_loss(&mclient, &latest)?;
        prop_assert_eq!(
            migrated.state_fingerprint(),
            twin.state_fingerprint(),
            "migrated cluster diverged from the never-migrated twin"
        );
    }

    /// Random fault timings against the migration machinery: admin-link
    /// blocks between the migration service and the donor/target make
    /// whole phases fail at arbitrary points (a failed phase is retried,
    /// never half-applied). Client traffic rides different links, so the
    /// twin equivalence must still hold exactly, the flip must still
    /// happen exactly once after healing, and transient divergence while
    /// faulted must never be misread as corruption (zero refusals).
    #[test]
    fn faulted_phases_retry_without_losing_equivalence(
        ops in proptest::collection::vec(
            prop_oneof![
                arb_op().prop_map(FaultedOp::Traffic),
                arb_op().prop_map(FaultedOp::Traffic),
                Just(FaultedOp::BlockDonor),
                Just(FaultedOp::BlockTarget),
                Just(FaultedOp::Heal),
            ],
            1..80,
        ),
        partition in 0u32..PARTITIONS,
        target_offset in 1u16..NODES,
        preload in 1u8..32,
    ) {
        let migrated = cluster();
        let twin = cluster();
        let mclient = migrated.client("s").unwrap();
        let tclient = twin.client("s").unwrap();
        let mut latest = BTreeMap::new();

        for i in 0..preload {
            let op = Op::Put { key: i % KEYS, tag: u16::MAX };
            apply(&mclient, &op, Some(&mut latest));
            apply(&tclient, &op, None);
        }

        let partition = PartitionId(partition);
        let donor = migrated.ring().owner_of(partition);
        let to = NodeId((donor.0 + target_offset) % NODES);
        let driver = migrated
            .begin_partition_migration(partition, to)
            .unwrap()
            .expect("offset in 1..NODES never picks the donor");
        let coordinator = MigrationCoordinator::new(
            migrated.metrics(),
            MigrationConfig { verify_retries: 10_000, ..MigrationConfig::default() },
        );

        let mut faulted_steps = 0u32;
        for op in &ops {
            match op {
                FaultedOp::Traffic(Op::Step) => {
                    if coordinator.phase() != MigrationPhase::Done
                        && coordinator.step(&driver).is_err()
                    {
                        // Phase unchanged; the same step retries later.
                        faulted_steps += 1;
                    }
                }
                FaultedOp::Traffic(op) => {
                    apply(&mclient, op, Some(&mut latest));
                    apply(&tclient, op, None);
                }
                FaultedOp::BlockDonor => migrated.network().block_link(ADMIN_NODE, donor),
                FaultedOp::BlockTarget => migrated.network().block_link(ADMIN_NODE, to),
                FaultedOp::Heal => {
                    migrated.network().unblock_link(ADMIN_NODE, donor);
                    migrated.network().unblock_link(ADMIN_NODE, to);
                }
            }
        }
        // Heal and finish: every faulted step must have left the machine
        // in a retryable state.
        migrated.network().unblock_link(ADMIN_NODE, donor);
        migrated.network().unblock_link(ADMIN_NODE, to);
        if coordinator.phase() != MigrationPhase::Done {
            coordinator.run(&driver, 10_000).unwrap();
        }
        // (faulted_steps is workload-dependent; it only matters that any
        // such step was absorbed, which completion itself proves.)
        let _ = faulted_steps;

        assert_flipped_once(&migrated, partition, to)?;
        assert_no_acked_loss(&mclient, &latest)?;
        prop_assert_eq!(
            migrated.state_fingerprint(),
            twin.state_fingerprint(),
            "faulted migration diverged from the never-migrated twin"
        );
    }

    /// Aborting mid-migration at a random point is invisible: the donor
    /// stays authoritative and the cluster stays byte-identical to the
    /// twin. A fresh migration of the same partition to the same target
    /// then completes over the aborted attempt's residue (put-only
    /// traffic keeps every residue version an ancestor of the live
    /// image, so the snapshot's idempotent re-copy converges).
    #[test]
    fn abort_leaves_no_trace_and_is_restartable(
        ops in proptest::collection::vec(arb_put(), 1..60),
        cut in 0usize..60,
        partition in 0u32..PARTITIONS,
        target_offset in 1u16..NODES,
        preload in 1u8..32,
    ) {
        let migrated = cluster();
        let twin = cluster();
        let mclient = migrated.client("s").unwrap();
        let tclient = twin.client("s").unwrap();
        let mut latest = BTreeMap::new();

        for i in 0..preload {
            let op = Op::Put { key: i % KEYS, tag: u16::MAX };
            apply(&mclient, &op, Some(&mut latest));
            apply(&tclient, &op, None);
        }

        let partition = PartitionId(partition);
        let donor = migrated.ring().owner_of(partition);
        let to = NodeId((donor.0 + target_offset) % NODES);
        let driver = migrated
            .begin_partition_migration(partition, to)
            .unwrap()
            .expect("offset in 1..NODES never picks the donor");
        let coordinator = MigrationCoordinator::new(
            migrated.metrics(),
            MigrationConfig { verify_retries: 10_000, ..MigrationConfig::default() },
        );

        let cut = cut.min(ops.len());
        let mut flipped_before_abort = false;
        for op in &ops[..cut] {
            if matches!(op, Op::Step) {
                if coordinator.phase() != MigrationPhase::Done {
                    prop_assert!(coordinator.step(&driver).is_ok());
                }
            } else {
                apply(&mclient, op, Some(&mut latest));
                apply(&tclient, op, None);
            }
        }
        if coordinator.phase() == MigrationPhase::Done {
            // The random cut landed after completion; nothing to abort —
            // the first property already covers this shape, so just
            // check final equivalence below against the flipped owner.
            flipped_before_abort = true;
        } else {
            migrated.abort_migration();
            prop_assert_eq!(migrated.ring().owner_of(partition), donor, "abort must not flip");
            prop_assert!(migrated.migration_in_flight().is_none());
        }

        // Traffic continues after the abort, then a fresh migration runs
        // the whole phased machine over the residue.
        for op in &ops[cut..] {
            if matches!(op, Op::Step) {
                continue;
            }
            apply(&mclient, op, Some(&mut latest));
            apply(&tclient, op, None);
        }
        if !flipped_before_abort {
            migrated.migrate_partition(partition, to).unwrap();
        }

        prop_assert_eq!(migrated.ring().owner_of(partition), to);
        prop_assert!(migrated.migration_in_flight().is_none());
        let snapshot = migrated.metrics().snapshot();
        prop_assert_eq!(snapshot.counter("migration.cutover_flips"), Some(1));
        prop_assert_eq!(snapshot.counter("migration.cutover_refusals"), Some(0));
        assert_no_acked_loss(&mclient, &latest)?;
        prop_assert_eq!(
            migrated.state_fingerprint(),
            twin.state_fingerprint(),
            "abort + re-migration diverged from the never-migrated twin"
        );
    }
}

/// Second-property op: traffic, or a fault against the migration
/// admin's links (client links are never touched, so acks — and the
/// twin comparison — stay exact).
#[derive(Debug, Clone)]
enum FaultedOp {
    Traffic(Op),
    BlockDonor,
    BlockTarget,
    Heal,
}
