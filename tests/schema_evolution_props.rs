//! Property tests on schema evolution (the Avro-analog rules Espresso
//! depends on): along any chain of *compatible* evolutions, a document
//! written under any historical version resolves under the latest version
//! without error, with every reader field populated.

use li_commons::schema::{
    encode, resolve, Field, FieldType, Record, RecordSchema, SchemaRegistry, Value,
};
use proptest::prelude::*;

/// An evolution step applied to the previous schema.
#[derive(Debug, Clone)]
enum Step {
    AddLongWithDefault(String, i64),
    AddOptionalStr(String),
    DropField(proptest::sample::Index),
    WidenLongToDouble(proptest::sample::Index),
}

fn arb_step(i: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0i64..100).prop_map(move |d| Step::AddLongWithDefault(format!("added_{i}"), d)),
        Just(Step::AddOptionalStr(format!("opt_{i}"))),
        any::<proptest::sample::Index>().prop_map(Step::DropField),
        any::<proptest::sample::Index>().prop_map(Step::WidenLongToDouble),
    ]
}

fn base_schema() -> RecordSchema {
    RecordSchema::new(
        "doc",
        1,
        vec![
            Field::new("id", FieldType::Long),
            Field::new("name", FieldType::Str),
            Field::new("score", FieldType::Long),
        ],
    )
    .unwrap()
}

/// Applies a step, returning the next version (or None if the step is a
/// no-op in context, e.g. dropping when only one field remains).
fn apply_step(prev: &RecordSchema, step: &Step) -> Option<RecordSchema> {
    let mut fields = prev.fields.clone();
    match step {
        Step::AddLongWithDefault(name, default) => {
            if fields.iter().any(|f| &f.name == name) {
                return None;
            }
            fields.push(Field::new(name.clone(), FieldType::Long).with_default(Value::Long(*default)));
        }
        Step::AddOptionalStr(name) => {
            if fields.iter().any(|f| &f.name == name) {
                return None;
            }
            fields.push(Field::new(
                name.clone(),
                FieldType::Optional(Box::new(FieldType::Str)),
            ));
        }
        Step::DropField(idx) => {
            if fields.len() <= 1 {
                return None;
            }
            let i = idx.index(fields.len());
            fields.remove(i);
        }
        Step::WidenLongToDouble(idx) => {
            let longs: Vec<usize> = fields
                .iter()
                .enumerate()
                .filter(|(_, f)| f.ty == FieldType::Long)
                .map(|(i, _)| i)
                .collect();
            if longs.is_empty() {
                return None;
            }
            let i = longs[idx.index(longs.len())];
            fields[i].ty = FieldType::Double;
            // A Long default must widen with the type.
            if let Some(Value::Long(v)) = fields[i].default.clone() {
                fields[i].default = Some(Value::Double(v as f64));
            }
        }
    }
    RecordSchema::new("doc", prev.version + 1, fields).ok()
}

/// A record valid under `schema` with deterministic-ish content.
fn record_for(schema: &RecordSchema, seed: i64) -> Record {
    let mut record = Record::new();
    for field in &schema.fields {
        let value = match &field.ty {
            FieldType::Long => Value::Long(seed),
            FieldType::Double => Value::Double(seed as f64),
            FieldType::Str => Value::Str(format!("s{seed}")),
            FieldType::Bool => Value::Bool(seed % 2 == 0),
            FieldType::Bytes => Value::Bytes(vec![seed as u8]),
            FieldType::Optional(_) => Value::Null,
            FieldType::Array(_) => Value::Array(vec![]),
        };
        record.set(field.name.clone(), value);
    }
    record
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_any_compatible_chain_reads_all_history(
        raw_steps in proptest::collection::vec((0..4usize).prop_flat_map(arb_step), 0..6),
        seed in 0i64..1000,
    ) {
        // Build the chain, registering each version (the registry enforces
        // the evolution rules — a rejected step would fail the test).
        let mut registry = SchemaRegistry::new();
        let mut versions = vec![base_schema()];
        registry.register(base_schema()).unwrap();
        for step in &raw_steps {
            let prev = versions.last().unwrap();
            if let Some(next) = apply_step(prev, step) {
                // check_evolution must accept what we constructed.
                prop_assert!(prev.check_evolution(&next).is_ok(), "{step:?}");
                registry.register(next.clone()).unwrap();
                versions.push(next);
            }
        }
        let latest = registry.latest("doc").unwrap();

        // A document written under ANY version resolves under the latest.
        for writer in &versions {
            let record = record_for(writer, seed);
            let bytes = encode(writer, &record).unwrap();
            let resolved = resolve(writer, &latest, &bytes).unwrap();
            // Every reader field must be present.
            for field in &latest.fields {
                prop_assert!(
                    resolved.get(&field.name).is_some(),
                    "missing `{}` reading v{} under v{}",
                    field.name, writer.version, latest.version
                );
            }
            // Shared primitive fields carry their (possibly widened) value.
            for field in &latest.fields {
                if writer.field(&field.name).is_none() {
                    continue;
                }
                match (&field.ty, resolved.get(&field.name).unwrap()) {
                    (FieldType::Long, Value::Long(v)) => prop_assert_eq!(*v, seed),
                    (FieldType::Double, Value::Double(v)) => {
                        prop_assert!((*v - seed as f64).abs() < f64::EPSILON)
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn prop_incompatible_steps_rejected(
        field_idx in any::<proptest::sample::Index>(),
    ) {
        // Narrowing Double -> Long and adding a defaultless required field
        // must always be rejected, whatever the schema looks like.
        let base = base_schema();
        let mut widened = base.fields.clone();
        // Widen a random *Long* field (Str can't legally widen).
        let longs: Vec<usize> = widened
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty == FieldType::Long)
            .map(|(i, _)| i)
            .collect();
        let i = longs[field_idx.index(longs.len())];
        widened[i].ty = FieldType::Double;
        let v2 = RecordSchema::new("doc", 2, widened.clone()).unwrap();
        base.check_evolution(&v2).unwrap();

        // Narrow back: rejected.
        let mut narrowed = widened.clone();
        narrowed[i].ty = FieldType::Long;
        let v3_bad = RecordSchema::new("doc", 3, narrowed).unwrap();
        prop_assert!(v2.check_evolution(&v3_bad).is_err());

        // Defaultless required addition: rejected.
        let mut extended = widened;
        extended.push(Field::new("required_new", FieldType::Str));
        let v3_bad2 = RecordSchema::new("doc", 3, extended).unwrap();
        prop_assert!(v2.check_evolution(&v3_bad2).is_err());
    }
}
