//! Property tests for sqlstore binlog replay (§II, the Databus source
//! contract): replication by binlog replay must be idempotent and
//! prefix-composable. A replica that re-applies any prefix of the binlog
//! twice — the at-least-once delivery case after a crash between apply
//! and checkpoint — ends in exactly the state of a replica that applied
//! it once, and crash-recovery from the binlog bytes reproduces the
//! primary byte-for-byte at every prefix.

use bytes::Bytes;
use li_sqlstore::{Database, RowKey};
use proptest::prelude::*;

/// One randomly generated workload operation.
#[derive(Debug, Clone)]
enum WorkloadOp {
    Put { key: u8, value: Vec<u8> },
    Delete { key: u8 },
    Multi { keys: Vec<u8> },
}

fn arb_op() -> impl Strategy<Value = WorkloadOp> {
    prop_oneof![
        (0u8..20, proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(key, value)| WorkloadOp::Put { key, value }),
        (0u8..20).prop_map(|key| WorkloadOp::Delete { key }),
        proptest::collection::vec(0u8..20, 1..4).prop_map(|keys| WorkloadOp::Multi { keys }),
    ]
}

/// Builds a primary and commits the ops, one transaction each.
fn primary_with(ops: &[WorkloadOp]) -> Database {
    let db = Database::new("primary");
    db.create_table("t").unwrap();
    for (i, op) in ops.iter().enumerate() {
        let mut txn = db.begin();
        match op {
            WorkloadOp::Put { key, value } => {
                txn.put("t", RowKey::new([format!("k{key}")]), Bytes::from(value.clone()), 1);
            }
            WorkloadOp::Delete { key } => {
                txn.delete("t", RowKey::new([format!("k{key}")]));
            }
            WorkloadOp::Multi { keys } => {
                for key in keys {
                    txn.put(
                        "t",
                        RowKey::new([format!("k{key}")]),
                        Bytes::from(format!("multi-{i}")),
                        1,
                    );
                }
            }
        }
        db.commit(txn).unwrap();
    }
    db
}

fn fresh_replica() -> Database {
    let db = Database::new("replica");
    db.create_table("t").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replaying a prefix twice (at-least-once redelivery) is a no-op:
    /// the double-applied replica's state fingerprint equals the
    /// once-applied replica's, at every split point.
    #[test]
    fn replaying_any_prefix_twice_equals_replaying_once(
        ops in proptest::collection::vec(arb_op(), 1..30),
        split_frac in 0.0f64..1.0,
    ) {
        let primary = primary_with(&ops);
        let entries = primary.binlog_after(0);
        prop_assert!(!entries.is_empty());
        let split = ((entries.len() as f64 * split_frac) as usize).min(entries.len());

        let once = fresh_replica();
        for entry in &entries {
            once.apply_replicated(entry).unwrap();
        }

        let twice = fresh_replica();
        for entry in &entries[..split] {
            twice.apply_replicated(entry).unwrap();
        }
        // Redelivery: the whole prefix again, then the rest. The replica
        // must skip already-applied SCNs, not double-apply them.
        for entry in &entries[..split] {
            let applied = twice.apply_replicated(entry).unwrap();
            prop_assert!(!applied, "SCN {} double-applied", entry.scn);
        }
        for entry in &entries[split..] {
            twice.apply_replicated(entry).unwrap();
        }

        prop_assert_eq!(once.state_fingerprint(), twice.state_fingerprint());
        prop_assert_eq!(once.applied_scn(), twice.applied_scn());
        prop_assert_eq!(once.state_fingerprint(), primary.state_fingerprint());
    }

    /// Resuming from an arbitrary checkpoint SCN composes: apply a
    /// prefix, then `binlog_after(applied_scn)` for the rest — same
    /// state as one uninterrupted replay.
    #[test]
    fn resume_from_any_scn_composes(
        ops in proptest::collection::vec(arb_op(), 1..30),
        split_frac in 0.0f64..1.0,
    ) {
        let primary = primary_with(&ops);
        let entries = primary.binlog_after(0);
        let split = ((entries.len() as f64 * split_frac) as usize).min(entries.len());

        let resumed = fresh_replica();
        for entry in &entries[..split] {
            resumed.apply_replicated(entry).unwrap();
        }
        // Crash, restart: pull everything after the durable checkpoint.
        for entry in primary.binlog_after(resumed.applied_scn()) {
            resumed.apply_replicated(&entry).unwrap();
        }
        prop_assert_eq!(resumed.state_fingerprint(), primary.state_fingerprint());
    }

    /// Crash recovery from the serialized binlog reproduces the primary
    /// exactly — including when the binlog is truncated at any entry
    /// boundary (the state then matches a primary that only committed
    /// that prefix).
    #[test]
    fn recover_from_binlog_bytes_matches_at_every_prefix(
        ops in proptest::collection::vec(arb_op(), 1..20),
    ) {
        let primary = primary_with(&ops);
        let recovered = Database::recover("primary", &primary.binlog_bytes());
        prop_assert_eq!(recovered.state_fingerprint(), primary.state_fingerprint());
        prop_assert_eq!(recovered.last_scn(), primary.last_scn());
        // And the primary's own replay-equivalence checker agrees.
        primary.verify_replay_equivalence().unwrap();
    }
}
