//! Property tests for the group-commit ingest path (C-26's invariants).
//!
//! The tentpole claim: routing produce through the per-partition
//! [`GroupQueue`] changes *how often* the partition lock is taken, never
//! *what lands in the log*. Under random producer counts, batch splits,
//! and key distributions, the grouped path must be byte-identical to the
//! legacy one-append-per-produce path — same `content_fingerprint`, same
//! offsets — in both `ShardMode::Deterministic` and
//! `ShardMode::Parallel`. A second property drives real concurrent
//! producer threads and checks conservation, contiguity, and per-thread
//! FIFO order.
//!
//! Case count defaults to 24; CI raises it with
//! `KAFKA_INGEST_PROPTEST_CASES=64` (the vendored proptest has no env
//! support compiled in, so the knob is read manually).

use li_commons::metrics::MetricsRegistry;
use li_commons::shard::ShardMode;
use li_commons::sim::SimClock;
use li_kafka::log::LogConfig;
use li_kafka::message::MessageSet;
use li_kafka::{AckMode, KafkaCluster};
use proptest::prelude::*;
use std::sync::Arc;

fn cases(default: u32) -> u32 {
    std::env::var("KAFKA_INGEST_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cluster_with(mode: ShardMode, config: &LogConfig, partitions: u32) -> Arc<KafkaCluster> {
    let cluster = KafkaCluster::with_shard_mode(
        1,
        config.clone(),
        Arc::new(SimClock::new()),
        &MetricsRegistry::new(),
        mode,
    )
    .unwrap();
    cluster.create_topic("ingest", partitions).unwrap();
    cluster
}

/// One producer-visible batch: which partition it targets and the
/// payloads it carries (already split the way the producer would split).
#[derive(Debug, Clone)]
struct SendBatch {
    partition: u32,
    payloads: Vec<Vec<u8>>,
}

fn batches_strategy(partitions: u32) -> impl Strategy<Value = Vec<SendBatch>> {
    proptest::collection::vec(
        (
            0..partitions,
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..12),
        )
            .prop_map(|(partition, payloads)| SendBatch { partition, payloads }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Grouped produce ≡ legacy produce, byte for byte. The same random
    /// batch sequence is replayed against three single-broker clusters —
    /// legacy `produce_frames`, grouped Deterministic, grouped Parallel —
    /// and every partition must end with identical `log_end`,
    /// `content_fingerprint`, and per-batch base offsets.
    #[test]
    fn prop_grouped_produce_matches_legacy_bytes_and_offsets(
        partitions in 1u32..5,
        flush_every in 1u64..5,
        segment_bytes in prop_oneof![Just(1usize << 20), 128usize..1024],
        batches in (1u32..5).prop_flat_map(batches_strategy),
    ) {
        let config = LogConfig {
            flush_interval_messages: flush_every,
            flush_interval: std::time::Duration::from_secs(3600),
            segment_bytes,
            ..LogConfig::default()
        };
        let legacy = cluster_with(ShardMode::Parallel, &config, partitions);
        let det = cluster_with(ShardMode::Deterministic, &config, partitions);
        let par = cluster_with(ShardMode::Parallel, &config, partitions);

        for batch in &batches {
            let partition = batch.partition % partitions;
            let set = MessageSet::from_payloads(batch.payloads.clone());
            let frames = set.encode();
            let messages = set.messages.len() as u64;
            let payload_bytes = set.payload_bytes();

            let legacy_offset = legacy
                .broker_for("ingest", partition).unwrap()
                .produce_frames("ingest", partition, &frames, messages, payload_bytes)
                .unwrap();
            let det_receipt = det
                .broker_for("ingest", partition).unwrap()
                .produce_frames_grouped(
                    "ingest", partition, frames.clone(), messages, payload_bytes,
                    AckMode::Leader,
                )
                .unwrap();
            let par_receipt = par
                .broker_for("ingest", partition).unwrap()
                .produce_frames_grouped(
                    "ingest", partition, frames, messages, payload_bytes,
                    AckMode::Leader,
                )
                .unwrap();
            // Leader ack always reports the append offset — and it matches
            // the legacy path exactly (single-threaded, so the grouped
            // drainer commits inline in arrival order).
            prop_assert_eq!(det_receipt.base_offset, Some(legacy_offset));
            prop_assert_eq!(par_receipt.base_offset, Some(legacy_offset));
        }

        legacy.flush_all();
        det.flush_all();
        par.flush_all();
        for p in 0..partitions {
            let legacy_log = legacy.broker_for("ingest", p).unwrap().log("ingest", p).unwrap();
            let det_log = det.broker_for("ingest", p).unwrap().log("ingest", p).unwrap();
            let par_log = par.broker_for("ingest", p).unwrap().log("ingest", p).unwrap();
            prop_assert_eq!(det_log.log_end(), legacy_log.log_end(), "partition {}", p);
            prop_assert_eq!(par_log.log_end(), legacy_log.log_end(), "partition {}", p);
            prop_assert_eq!(
                det_log.content_fingerprint(),
                legacy_log.content_fingerprint(),
                "deterministic twin diverged on partition {}", p
            );
            prop_assert_eq!(
                par_log.content_fingerprint(),
                legacy_log.content_fingerprint(),
                "parallel path diverged on partition {}", p
            );
            prop_assert!(det_log.verify_contiguity().is_ok());
            prop_assert!(par_log.verify_contiguity().is_ok());
        }
    }

    /// Real concurrent producers against the Parallel grouped path: no
    /// message lost or duplicated, the log stays contiguous, and each
    /// thread's sends land in its own send order within each partition
    /// (admission order is commit order — the queue is FIFO).
    #[test]
    fn prop_concurrent_grouped_produce_conserves_and_orders(
        threads in 1usize..6,
        per_thread in 1usize..30,
        partitions in 1u32..4,
        ack_seed in any::<u8>(),
    ) {
        let config = LogConfig {
            flush_interval_messages: 1,
            flush_interval: std::time::Duration::from_secs(3600),
            ..LogConfig::default()
        };
        let cluster = cluster_with(ShardMode::Parallel, &config, partitions);
        let acks = [AckMode::Leader, AckMode::FullIsr, AckMode::None];

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cluster = cluster.clone();
                std::thread::spawn(move || {
                    let mut offsets: Vec<(u32, u64)> = Vec::new();
                    for seq in 0..per_thread {
                        let partition = ((t + seq) as u32) % partitions;
                        let set = MessageSet::from_payloads([format!("t{t}-s{seq}")]);
                        let frames = set.encode();
                        let payload_bytes = set.payload_bytes();
                        let ack = acks[(ack_seed as usize + t + seq) % acks.len()];
                        let receipt = cluster
                            .broker_for("ingest", partition).unwrap()
                            .produce_frames_grouped(
                                "ingest", partition, frames, 1, payload_bytes, ack,
                            )
                            .unwrap();
                        prop_assert_eq!(receipt.base_offset.is_none(), ack == AckMode::None);
                        if let Some(offset) = receipt.base_offset {
                            offsets.push((partition, offset));
                        }
                    }
                    Ok(offsets)
                })
            })
            .collect();
        let mut acked: Vec<Vec<(u32, u64)>> = Vec::new();
        for handle in handles {
            acked.push(handle.join().unwrap()?);
        }

        cluster.flush_all();
        let mut landed = 0usize;
        let mut per_thread_seen: Vec<Vec<Vec<usize>>> =
            vec![vec![Vec::new(); partitions as usize]; threads];
        for p in 0..partitions {
            let log = cluster.broker_for("ingest", p).unwrap().log("ingest", p).unwrap();
            prop_assert!(log.verify_contiguity().is_ok());
            let (messages, _) = log.read(0, usize::MAX).unwrap();
            landed += messages.len();
            for (_, message) in &messages {
                let text = String::from_utf8(message.payload.to_vec()).unwrap();
                let (t, s) = text[1..].split_once("-s").unwrap();
                per_thread_seen[t.parse::<usize>().unwrap()][p as usize]
                    .push(s.parse::<usize>().unwrap());
            }
        }
        // Conservation: every send landed exactly once.
        prop_assert_eq!(landed, threads * per_thread);
        // Per-thread FIFO within each partition.
        for rows in &per_thread_seen {
            for seqs in rows {
                prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
            }
        }
        // Acked offsets per thread+partition strictly increase too.
        for offsets in &acked {
            for p in 0..partitions {
                let mine: Vec<u64> = offsets
                    .iter()
                    .filter(|(part, _)| *part == p)
                    .map(|(_, o)| *o)
                    .collect();
                prop_assert!(mine.windows(2).all(|w| w[0] < w[1]), "{mine:?}");
            }
        }
    }
}
