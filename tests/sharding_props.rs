//! Property tests for the sharded serving runtime's deterministic-twin
//! contract (DESIGN.md "serving runtime"): striping row locks over
//! multiple stripes is a pure concurrency optimization. For any seeded
//! workload, a [`ShardMode::Parallel`] database must be observationally
//! identical to its [`ShardMode::Deterministic`] twin — same state
//! fingerprint (which hashes full row images including etags and
//! timestamps), same binlog bytes, same dense SCN sequence — and a
//! concurrently-driven parallel instance must end in the same state as a
//! serial replay of the same per-lane programs.

use std::sync::Arc;

use bytes::Bytes;
use li_commons::metrics::MetricsRegistry;
use li_commons::shard::ShardMode;
use li_commons::sim::SimClock;
use li_sqlstore::{Database, RowKey};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("SHARDING_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One randomly generated workload operation against a keyed row space
/// wide enough (64 keys) that stripes actually share and split keys.
#[derive(Debug, Clone)]
enum WorkloadOp {
    Put { key: u8, value: Vec<u8> },
    Delete { key: u8 },
    Multi { keys: Vec<u8> },
}

fn arb_op() -> impl Strategy<Value = WorkloadOp> {
    prop_oneof![
        (0u8..64, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(key, value)| WorkloadOp::Put { key, value }),
        (0u8..64).prop_map(|key| WorkloadOp::Delete { key }),
        proptest::collection::vec(0u8..64, 1..5).prop_map(|keys| WorkloadOp::Multi { keys }),
    ]
}

fn db(mode: ShardMode) -> Database {
    let db = Database::with_shard_mode(
        "props",
        Arc::new(SimClock::new()),
        &MetricsRegistry::new(),
        mode,
    );
    db.create_table("t").unwrap();
    db
}

/// Applies the ops in program order, one transaction each.
fn apply(db: &Database, ops: &[WorkloadOp]) {
    for (i, op) in ops.iter().enumerate() {
        let mut txn = db.begin();
        match op {
            WorkloadOp::Put { key, value } => {
                txn.put("t", RowKey::new([format!("k{key}")]), Bytes::from(value.clone()), 1);
            }
            WorkloadOp::Delete { key } => {
                txn.delete("t", RowKey::new([format!("k{key}")]));
            }
            WorkloadOp::Multi { keys } => {
                for key in keys {
                    txn.put(
                        "t",
                        RowKey::new([format!("k{key}")]),
                        Bytes::from(format!("multi-{i}")),
                        1,
                    );
                }
            }
        }
        db.commit(txn).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    /// The deterministic-twin contract itself: the same program applied
    /// to a single-stripe and a 32-stripe database produces byte-identical
    /// binlogs and identical state fingerprints. Stripe layout must be
    /// invisible to every observer — replication, recovery, and chaos
    /// trace comparison all ride on this.
    #[test]
    fn parallel_database_is_byte_identical_to_deterministic_twin(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let serial = db(ShardMode::Deterministic);
        let sharded = db(ShardMode::Parallel);
        prop_assert_eq!(serial.row_stripes(), 1);
        prop_assert!(sharded.row_stripes() > 1);

        apply(&serial, &ops);
        apply(&sharded, &ops);

        prop_assert_eq!(serial.state_fingerprint(), sharded.state_fingerprint());
        prop_assert_eq!(serial.binlog_bytes(), sharded.binlog_bytes());
        // Same dense SCN sequence with the same change payloads.
        let a = serial.binlog_after(0);
        let b = sharded.binlog_after(0);
        prop_assert_eq!(a.len(), b.len());
        for (ea, eb) in a.iter().zip(&b) {
            prop_assert_eq!(ea, eb);
        }
        prop_assert_eq!(serial.last_scn(), ops.len() as u64);
    }

    /// Concurrent lanes over disjoint key ranges: a parallel database
    /// driven by one thread per lane ends in exactly the state of a
    /// serial replay of the lanes — SCNs stay dense (no commit lost or
    /// double-assigned under striped locking) and replaying the
    /// concurrent binlog reproduces the concurrent state.
    #[test]
    fn concurrent_disjoint_lanes_match_serial_replay(
        lanes in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..16, proptest::collection::vec(any::<u8>(), 0..12)),
                1..12,
            ),
            2..5,
        ),
    ) {
        // Lane l owns keys l*16..(l+1)*16 — no cross-lane row contention,
        // so final state is independent of commit interleaving.
        let keyed: Vec<Vec<(String, Vec<u8>)>> = lanes
            .iter()
            .enumerate()
            .map(|(l, lane)| {
                lane.iter()
                    .map(|(k, v)| (format!("k{}", l * 16 + *k as usize), v.clone()))
                    .collect()
            })
            .collect();
        let total: u64 = keyed.iter().map(|lane| lane.len() as u64).sum();

        let concurrent = Arc::new(db(ShardMode::Parallel));
        let handles: Vec<_> = keyed
            .iter()
            .cloned()
            .map(|lane| {
                let db = Arc::clone(&concurrent);
                std::thread::spawn(move || {
                    for (key, value) in lane {
                        let mut txn = db.begin();
                        txn.put("t", RowKey::new([key]), Bytes::from(value), 1);
                        db.commit(txn).unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let serial = db(ShardMode::Deterministic);
        for lane in &keyed {
            for (key, value) in lane {
                let mut txn = serial.begin();
                txn.put("t", RowKey::new([key.clone()]), Bytes::from(value.clone()), 1);
                serial.commit(txn).unwrap();
            }
        }

        // Dense SCNs: every commit got exactly one slot.
        prop_assert_eq!(concurrent.last_scn(), total);
        let scns: Vec<u64> = concurrent.binlog_after(0).iter().map(|e| e.scn).collect();
        prop_assert_eq!(scns, (1..=total).collect::<Vec<_>>());
        // Per-key program order is lane-internal, so every key's final
        // *value* matches the serial replay. (Etags are SCNs and SCN
        // assignment across lanes is interleaving-dependent, so whole-row
        // fingerprints are only compared in the twin property above.)
        for lane in &keyed {
            for (key, _) in lane {
                let got = concurrent
                    .get("t", &RowKey::new([key.clone()]))
                    .unwrap()
                    .map(|row| row.value.clone());
                let want = serial
                    .get("t", &RowKey::new([key.clone()]))
                    .unwrap()
                    .map(|row| row.value.clone());
                prop_assert_eq!(got, want, "key {} diverged", key);
            }
        }
        // And the concurrent binlog replays to the concurrent state.
        concurrent.verify_replay_equivalence().unwrap();
    }
}
