//! Property tests on the site-bench population generator
//! (`li_workload::site`): the graph the closed-loop benchmark drives must
//! be structurally sound, statistically Zipf-shaped, and a pure function
//! of its seed — the benchmark's determinism and conservation gates all
//! sit on these properties.
//!
//! Case count is tunable with `SITE_GRAPH_PROPTEST_CASES` (the vendored
//! proptest has no env support of its own).

use li_workload::site::{SiteGraph, SiteGraphChunks, SiteGraphConfig, SiteMix, SiteOp, SiteWorkload};
use proptest::prelude::*;

fn graph_cases() -> ProptestConfig {
    let cases = std::env::var("SITE_GRAPH_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    ProptestConfig::with_cases(cases)
}

fn arb_config() -> impl Strategy<Value = SiteGraphConfig> {
    (50u64..400, 4u64..40, 2usize..24, 1usize..8, any::<u64>()).prop_map(
        |(members, companies, max_follows, recs, seed)| SiteGraphConfig {
            members,
            companies,
            max_follows,
            recs_per_member: recs,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(graph_cases())]

    /// Self-consistency for every shape and seed: no dangling member or
    /// company ids, follow lists sorted and deduplicated, every member
    /// carrying a full PYMK record.
    #[test]
    fn generated_graph_is_self_consistent(config in arb_config()) {
        let graph = SiteGraph::generate(&config);
        prop_assert!(graph.verify_consistency().is_ok(),
            "{:?}", graph.verify_consistency());
        // The degree cap holds.
        for member in 0..config.members {
            prop_assert!(graph.follows_of(member).len() <= config.max_follows);
        }
    }

    /// Seed determinism: the same config generates the identical graph;
    /// changing only the seed changes it.
    #[test]
    fn generation_is_a_pure_function_of_the_seed(config in arb_config()) {
        let a = SiteGraph::generate(&config);
        let b = SiteGraph::generate(&config);
        prop_assert_eq!(&a, &b);
        let mut reseeded = config.clone();
        reseeded.seed = config.seed.wrapping_add(1);
        let c = SiteGraph::generate(&reseeded);
        prop_assert_ne!(&a, &c);
    }

    /// Zipf shape within tolerance: with enough members for the statistics
    /// to settle, the most-followed decile of companies holds well more
    /// than its uniform share of edges (uniform would give it 10%; YCSB
    /// Zipf at theta 0.99 concentrates far harder). Checked loosely at
    /// > 35% so the property holds across seeds, not just lucky ones.
    #[test]
    fn follower_counts_are_zipf_shaped(seed in any::<u64>()) {
        let graph = SiteGraph::generate(&SiteGraphConfig {
            members: 1500,
            companies: 150,
            max_follows: 20,
            recs_per_member: 2,
            seed,
        });
        let mut counts = graph.follower_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        prop_assert!(total > 0);
        let head: usize = counts.iter().take(counts.len() / 10).sum();
        let share = head as f64 / total as f64;
        prop_assert!(share > 0.35,
            "top decile holds only {share:.2} of edges (uniform share would be 0.10)");
    }

    /// Streaming generator equivalence: chunked generation at *any* chunk
    /// size reassembles into exactly the bulk graph. This is the contract
    /// the pipelined `SiteBench::prepare` rides on — the population a
    /// million-member run streams in must be the same population the
    /// small-scale deterministic smoke materializes at once.
    #[test]
    fn chunked_generation_is_chunk_size_invariant(
        config in arb_config(),
        chunk_members in 1usize..500,
    ) {
        let bulk = SiteGraph::generate(&config);
        let chunks = SiteGraphChunks::new(&config, chunk_members);
        let mut yielded = 0u64;
        let mut collected = Vec::new();
        for chunk in chunks {
            prop_assert_eq!(chunk.first_member, yielded);
            prop_assert!(chunk.len() <= chunk_members);
            yielded += chunk.len() as u64;
            collected.push(chunk);
        }
        prop_assert_eq!(yielded, config.members);
        let streamed = SiteGraph::from_chunks(&config, collected);
        prop_assert_eq!(&bulk, &streamed);
    }

    /// Per-driver op streams: deterministic per (seed, driver), mutually
    /// decorrelated, and every generated op references the configured
    /// population (ids the platform actually seeded).
    #[test]
    fn driver_streams_are_deterministic_and_in_range(
        seed in any::<u64>(),
        drivers in 1u64..6,
    ) {
        let members = 300u64;
        let companies = 30u64;
        let workload = SiteWorkload::new(members, companies, SiteMix::site_default());
        let mut streams = Vec::new();
        for driver in 0..drivers {
            let ops = workload.ops_for_driver(seed, driver, 250);
            prop_assert_eq!(&ops, &workload.ops_for_driver(seed, driver, 250));
            for op in &ops {
                match op {
                    SiteOp::ProfileRead(m) | SiteOp::PymkRead(m) => {
                        prop_assert!(*m < members);
                    }
                    SiteOp::Follow { member, company } => {
                        prop_assert!(*member < members);
                        prop_assert!(*company < companies);
                    }
                    SiteOp::Activity { member, .. } => prop_assert!(*member < members),
                }
            }
            streams.push(ops);
        }
        if drivers > 1 {
            // Streams must be decorrelated, not copies of one stream.
            prop_assert_ne!(&streams[0], &streams[1]);
        }
    }
}
