//! Integration tests for the future-work features the paper names and
//! this reproduction implements (see DESIGN.md §"Extensions").

use bytes::Bytes;
use li_commons::ring::NodeId;
use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_espresso::{DatabaseSchema, EspressoCluster, GlobalIndex, TableSchema};
use li_kafka::{KafkaCluster, MessageSet, ReplicatedCluster};
use li_sqlstore::RowKey;
use std::sync::Arc;

#[test]
fn kafka_replication_under_rolling_broker_failures() {
    // §V.D future work: intra-cluster replication. Roll a failure through
    // every broker; committed messages must survive every election.
    let cluster = KafkaCluster::new(3).unwrap();
    let rc = ReplicatedCluster::new(cluster);
    rc.create_topic("events", 2, 3).unwrap();

    let mut committed: Vec<String> = Vec::new();
    for round in 0..3u16 {
        for p in 0..2 {
            let payload = format!("round-{round}-p{p}");
            rc.produce("events", p, &MessageSet::from_payloads([payload.clone()]))
                .unwrap();
            committed.push(payload);
        }
        rc.replicate().unwrap();
        let victim = rc.leader_of("events", 0).unwrap();
        rc.fail_broker(victim).unwrap();
        // All committed messages still served (from new leaders).
        let mut seen = Vec::new();
        for p in 0..2 {
            let (messages, _) = rc.fetch_committed("events", p, 0, usize::MAX).unwrap();
            seen.extend(
                messages
                    .iter()
                    .map(|(_, m)| String::from_utf8_lossy(&m.payload).into_owned()),
            );
        }
        let mut expected = committed.clone();
        expected.sort();
        seen.sort();
        assert_eq!(seen, expected, "loss after failing broker in round {round}");
        rc.recover_broker(victim);
        rc.replicate().unwrap();
    }
}

#[test]
fn espresso_global_index_survives_storage_failover() {
    let schema = DatabaseSchema::new("Music", 6, 2)
        .with_table(
            TableSchema::new("Song", ["artist", "album", "song"]),
            RecordSchema::new(
                "Song",
                1,
                vec![Field::new("lyrics", FieldType::Str).indexed()],
            )
            .unwrap(),
        )
        .unwrap();
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(schema).unwrap();
    let global = GlobalIndex::new(cluster.clone(), "Music", vec![NodeId(0), NodeId(1), NodeId(2)]);

    cluster
        .put(
            "Music",
            "Song",
            RowKey::new(["ArtistA", "Album", "One"]),
            &Record::new().with("lyrics", Value::Str("golden sun rises".into())),
        )
        .unwrap();
    cluster.pump_replication().unwrap();
    global.pump().unwrap();

    // Fail whichever node masters ArtistA; a different master takes over
    // and new writes flow through *its* relay — the global listener covers
    // all relays, so it keeps indexing.
    let (_, master) = cluster.route("Music", "ArtistA").unwrap();
    cluster.crash_node(master).unwrap();
    cluster
        .put(
            "Music",
            "Song",
            RowKey::new(["ArtistB", "Album", "Two"]),
            &Record::new().with("lyrics", Value::Str("sun goes down".into())),
        )
        .unwrap();
    global.pump().unwrap();
    let hits = global.query("Song", "lyrics", "sun");
    assert_eq!(hits.len(), 2, "{hits:?}");
}

#[test]
fn readonly_update_stream_drives_a_dependent_cache() {
    use li_commons::ring::HashRing;
    use li_voldemort::readonly::{ReadOnlyBuilder, ReadOnlyStore, ScratchDir, StoreEvent};

    let hdfs = ScratchDir::new("ext-hdfs").unwrap();
    let local = ScratchDir::new("ext-local").unwrap();
    let ring = HashRing::balanced(8, &[NodeId(0)]).unwrap();
    let store = Arc::new(
        ReadOnlyStore::open(local.path(), NodeId(0), ring.clone(), 1).unwrap(),
    );
    let events = store.subscribe();
    let builder = ReadOnlyBuilder::new(ring, 1, 2);

    // A "dependent cache" invalidates itself whenever the dataset version
    // changes — the use case the update stream exists for.
    let mut cache_version: Option<u64> = None;
    for version in 1..=2u64 {
        let records = vec![(
            Bytes::from_static(b"member:1"),
            Bytes::from(format!("v{version}")),
        )];
        let out = builder.build(records, version, hdfs.path()).unwrap();
        store.pull(&out.node_dir(NodeId(0)), version, None).unwrap();
        store.swap(version).unwrap();
        match events.try_recv().unwrap() {
            StoreEvent::Swapped { version } => cache_version = Some(version),
            StoreEvent::RolledBack { version } => cache_version = Some(version),
        }
    }
    assert_eq!(cache_version, Some(2));
    store.rollback().unwrap();
    assert_eq!(
        events.try_recv().unwrap(),
        StoreEvent::RolledBack { version: 1 }
    );
}

#[test]
fn databus_transformation_feeds_a_sanitized_replica() {
    use li_databus::{
        ConsumerCallback, DatabusClient, LogShippingAdapter, Relay, TransformRule, Transformation,
        Window,
    };
    use li_sqlstore::{Database, Op};
    use parking_lot::Mutex;

    // Primary with PII; the analytics replica may see row *shapes* but not
    // salary values, and must not see the auth table at all.
    let primary = Database::new("primary");
    primary.create_table("salary").unwrap();
    primary.create_table("auth_tokens").unwrap();
    primary.create_table("profile").unwrap();
    let relay = Arc::new(Relay::new("primary", 1 << 20));
    LogShippingAdapter::attach(&primary, relay.clone());

    #[derive(Default)]
    struct Replica {
        rows: Mutex<Vec<(String, String)>>,
    }
    impl ConsumerCallback for Replica {
        fn on_window(&self, window: &Window) -> Result<(), String> {
            for change in &window.changes {
                if let Op::Put(row) = &change.op {
                    self.rows.lock().push((
                        change.table.clone(),
                        String::from_utf8_lossy(&row.value).into_owned(),
                    ));
                }
            }
            Ok(())
        }
    }

    let replica = Arc::new(Replica::default());
    let client = DatabusClient::new(relay, None, replica.clone()).with_transformation(
        Transformation::new()
            .with(TransformRule::RedactValues {
                table: "salary".into(),
            })
            .with(TransformRule::DropTable {
                table: "auth_tokens".into(),
            }),
    );

    primary
        .put_one("salary", RowKey::single("m1"), &b"250000"[..], 1)
        .unwrap();
    primary
        .put_one("auth_tokens", RowKey::single("m1"), &b"secret-token"[..], 1)
        .unwrap();
    primary
        .put_one("profile", RowKey::single("m1"), &b"public bio"[..], 1)
        .unwrap();
    client.catch_up().unwrap();

    let rows = replica.rows.lock();
    assert_eq!(rows.len(), 2, "auth_tokens dropped entirely");
    assert!(rows.iter().any(|(t, v)| t == "salary" && v == "<redacted>"));
    assert!(rows.iter().any(|(t, v)| t == "profile" && v == "public bio"));
    assert!(!rows.iter().any(|(_, v)| v.contains("secret")));
}

#[test]
fn helix_health_reflects_espresso_cluster_state() {
    use li_helix::{check_health, Severity, SlaConfig};

    let schema = DatabaseSchema::new("Music", 4, 2)
        .with_table(
            TableSchema::new("Album", ["artist", "album"]),
            RecordSchema::new("Album", 1, vec![Field::new("year", FieldType::Long)]).unwrap(),
        )
        .unwrap();
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(schema).unwrap();
    let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();

    let report = check_health(
        &SlaConfig::default(),
        &nodes,
        &cluster.controller().live_nodes().unwrap(),
        4,
        &cluster.controller().external_view("Music").unwrap(),
    );
    assert!(report.healthy(), "{:?}", report.alerts);

    cluster.crash_node(NodeId(0)).unwrap();
    let report = check_health(
        &SlaConfig::default(),
        &nodes,
        &cluster.controller().live_nodes().unwrap(),
        4,
        &cluster.controller().external_view("Music").unwrap(),
    );
    assert!(!report.healthy());
    assert!(report.masterless.is_empty(), "failover kept all masters");
    assert!(report
        .alerts
        .iter()
        .all(|a| a.severity == Severity::Warning), "degraded but serving: {:?}", report.alerts);
}
