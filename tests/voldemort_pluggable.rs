//! Figure II.1/II.2 integration tests: the pluggable architecture, the
//! client API contract, zone-aware routing (C-5), and the full read-only
//! data cycle (F-II.3) — all through the public crate APIs.

use bytes::Bytes;
use li_commons::clock::VectorClock;
use li_commons::ring::NodeId;
use li_voldemort::readonly::{ReadOnlyBuilder, ScratchDir};
use li_voldemort::{EngineKind, StoreDef, VoldemortCluster, VoldemortError};
use std::sync::Arc;

/// The same client-visible behaviour must hold over any engine — the
/// "interchange modules" promise of the pluggable architecture.
#[test]
fn client_semantics_identical_across_engines() {
    for engine in [EngineKind::Memory, EngineKind::BdbLike] {
        let cluster = VoldemortCluster::new(16, 3).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(2, 2, 2).with_engine(engine))
            .unwrap();
        let client = cluster.client("s").unwrap();

        // get / put / optimistic lock / applyUpdate / delete — Figure II.2.
        let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v1");
        let c2 = client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(
            client.put(b"k", &c1, Bytes::from_static(b"v3")).unwrap_err(),
            VoldemortError::ObsoleteVersion,
            "{engine:?}: optimistic lock"
        );
        client
            .apply_update(b"k", 3, &|siblings| {
                let mut value = siblings[0].value.to_vec();
                value.push(b'!');
                Some(Bytes::from(value))
            })
            .unwrap();
        assert_eq!(client.get(b"k").unwrap()[0].value.as_ref(), b"v2!");
        let latest = client.get(b"k").unwrap()[0].clock.clone();
        assert!(client.delete(b"k", &latest).unwrap());
        assert!(client.get(b"k").unwrap().is_empty());
        let _ = c2;
    }
}

#[test]
fn empty_clock_put_on_existing_key_is_locked_out() {
    let cluster = VoldemortCluster::new(8, 2).unwrap();
    cluster.add_store(StoreDef::read_write("s")).unwrap();
    let client = cluster.client("s").unwrap();
    client.put_initial(b"k", Bytes::from_static(b"v")).unwrap();
    assert_eq!(
        client
            .put(b"k", &VectorClock::new(), Bytes::from_static(b"blind"))
            .unwrap_err(),
        VoldemortError::ObsoleteVersion
    );
}

#[test]
fn zoned_cluster_survives_a_datacenter_loss() {
    // Two zones (the paper's cross-datacenter deployments): N=4, zone
    // requirement 2 means each key has replicas in both DCs. Losing one
    // whole zone must leave every key readable (R=1).
    let cluster = VoldemortCluster::new_two_zone(32, 6).unwrap();
    cluster
        .add_store(
            StoreDef::read_write("s")
                .with_quorum(4, 1, 2)
                .with_zones(2),
        )
        .unwrap();
    let client = cluster.client("s").unwrap();
    for i in 0..100 {
        client
            .put_initial(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
            .unwrap();
    }
    // Zone 1 = odd nodes. Kill the whole datacenter.
    for node in [1u16, 3, 5] {
        cluster.network().crash(NodeId(node));
    }
    for i in 0..100 {
        let got = client.get(format!("k{i}").as_bytes()).unwrap();
        assert_eq!(got.len(), 1, "k{i} lost with zone 1 down");
        assert_eq!(got[0].value.as_ref(), format!("v{i}").as_bytes());
    }
}

#[test]
fn read_only_cycle_through_cluster_store() {
    // add_read_only_store + external build + per-node pull/swap, then
    // reads through the ordinary quorum client (R=1).
    let scratch = ScratchDir::new("it-ro").unwrap();
    let hdfs = ScratchDir::new("it-hdfs").unwrap();
    let cluster = VoldemortCluster::new(16, 3).unwrap();
    let stores = cluster
        .add_read_only_store(
            StoreDef::read_only("pymk").with_quorum(2, 1, 1),
            scratch.path(),
        )
        .unwrap();

    let records: Vec<(Bytes, Bytes)> = (0..500)
        .map(|i| {
            (
                Bytes::from(format!("member:{i:06}")),
                Bytes::from(format!("recs:{i}")),
            )
        })
        .collect();
    let builder = ReadOnlyBuilder::new(cluster.ring(), 2, 3);
    let out = builder.build(records, 1, hdfs.path()).unwrap();
    for store in &stores {
        store.pull(&out.node_dir(store.node()), 1, None).unwrap();
        store.swap(1).unwrap();
    }

    let client = cluster.client("pymk").unwrap();
    for i in (0..500).step_by(17) {
        let got = client.get(format!("member:{i:06}").as_bytes()).unwrap();
        assert_eq!(got.len(), 1, "member {i}");
        assert_eq!(got[0].value.as_ref(), format!("recs:{i}").as_bytes());
    }
    // Writes through the client are rejected by the engine.
    let err = client
        .put_initial(b"member:000001", Bytes::from_static(b"nope"))
        .unwrap_err();
    assert!(
        matches!(
            err,
            VoldemortError::UnsupportedOperation(_) | VoldemortError::InsufficientWrites { .. }
        ),
        "{err}"
    );
}

#[test]
fn dynamic_node_addition_rebalances_without_downtime() {
    let cluster = VoldemortCluster::new(30, 3).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(2, 1, 1))
        .unwrap();
    let client = cluster.client("s").unwrap();
    for i in 0..300 {
        client
            .put_initial(format!("k{i}").as_bytes(), Bytes::from(format!("v{i}")))
            .unwrap();
    }
    let moved = cluster.rebalance_in_new_node(NodeId(3)).unwrap();
    assert!(!moved.is_empty(), "fair share migrated");
    assert_eq!(cluster.ring().partitions_of(NodeId(3)).len(), moved.len());
    // Every key still readable, and new writes land fine.
    for i in 0..300 {
        assert_eq!(
            client.get(format!("k{i}").as_bytes()).unwrap().len(),
            1,
            "k{i} lost during rebalance"
        );
    }
    client.put_initial(b"post-rebalance", Bytes::from_static(b"ok")).unwrap();
    assert_eq!(client.get(b"post-rebalance").unwrap().len(), 1);
}

#[test]
fn failure_detector_routes_around_flapping_node_and_probes_back() {
    use li_commons::sim::SimClock;
    use std::time::Duration;

    let clock = Arc::new(SimClock::new());
    let ring = li_commons::ring::HashRing::balanced(16, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
    let network = li_commons::sim::SimNetwork::reliable();
    let cluster = VoldemortCluster::with_parts(ring, network.clone(), clock.clone()).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 1, 1))
        .unwrap();
    let client = cluster.client("s").unwrap();

    // Crash node 1; hammer it until the success-ratio detector bans it.
    network.crash(NodeId(1));
    for i in 0..60 {
        let _ = client.put_initial(format!("k{i}").as_bytes(), Bytes::from_static(b"v"));
    }
    assert!(!cluster.detector().is_available(NodeId(1)), "banned");

    // While banned, ops skip it without errors.
    client.put_initial(b"during-ban", Bytes::from_static(b"v")).unwrap();

    // Node recovers; only the async probe readmits it.
    network.restart(NodeId(1));
    assert!(!cluster.detector().is_available(NodeId(1)));
    clock.advance(Duration::from_secs(6));
    cluster.run_failure_probes();
    assert!(cluster.detector().is_available(NodeId(1)), "probe readmitted");
}
