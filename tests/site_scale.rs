//! Tier-1 smoke profile of the site-scale closed-loop benchmark: a small
//! seeded member population drives every serving tier at once through
//! concurrent closed-loop drivers, and the run must clear all SLO gates —
//! p99 per tier, Databus/Kafka lag drained to zero, cross-tier write
//! conservation — deterministically under a fixed seed.
//!
//! Population size and load are tunable from CI without editing the test:
//! `SITE_SMOKE_MEMBERS`, `SITE_SMOKE_DRIVERS`, `SITE_SMOKE_OPS`, and
//! `SITE_SMOKE_WORKERS` (OS workers the M:N scheduler multiplexes the
//! logical drivers onto; `0` keeps the default bound, letting CI run
//! e.g. 128 logical drivers on a handful of threads).

use linkedin_data_infra::{PlatformConfig, SiteBench, SiteBenchConfig};

const SEED: u64 = 42;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn smoke_config() -> SiteBenchConfig {
    let members = env_u64("SITE_SMOKE_MEMBERS", 1500);
    let drivers = env_u64("SITE_SMOKE_DRIVERS", 3) as usize;
    let ops = env_u64("SITE_SMOKE_OPS", 400) as usize;
    let workers = env_u64("SITE_SMOKE_WORKERS", 0) as usize;
    let mut config = SiteBenchConfig::smoke(members, drivers, ops, SEED);
    config.workers = workers;
    config.platform = PlatformConfig {
        voldemort_nodes: 3,
        kafka_brokers: 2,
        espresso_nodes: 3,
        espresso_partitions: 8,
        activity_partitions: 4,
        ..PlatformConfig::default()
    };
    config
}

#[test]
fn site_smoke_clears_all_slo_gates() {
    let bench = SiteBench::prepare(smoke_config()).unwrap();
    let report = bench.run().unwrap();
    assert!(
        report.all_gates_pass(),
        "SLO gate failures:\n{}",
        report.summary()
    );
    // The closed loop completed its configured work.
    let expected_ops = (smoke_config().drivers * smoke_config().ops_per_driver) as u64;
    assert_eq!(report.ops_attempted, expected_ops);
    assert_eq!(report.ops_acked, expected_ops, "no op may fail on a healthy site");
    assert!(report.throughput_ops_per_sec > 0.0);
    // Every tier actually served traffic (the mix covers all four paths).
    for tier in ["profile_read", "pymk_read", "follow_write", "activity"] {
        let h = report
            .tier_latency
            .get(tier)
            .unwrap_or_else(|| panic!("tier {tier} missing from report"));
        assert!(h.count > 0, "tier {tier} saw no traffic");
    }
}

/// Same seed ⇒ byte-identical conservation fingerprint. The fingerprint
/// holds every order-independent counter/gauge (acked ops per tier,
/// commits, relayed windows, broker totals, drained lags); if a metric
/// that should be deterministic picks up timing dependence — or an op
/// stream stops being a pure function of the seed — the two JSON blobs
/// diverge.
#[test]
fn same_seed_reproduces_metrics_snapshot_byte_identically() {
    let run = || {
        let bench = SiteBench::prepare(smoke_config()).unwrap();
        let report = bench.run().unwrap();
        assert!(report.all_gates_pass(), "gates:\n{}", report.summary());
        report.conservation_fingerprint()
    };
    let first = run();
    let second = run();
    assert!(
        first == second,
        "same-seed runs diverged;\nfirst:\n{first}\nsecond:\n{second}"
    );
    // The fingerprint is substantive: it carries the site counters and
    // the pipeline conservation metrics, not an empty object.
    for needle in [
        "site.follow_write.ok",
        "site.activity.consumed",
        "sqlstore.db.primary.commits",
        "databus.relay.primary.windows_ingested",
        "kafka.producer.requests",
        "espresso.router.requests",
    ] {
        assert!(first.contains(needle), "fingerprint lost {needle}:\n{first}");
    }
}

/// The same smoke profile with an online resharding mid-load: two
/// Voldemort partitions and one Espresso profile partition migrate off
/// node 0 while the closed-loop drivers hammer every tier. Every existing
/// SLO/conservation gate must stay green, no op may fail (reads are never
/// blocked, acked writes are never lost), and the run must report exactly
/// the expected cutover flips with zero shadow-verification refusals.
///
/// Same-seed fingerprint equality is deliberately *not* asserted here:
/// with a migration racing live writes, per-node put totals depend on
/// which side of the cutover each write lands, so those counters leave
/// the conservation subset for migration runs (see `conservation_subset`).
#[test]
fn site_smoke_with_migration_in_flight_clears_all_gates() {
    let mut config = smoke_config();
    config.migrate_partitions = 2;
    let bench = SiteBench::prepare(config).unwrap();
    let report = bench.run().unwrap();
    assert!(
        report.all_gates_pass(),
        "SLO gate failures with migration in flight:\n{}",
        report.summary()
    );
    assert_eq!(
        report.ops_acked, report.ops_attempted,
        "an acked-op was lost or refused during migration"
    );
    // Two Voldemort moves plus one Espresso profile move (three Espresso
    // nodes at replication two always leave a free target node).
    assert_eq!(report.snapshot.counter("migration.cutover_flips"), Some(3));
    assert_eq!(report.snapshot.counter("migration.cutover_refusals"), Some(0));
    // The shadow comparator actually exercised the dual-write window.
    assert!(
        report.snapshot.counter("migration.shadow_reads").unwrap_or(0) > 0,
        "shadow-read verification never ran"
    );
}

/// A different seed must actually change the run (guards against the
/// fingerprint accidentally capturing only constants).
#[test]
fn different_seed_changes_the_fingerprint() {
    let run = |seed: u64| {
        let mut config = smoke_config();
        config.seed = seed;
        // Smaller load: this test only needs divergence, not coverage.
        config.ops_per_driver = 120;
        let bench = SiteBench::prepare(config).unwrap();
        bench.run().unwrap().conservation_fingerprint()
    };
    assert_ne!(run(SEED), run(SEED + 1));
}
