//! Cross-crate timeline-consistency tests (experiment C-8 of DESIGN.md):
//! primary store → Databus → derived systems, under interleavings,
//! fallen-behind consumers, and random operation sequences.

use bytes::Bytes;
use li_databus::{
    BootstrapServer, ConsumerCallback, DatabusClient, LogShippingAdapter, Relay, Window,
};
use li_sqlstore::{Database, Op, RowKey};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A consumer that rebuilds a key-value view and checks the §III.B
/// guarantees while doing so: windows must arrive in commit order, whole.
#[derive(Default)]
struct ViewConsumer {
    state: Mutex<HashMap<RowKey, Bytes>>,
    last_scn: Mutex<u64>,
    window_sizes: Mutex<Vec<usize>>,
}

impl ConsumerCallback for ViewConsumer {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        {
            let mut last = self.last_scn.lock();
            if window.scn < *last {
                return Err(format!("commit order violated: {} after {}", window.scn, *last));
            }
            *last = window.scn;
        }
        self.window_sizes.lock().push(window.changes.len());
        let mut state = self.state.lock();
        for change in &window.changes {
            match &change.op {
                Op::Put(row) => {
                    state.insert(change.key.clone(), row.value.clone());
                }
                Op::Delete => {
                    state.remove(&change.key);
                }
            }
        }
        Ok(())
    }

    fn on_snapshot_start(&self) {
        self.state.lock().clear();
    }
}

fn primary_with_table() -> Arc<Database> {
    let db = Arc::new(Database::new("primary"));
    db.create_table("t").unwrap();
    db
}

fn primary_view(db: &Database) -> HashMap<RowKey, Bytes> {
    db.scan_prefix("t", &RowKey::default())
        .unwrap()
        .into_iter()
        .map(|(k, row)| (k, row.value))
        .collect()
}

#[test]
fn multi_row_transactions_arrive_whole_and_ordered() {
    let db = primary_with_table();
    let relay = Arc::new(Relay::new("primary", 1 << 20));
    LogShippingAdapter::attach(&db, relay.clone());

    // The paper's mailbox example: multi-row atomic commits.
    for i in 0..20 {
        let mut txn = db.begin();
        txn.put("t", RowKey::new([format!("mailbox:{i}"), "msg".into()]), &b"hello"[..], 1);
        txn.put("t", RowKey::single(format!("unread:{i}")), &b"1"[..], 1);
        db.commit(txn).unwrap();
    }
    let consumer = Arc::new(ViewConsumer::default());
    let client = DatabusClient::new(relay, None, consumer.clone());
    client.catch_up().unwrap();
    assert!(
        consumer.window_sizes.lock().iter().all(|&n| n == 2),
        "transaction boundaries preserved"
    );
    assert_eq!(consumer.state.lock().len(), 40);
}

#[test]
fn derived_view_converges_to_primary_through_bootstrap() {
    // The consumer joins late, after the relay evicted early history: it
    // must arrive at the same state via the snapshot path.
    let db = primary_with_table();
    let relay = Arc::new(Relay::new("primary", 4096)); // tiny buffer
    LogShippingAdapter::attach(&db, relay.clone());
    let bootstrap = Arc::new(BootstrapServer::new());

    for i in 0..200u32 {
        let key = RowKey::single(format!("k{}", i % 23));
        if i % 7 == 3 {
            let _ = db.delete_one("t", key);
        } else {
            db.put_one("t", key, format!("v{i}").into_bytes(), 1).unwrap();
        }
        // Bootstrap keeps up continuously (log writer).
        bootstrap.catch_up_from(&relay).unwrap();
    }
    bootstrap.apply_log();
    assert!(relay.oldest_scn() > 1, "relay must have evicted history");

    let consumer = Arc::new(ViewConsumer::default());
    let client = DatabusClient::new(relay.clone(), Some(bootstrap), consumer.clone());
    client.catch_up().unwrap();
    assert_eq!(*consumer.state.lock(), primary_view(&db), "views converge");

    // And stays convergent for post-bootstrap traffic over the relay.
    db.put_one("t", RowKey::single("fresh"), &b"new"[..], 1).unwrap();
    client.catch_up().unwrap();
    assert_eq!(*consumer.state.lock(), primary_view(&db));
}

#[test]
fn at_least_once_redelivery_is_idempotent() {
    let db = primary_with_table();
    let relay = Arc::new(Relay::new("primary", 1 << 20));
    LogShippingAdapter::attach(&db, relay.clone());
    for i in 0..10 {
        db.put_one("t", RowKey::single(format!("k{i}")), &b"v"[..], 1).unwrap();
    }
    let consumer = Arc::new(ViewConsumer::default());
    let client = DatabusClient::new(relay, None, consumer.clone());
    client.catch_up().unwrap();
    let before = consumer.state.lock().clone();
    // Simulate a crash before checkpoint persistence: rewind + reprocess.
    client.set_checkpoint(5);
    // Redelivery may not violate commit-order *forward* progress.
    *consumer.last_scn.lock() = 0;
    client.catch_up().unwrap();
    assert_eq!(*consumer.state.lock(), before, "replay is idempotent");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random op sequence, any relay buffer size, any consumer join
    /// time: the derived view equals the primary at the end.
    #[test]
    fn prop_random_histories_converge(
        ops in proptest::collection::vec((0u8..3, 0u8..16, 0u16..1000), 1..120),
        relay_budget in 1024usize..32768,
        join_after in 0usize..120,
    ) {
        let db = primary_with_table();
        let relay = Arc::new(Relay::new("primary", relay_budget));
        LogShippingAdapter::attach(&db, relay.clone());
        let bootstrap = Arc::new(BootstrapServer::new());
        let consumer = Arc::new(ViewConsumer::default());
        let client = DatabusClient::new(relay.clone(), Some(bootstrap.clone()), consumer.clone());

        for (i, (kind, key, val)) in ops.iter().enumerate() {
            let key = RowKey::single(format!("k{key}"));
            match kind {
                0 | 1 => {
                    db.put_one("t", key, format!("v{val}").into_bytes(), 1).unwrap();
                }
                _ => {
                    let _ = db.delete_one("t", key);
                }
            }
            bootstrap.catch_up_from(&relay).unwrap();
            bootstrap.apply_log();
            if i == join_after {
                client.catch_up().unwrap();
            }
        }
        client.catch_up().unwrap();
        prop_assert_eq!(consumer.state.lock().clone(), primary_view(&db));
    }

    /// Consolidated delta ≡ full replay: folding the delta over the state
    /// at T gives the same view as replaying every event after T.
    #[test]
    fn prop_consolidated_delta_equals_replay(
        ops in proptest::collection::vec((0u8..3, 0u8..8, 0u16..100), 2..80),
        at in 1usize..79,
    ) {
        let split = at.min(ops.len().saturating_sub(1)).max(1);
        let db = primary_with_table();
        let relay = Arc::new(Relay::new("primary", 1 << 20));
        LogShippingAdapter::attach(&db, relay.clone());
        let bootstrap = Arc::new(BootstrapServer::new());

        let mut scn_at_split = 0;
        for (i, (kind, key, val)) in ops.iter().enumerate() {
            let key = RowKey::single(format!("k{key}"));
            match kind {
                0 | 1 => { db.put_one("t", key, format!("v{val}").into_bytes(), 1).unwrap(); }
                _ => { let _ = db.delete_one("t", key); }
            }
            if i + 1 == split {
                scn_at_split = db.last_scn();
            }
        }
        bootstrap.catch_up_from(&relay).unwrap();

        // Replay path: state at T + every window after T.
        let replay_consumer = Arc::new(ViewConsumer::default());
        let replay_client = DatabusClient::new(relay.clone(), None, replay_consumer.clone());
        replay_client.catch_up().unwrap();

        // Delta path: state at T + consolidated delta since T.
        let delta = bootstrap.consolidated_delta(scn_at_split, &li_databus::ServerFilter::all());
        // Rebuild state at T from the relay.
        let at_t = Arc::new(ViewConsumer::default());
        {
            let c = DatabusClient::new(relay.clone(), None, at_t.clone());
            // consume windows up to scn_at_split only
            loop {
                let before = c.checkpoint();
                if before >= scn_at_split { break; }
                c.poll_once().unwrap();
                if c.checkpoint() == before { break; }
            }
        }
        // The poll batches may overshoot; recompute precisely instead.
        let mut state: HashMap<RowKey, Bytes> = HashMap::new();
        for entry in db.binlog_after(0).iter().filter(|e| e.scn <= scn_at_split) {
            for change in &entry.changes {
                match &change.op {
                    Op::Put(row) => { state.insert(change.key.clone(), row.value.clone()); }
                    Op::Delete => { state.remove(&change.key); }
                }
            }
        }
        for change in &delta.changes {
            match &change.op {
                Op::Put(row) => { state.insert(change.key.clone(), row.value.clone()); }
                Op::Delete => { state.remove(&change.key); }
            }
        }
        prop_assert_eq!(state, primary_view(&db));
        // Fast playback: the delta never has more events than the raw tail.
        prop_assert!(delta.changes.len() <= delta.raw_events);
    }
}
