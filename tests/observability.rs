//! Cross-system observability: one shared registry watches a
//! Voldemort → Databus → Kafka pipeline end to end, and every assertion
//! here goes through the *public metrics API only* — no private counters,
//! no reaching into system internals. If the metrics layer misreports,
//! these tests fail.

use bytes::Bytes;
use li_commons::metrics::MetricsRegistry;
use li_commons::ring::{HashRing, NodeId};
use li_commons::sim::{RealClock, SimNetwork};
use li_databus::{ConsumerCallback, DatabusClient, LogShippingAdapter, Relay, Window};
use li_kafka::{KafkaCluster, Producer, SimpleConsumer};
use li_sqlstore::{Database, RowKey};
use li_voldemort::{StoreDef, VoldemortCluster};
use std::sync::Arc;

const TOPIC: &str = "row-changes";
const WRITES: usize = 40;

/// Databus subscriber that republishes every row change into Kafka — the
/// paper's "changes flow from the primary out to the streams tier".
struct KafkaForwarder {
    producer: Producer,
}

impl ConsumerCallback for KafkaForwarder {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        for change in &window.changes {
            self.producer
                .send(TOPIC, format!("scn={} key={}", window.scn, change.key))
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Builds the whole pipeline over ONE registry and pushes `WRITES` user
/// writes through it: each write is acked by Voldemort (cache tier) and
/// committed to the primary (source of truth), relayed by Databus, and
/// republished into Kafka.
fn run_pipeline(registry: &Arc<MetricsRegistry>) -> (DatabusClient, Arc<KafkaCluster>) {
    // Voldemort cache tier (2 nodes, N=2 replication by default store def).
    let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
    let voldemort = VoldemortCluster::with_metrics(
        HashRing::balanced(16, &nodes).unwrap(),
        SimNetwork::reliable(),
        Arc::new(RealClock::new()),
        registry,
    )
    .unwrap();
    voldemort.add_store(StoreDef::read_write("cache")).unwrap();
    let cache = voldemort.client("cache").unwrap();

    // Primary + Databus tier.
    let primary = Arc::new(Database::with_metrics(
        "primary",
        Arc::new(RealClock::new()),
        registry,
    ));
    primary.create_table("t").unwrap();
    let relay = Arc::new(Relay::with_metrics("primary", 1 << 20, registry));
    LogShippingAdapter::attach(&primary, relay.clone());

    // Kafka tier, fed by a Databus subscriber.
    let kafka = KafkaCluster::with_metrics(
        1,
        li_kafka::log::LogConfig::default(),
        Arc::new(RealClock::new()),
        registry,
    )
    .unwrap();
    kafka.create_topic(TOPIC, 1).unwrap();
    let forwarder = Arc::new(KafkaForwarder {
        producer: Producer::new(kafka.clone()),
    });
    let client = DatabusClient::new(relay, None, forwarder);

    let mut acked = 0;
    for i in 0..WRITES {
        let key = format!("member:{i}");
        cache
            .put_initial(key.as_bytes(), Bytes::from(format!("profile {i}")))
            .unwrap();
        primary
            .put_one("t", RowKey::single(key), format!("profile {i}").into_bytes(), 1)
            .unwrap();
        acked += 1;
        // Relay lag must never go negative, at any point mid-run.
        client.catch_up().unwrap();
        let lag = registry
            .snapshot()
            .gauge("databus.client.relay_lag_scns")
            .expect("relay lag gauge");
        assert!(lag >= 0, "relay lag went negative: {lag}");
    }
    assert_eq!(acked, WRITES);
    (client, kafka)
}

#[test]
fn acked_writes_equal_counted_writes_at_every_tier() {
    let registry = MetricsRegistry::new();
    let (_client, _kafka) = run_pipeline(&registry);
    let snapshot = registry.snapshot();

    // Voldemort: every acked client put is counted, none hinted or failed.
    assert_eq!(
        snapshot.counter("voldemort.client.put.ok"),
        Some(WRITES as u64)
    );
    assert_eq!(
        snapshot.counter("voldemort.client.quorum.write_failures"),
        Some(0)
    );
    // Replication factor 2 over 2 nodes: the node-side put counts must sum
    // to exactly acked * replicas — a write the client acked but a node
    // never counted (or vice versa) breaks this.
    let node_puts = snapshot.counter_sum("voldemort.node0.put.count")
        + snapshot.counter_sum("voldemort.node1.put.count");
    assert_eq!(node_puts, 2 * WRITES as u64);

    // Primary: one commit per write, SCN agrees with the commit count.
    assert_eq!(
        snapshot.counter("sqlstore.db.primary.commits"),
        Some(WRITES as u64)
    );
    assert_eq!(
        snapshot.gauge("sqlstore.db.primary.last_scn"),
        Some(WRITES as i64)
    );

    // Databus: every commit became exactly one relayed window.
    assert_eq!(
        snapshot.counter("databus.client.windows_processed"),
        Some(WRITES as u64)
    );
    assert_eq!(
        snapshot.counter("databus.relay.primary.windows_ingested"),
        Some(WRITES as u64)
    );
    assert_eq!(
        snapshot.gauge("databus.relay.primary.newest_scn"),
        Some(WRITES as i64)
    );

    // Kafka: every relayed change was produced to the broker.
    assert_eq!(
        snapshot.counter("kafka.broker0.produce.messages"),
        Some(WRITES as u64)
    );
    assert_eq!(snapshot.counter("kafka.producer.requests"), Some(WRITES as u64));
}

#[test]
fn consumer_lag_rises_then_drains_to_zero() {
    let registry = MetricsRegistry::new();
    let (_client, kafka) = run_pipeline(&registry);

    // A consumer that has not polled yet sees the full backlog.
    let mut consumer = SimpleConsumer::new(kafka.clone(), TOPIC, 0).unwrap();
    let lag_name = format!("kafka.consumer.{TOPIC}.0.lag");
    consumer.seek(0); // refreshes the gauge without consuming
    let backlog = registry.snapshot().gauge(&lag_name).expect("lag gauge");
    assert!(backlog > 0, "expected a backlog, lag={backlog}");

    // Drain; the first-class lag gauge must return exactly to zero.
    let mut seen = 0;
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        seen += batch.len();
    }
    assert_eq!(seen, WRITES);
    assert_eq!(registry.snapshot().gauge(&lag_name), Some(0));
}

#[test]
fn interval_delta_isolates_second_half_of_the_run() {
    // Snapshot deltas answer "what happened since the last scrape" — the
    // per-interval view a monitoring poller needs.
    let registry = MetricsRegistry::new();
    let counter = registry.counter("pipeline.events");
    counter.add(30);
    let at_t = registry.snapshot();
    counter.add(12);
    let now = registry.snapshot();
    assert_eq!(now.counter("pipeline.events"), Some(42));
    assert_eq!(now.delta(&at_t).counter("pipeline.events"), Some(12));
}
