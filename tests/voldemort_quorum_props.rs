//! Property tests for Voldemort's quorum coordination (ISSUE 4): with
//! R+W>N, a quorum read observes every committed write no matter which
//! replicas crashed or slowed; the serial, deterministic, and parallel
//! fan-out paths agree result-for-result on the same op schedule; hint
//! replay never resurrects an overwritten version; and `get_all` batches
//! by node instead of running one quorum per key.
//!
//! Case count defaults to 24 and is raised in CI with
//! `QUORUM_PROPTEST_CASES=64` (the vendored proptest has no env support
//! of its own).

use bytes::Bytes;
use li_commons::clock::{VectorClock, Versioned};
use li_commons::ring::{HashRing, NodeId};
use li_commons::sim::{SimClock, SimNetwork};
use li_voldemort::{
    FanOutMode, QuorumConfig, ReadFanOut, StoreClient, StoreDef, VoldemortCluster, VoldemortError,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn quorum_cases() -> ProptestConfig {
    let cases = std::env::var("QUORUM_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    ProptestConfig::with_cases(cases)
}

/// (node_count, N, R, W) with 1 <= R,W <= N <= node_count and R+W > N.
fn quorum_shape() -> impl Strategy<Value = (u16, usize, usize, usize)> {
    (3u16..=7)
        .prop_flat_map(|nodes| (Just(nodes), 2usize..=3))
        .prop_flat_map(|(nodes, n)| (Just(nodes), Just(n), 1usize..=n))
        .prop_flat_map(|(nodes, n, w)| {
            let r_min = (n + 1).saturating_sub(w).max(1);
            (Just(nodes), Just(n), r_min..=n, Just(w))
        })
}

fn build_cluster(
    nodes: u16,
    n: usize,
    r: usize,
    w: usize,
    clock: Arc<SimClock>,
) -> Arc<VoldemortCluster> {
    let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let ring = HashRing::balanced(16, &ids).unwrap();
    let cluster = VoldemortCluster::with_parts(ring, SimNetwork::reliable(), clock).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(n, r, w))
        .unwrap();
    cluster
}

/// Read-modify-write through `client`: merge all observed sibling clocks
/// into the base so a success reconciles and dominates what was read.
fn rmw_put(
    client: &StoreClient,
    key: &[u8],
    value: Bytes,
) -> Result<VectorClock, VoldemortError> {
    let siblings = client.get(key)?;
    let base = siblings
        .iter()
        .fold(VectorClock::new(), |acc, v| acc.merged(&v.clock));
    client.put(key, &base, value)
}

proptest! {
    #![proptest_config(quorum_cases())]

    /// The durability property behind R+W>N: every write the client acked
    /// is observed by a quorum read after the cluster heals — the sibling
    /// set contains a version whose clock descends from the acked clock —
    /// regardless of which replicas were crashed or slowed while writing,
    /// and regardless of which fan-out mode performs the final read.
    #[test]
    fn prop_committed_writes_visible_after_heal(
        shape in quorum_shape(),
        crash in proptest::collection::vec(0u16..7, 0..3),
        slow in proptest::collection::vec((0u16..7, 1u64..10), 0..3),
        ops in proptest::collection::vec((0u8..4, 0u8..=255), 4..28),
        crash_at in 0usize..10,
    ) {
        let (nodes, n, r, w) = shape;
        let clock = Arc::new(SimClock::new());
        let cluster = build_cluster(nodes, n, r, w, clock.clone());
        let writers = [cluster.client("s").unwrap(), cluster.client("s").unwrap()];
        let crash: Vec<NodeId> = crash
            .iter()
            .map(|&c| NodeId(c % nodes))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for &(node, ms) in &slow {
            cluster.network().set_link_latency(
                StoreClient::CLIENT_NODE,
                NodeId(node % nodes),
                Duration::from_millis(ms),
            );
        }

        // Interleaved writers; the fault set drops mid-schedule.
        let mut acked: Vec<(Vec<u8>, VectorClock)> = Vec::new();
        for (i, &(key_choice, value_byte)) in ops.iter().enumerate() {
            if i == crash_at.min(ops.len() - 1) {
                for &node in &crash {
                    cluster.network().crash(node);
                }
            }
            let key = format!("k{key_choice}").into_bytes();
            let value = Bytes::from(vec![value_byte]);
            if let Ok(write_clock) = rmw_put(&writers[i % 2], &key, value) {
                acked.push((key, write_clock));
            }
        }

        // Heal and drain the recovery machinery: restart crashed nodes,
        // readmit banned ones via probes, replay hints.
        for &node in &crash {
            cluster.network().restart(node);
        }
        cluster.network().heal_all();
        for _ in 0..50 {
            clock.advance(Duration::from_secs(6));
            cluster.run_failure_probes();
            cluster.deliver_hints();
            if cluster.pending_hints() == 0 && cluster.detector().banned_nodes().is_empty() {
                break;
            }
        }
        prop_assert_eq!(cluster.pending_hints(), 0, "hints must drain after heal");
        // Let the detector's sample window (10s) expire: failure samples
        // from the crash epoch would otherwise combine with the first
        // post-heal success to trip the ratio ban mid-verification.
        clock.advance(Duration::from_secs(30));

        // Every acked write is observed, through every fan-out mode.
        for mode in [FanOutMode::Serial, FanOutMode::Deterministic, FanOutMode::Parallel] {
            let reader = cluster.client("s").unwrap().with_quorum_config(QuorumConfig {
                mode,
                read_fan_out: ReadFanOut::All,
                ..QuorumConfig::default()
            });
            for (key, write_clock) in &acked {
                let siblings = reader.get(key).map_err(|e| {
                    TestCaseError::fail(format!("read of acked key failed in {mode:?}: {e}"))
                })?;
                prop_assert!(
                    siblings.iter().any(|v| v.clock.descends_from(write_clock)),
                    "acked write not covered by any sibling (mode {:?}, clock {:?}, got {:?})",
                    mode, write_clock, siblings
                );
            }
        }
        cluster.fan_out_pool().wait_idle();
    }

    /// Mode equivalence: the same op schedule — including a crash/restart
    /// epoch — produces identical per-op results (values *and* error
    /// shapes) and identical final reads under the serial, deterministic,
    /// and parallel quorum paths. The crash epoch is kept short enough
    /// (detector `min_samples` = 10) that no mode's failure-sample count
    /// can ban a node the others still consider available.
    #[test]
    fn prop_parallel_matches_serial_result_for_result(
        shape in quorum_shape(),
        crash_node in 0u16..7,
        ops in proptest::collection::vec((0u8..4, 0u8..=255), 4..20),
        crash_at in 0usize..16,
    ) {
        let (nodes, n, r, w) = shape;
        let crash_at = crash_at.min(ops.len().saturating_sub(1));
        let restart_at = (crash_at + 4).min(ops.len());
        let crash_node = NodeId(crash_node % nodes);

        let mut per_mode: Vec<(Vec<String>, Vec<String>)> = Vec::new();
        for mode in [FanOutMode::Serial, FanOutMode::Deterministic, FanOutMode::Parallel] {
            let clock = Arc::new(SimClock::new());
            let cluster = build_cluster(nodes, n, r, w, clock);
            let client = cluster.client("s").unwrap().with_quorum_config(QuorumConfig {
                mode,
                ..QuorumConfig::default()
            });
            let mut results: Vec<String> = Vec::new();
            for (i, &(key_choice, value_byte)) in ops.iter().enumerate() {
                if i == crash_at {
                    cluster.network().crash(crash_node);
                }
                if i == restart_at {
                    cluster.network().restart(crash_node);
                }
                let key = format!("k{key_choice}").into_bytes();
                let value = Bytes::from(vec![value_byte]);
                results.push(format!("{:?}", rmw_put(&client, &key, value)));
                // Parallel mode acks a put at W and finishes the replication
                // wave on pool threads; quiesce between ops so the schedule
                // compares quorum semantics, not background-write timing.
                cluster.fan_out_pool().wait_idle();
            }
            cluster.network().restart(crash_node);
            // Flush parallel stragglers and park/replay hints so the final
            // read compares converged state, not in-flight state.
            cluster.fan_out_pool().wait_idle();
            for _ in 0..8 {
                if cluster.deliver_hints() == 0 && cluster.pending_hints() == 0 {
                    break;
                }
            }
            let mut final_reads: Vec<String> = Vec::new();
            for key_choice in 0u8..4 {
                let key = format!("k{key_choice}").into_bytes();
                final_reads.push(format!("{:?}", client.get(&key)));
            }
            per_mode.push((results, final_reads));
        }

        let (serial_results, serial_reads) = &per_mode[0];
        for (mode_name, (results, reads)) in
            ["deterministic", "parallel"].iter().zip(&per_mode[1..])
        {
            prop_assert_eq!(
                serial_results, results,
                "op results diverged between serial and {} paths", mode_name
            );
            prop_assert_eq!(
                serial_reads, reads,
                "final reads diverged between serial and {} paths", mode_name
            );
        }
    }
}

/// Satellite: hinted-handoff replay racing a concurrent client put. The
/// hint carries the clock of the write that missed its replica; by the
/// time the replica recovers, a newer put has superseded it. Replaying
/// the hint must not resurrect the overwritten version — `deliver_hints`
/// drops it on the vector-clock obsolescence check and counts it.
#[test]
fn replayed_hint_does_not_resurrect_overwritten_version() {
    let cluster = VoldemortCluster::new(32, 4).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(2, 1, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();
    let prefs = cluster.ring().preference_list(b"k", 2).unwrap();

    // v1 while replica 1 is down: W=2 met as 1 live ack + 1 hint.
    cluster.network().crash(prefs[1]);
    let c1 = client.put_initial(b"k", Bytes::from_static(b"v1")).unwrap();
    assert_eq!(cluster.pending_hints(), 1);

    // Replica 1 recovers and v2 lands on the full preference list before
    // the hint replays.
    cluster.network().restart(prefs[1]);
    let c2 = client.put(b"k", &c1, Bytes::from_static(b"v2")).unwrap();
    let fresh = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
    assert_eq!(fresh.len(), 1);
    assert_eq!(fresh[0].clock, c2);

    // The stale hint is dropped, not delivered.
    assert_eq!(cluster.deliver_hints(), 0, "obsolete hint must not deliver");
    assert_eq!(cluster.pending_hints(), 0, "dropped hint must not re-park");
    let snapshot = cluster.metrics().snapshot();
    assert_eq!(snapshot.counter("voldemort.hints.dropped_obsolete"), Some(1));

    // The replica still holds exactly the newer version.
    let after = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
    assert_eq!(after.len(), 1, "hint replay resurrected an old version");
    assert_eq!(after[0].clock, c2);
    assert_eq!(after[0].value.as_ref(), b"v2");
}

/// Counterpart: a hint that is *concurrent* with (not dominated by) the
/// replica's current version must still deliver, surfacing as a sibling
/// for read-time resolution.
#[test]
fn concurrent_hint_still_delivers_as_sibling() {
    let cluster = VoldemortCluster::new(32, 4).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(2, 1, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();
    let prefs = cluster.ring().preference_list(b"k", 2).unwrap();

    cluster.network().crash(prefs[1]);
    let c_hint = client.put_initial(b"k", Bytes::from_static(b"A")).unwrap();
    assert_eq!(cluster.pending_hints(), 1);

    // A concurrent branch lands directly on the recovered replica: a clock
    // the hint neither descends from nor dominates.
    cluster.network().restart(prefs[1]);
    let c_other = VectorClock::new().incremented(prefs[1].0);
    assert!(!c_other.descends_from(&c_hint));
    assert!(!c_hint.descends_from(&c_other));
    cluster
        .node(prefs[1])
        .unwrap()
        .force_put("s", b"k", Versioned::new(c_other.clone(), Bytes::from_static(b"B")))
        .unwrap();

    assert_eq!(cluster.deliver_hints(), 1, "concurrent hint must deliver");
    let siblings = cluster.node(prefs[1]).unwrap().get("s", b"k").unwrap();
    assert_eq!(siblings.len(), 2, "hint and concurrent put must coexist");
    let snapshot = cluster.metrics().snapshot();
    // The counter is registered by the replay pass but never incremented.
    assert_eq!(
        snapshot.counter("voldemort.hints.dropped_obsolete").unwrap_or(0),
        0
    );
}

/// Satellite regression: `get_all` must batch keys by replica node — one
/// multi-get per contacted node — instead of one independent quorum per
/// key. Counted via the per-node `multiget.count`/`get.count` metrics.
#[test]
fn get_all_batches_one_multiget_per_node() {
    let cluster = VoldemortCluster::new(32, 3).unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    let client = cluster.client("s").unwrap();
    let keys: Vec<Vec<u8>> = (0..20).map(|i| format!("k{i}").into_bytes()).collect();
    for key in &keys {
        client.put_initial(key, Bytes::from(format!("v-{key:?}"))).unwrap();
    }

    let before = cluster.metrics().snapshot();
    let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let got = client.get_all(&key_refs).unwrap();
    let after = cluster.metrics().snapshot();

    assert_eq!(got.len(), keys.len());
    for key in &keys {
        assert_eq!(got[key][0].value, Bytes::from(format!("v-{key:?}")));
    }

    let delta = after.delta(&before);
    let multigets = delta.counter_sum("voldemort.node");
    // All per-node counters share the `voldemort.node<id>.` prefix, so sum
    // the two we care about individually.
    let multiget_calls: u64 = (0..3)
        .filter_map(|i| delta.counter(&format!("voldemort.node{i}.multiget.count")))
        .sum();
    let single_gets: u64 = (0..3)
        .filter_map(|i| delta.counter(&format!("voldemort.node{i}.get.count")))
        .sum();
    assert!(
        multiget_calls <= 3,
        "expected at most one multi-get per node for 20 keys, got {multiget_calls} \
         (total node-counter delta {multigets})"
    );
    assert_eq!(
        single_gets, 0,
        "get_all must not fall back to per-key single gets"
    );
}
